package livepoints_test

import (
	"math"
	"path/filepath"
	"testing"

	"livepoints"
)

// TestPublicAPIPipeline walks the full public-facade pipeline end to end:
// generate → design → create library → absolute estimate → matched pair,
// validating the estimate against complete simulation.
func TestPublicAPIPipeline(t *testing.T) {
	cfg := livepoints.Config8Way()
	p := livepoints.GenerateBenchmark("syn.gzip", 0.02)

	n, err := livepoints.BenchmarkLength(p)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("zero-length benchmark")
	}

	design, err := livepoints.NewDesignFor(p, cfg, 100)
	if err != nil {
		t.Fatal(err)
	}
	lib := filepath.Join(t.TempDir(), "gzip.lplib")
	info, err := livepoints.CreateLibrary(p, design, cfg, lib)
	if err != nil {
		t.Fatal(err)
	}
	if info.Points != design.Units() || info.CompressedBytes == 0 {
		t.Fatalf("library info %+v", info)
	}
	if info.UncompressedBytes <= info.CompressedBytes {
		t.Fatal("gzip did not compress")
	}

	res, err := livepoints.Run(lib, livepoints.RunOpts{Cfg: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Processed != info.Points {
		t.Fatalf("processed %d of %d", res.Processed, info.Points)
	}
	if res.CaptureErrors != 0 {
		t.Fatalf("%d capture errors", res.CaptureErrors)
	}

	truth, err := livepoints.CompleteSimulation(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if e := math.Abs(res.Est.Mean()-truth) / truth; e > 0.25 {
		t.Fatalf("estimate %.4f vs truth %.4f (%.1f%% off)", res.Est.Mean(), truth, 100*e)
	}

	// Matched-pair on the same library.
	exp := cfg
	exp.Hier.MemLat = 200
	exp.Name = "slow-mem"
	mr, err := livepoints.RunMatched(lib, livepoints.MatchedOpts{Base: cfg, Exp: exp, Z: livepoints.Z997})
	if err != nil {
		t.Fatal(err)
	}
	if mr.MP.RelDelta() < 0 {
		t.Errorf("doubling memory latency should not speed the machine up: Δ=%.4f", mr.MP.RelDelta())
	}
}

// TestBenchmarksEnumerable checks the suite surface.
func TestBenchmarksEnumerable(t *testing.T) {
	specs := livepoints.Benchmarks()
	if len(specs) != 16 {
		t.Fatalf("suite has %d specs, want 16", len(specs))
	}
	for _, s := range specs {
		if s.Name == "" || s.BaseLen == 0 {
			t.Errorf("bad spec %+v", s)
		}
	}
}

// TestGenerateBenchmarkPanicsOnUnknown documents the panic contract.
func TestGenerateBenchmarkPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown benchmark should panic")
		}
	}()
	livepoints.GenerateBenchmark("syn.doesnotexist", 1)
}

// TestRequiredSampleSize checks the paper's sample-size arithmetic is
// reachable through the facade.
func TestRequiredSampleSize(t *testing.T) {
	if n := livepoints.RequiredSampleSize(1.0, livepoints.Z997, 0.03); n != 10000 {
		t.Fatalf("n=%d, want 10000", n)
	}
}

// TestMRRLAnalyzeFacade exercises the adaptive-warming analysis via the
// facade.
func TestMRRLAnalyzeFacade(t *testing.T) {
	cfg := livepoints.Config8Way()
	p := livepoints.GenerateBenchmark("syn.swim", 0.01)
	design, err := livepoints.NewDesignFor(p, cfg, 20)
	if err != nil {
		t.Fatal(err)
	}
	lens, err := livepoints.MRRLAnalyze(p, design)
	if err != nil {
		t.Fatal(err)
	}
	if len(lens) != design.Units() {
		t.Fatalf("%d lengths for %d units", len(lens), design.Units())
	}
}
