package cache

// MSHRFile models a finite set of miss-status holding registers. Each
// outstanding miss occupies one register from its issue cycle until its
// fill completes; a second miss to the same block merges with the existing
// entry (a secondary miss). When all registers are busy, new misses must
// wait for the earliest completion.
//
// The model is time-stamped rather than event-driven: callers pass the
// current cycle, and entries whose completion time has passed are retired
// lazily.
type MSHRFile struct {
	cap    int
	blocks []uint64
	doneAt []uint64
	Stat   MSHRStats
}

// MSHRStats counts MSHR events.
type MSHRStats struct {
	Primary   uint64 // misses that allocated a register
	Secondary uint64 // misses merged into an existing register
	FullStall uint64 // cycles spent waiting for a free register
}

// NewMSHRFile returns an MSHR file with n registers. n must be positive.
func NewMSHRFile(n int) *MSHRFile {
	if n <= 0 {
		panic("cache: MSHR file needs at least one register")
	}
	return &MSHRFile{cap: n}
}

// Cap returns the number of registers.
func (m *MSHRFile) Cap() int { return m.cap }

// retire drops entries completed at or before now.
func (m *MSHRFile) retire(now uint64) {
	w := 0
	for i := range m.blocks {
		if m.doneAt[i] > now {
			m.blocks[w] = m.blocks[i]
			m.doneAt[w] = m.doneAt[i]
			w++
		}
	}
	m.blocks = m.blocks[:w]
	m.doneAt = m.doneAt[:w]
}

// Outstanding returns the number of in-flight misses at the given cycle.
func (m *MSHRFile) Outstanding(now uint64) int {
	m.retire(now)
	return len(m.blocks)
}

// Request models a miss on the given block issued at cycle now, whose fill
// would otherwise complete at doneAt. It returns the adjusted completion
// cycle accounting for merging and register pressure:
//
//   - secondary miss: the existing entry's completion time;
//   - full file: the miss waits for the earliest completion, shifting its
//     own completion time by the wait.
func (m *MSHRFile) Request(block uint64, now, doneAt uint64) uint64 {
	m.retire(now)
	for i := range m.blocks {
		if m.blocks[i] == block {
			m.Stat.Secondary++
			return m.doneAt[i]
		}
	}
	if len(m.blocks) >= m.cap {
		// Wait for the earliest completion.
		earliest := m.doneAt[0]
		ei := 0
		for i, d := range m.doneAt {
			if d < earliest {
				earliest, ei = d, i
			}
		}
		wait := earliest - now
		m.Stat.FullStall += wait
		doneAt += wait
		// The freed register is reused by this miss.
		m.blocks[ei] = block
		m.doneAt[ei] = doneAt
		m.Stat.Primary++
		return doneAt
	}
	m.blocks = append(m.blocks, block)
	m.doneAt = append(m.doneAt, doneAt)
	m.Stat.Primary++
	return doneAt
}

// Reset clears all entries and statistics.
func (m *MSHRFile) Reset() {
	m.blocks = m.blocks[:0]
	m.doneAt = m.doneAt[:0]
	m.Stat = MSHRStats{}
}
