package cache

// Bus models interconnect occupancy between two levels of the hierarchy
// (the "interconnect bottlenecks" the paper adds to sim-outorder's memory
// system). A transfer occupies the bus for a fixed number of cycles;
// requests that arrive while the bus is busy are delayed.
type Bus struct {
	name      string
	perXfer   int
	nextFree  uint64
	Transfers uint64
	WaitCycle uint64
}

// NewBus returns a bus whose transfers occupy perXfer cycles each.
// perXfer of zero models an unconstrained interconnect.
func NewBus(name string, perXfer int) *Bus {
	return &Bus{name: name, perXfer: perXfer}
}

// Request schedules a transfer wanted at cycle now and returns the cycle at
// which the transfer actually starts.
func (b *Bus) Request(now uint64) uint64 {
	b.Transfers++
	start := now
	if b.nextFree > start {
		b.WaitCycle += b.nextFree - start
		start = b.nextFree
	}
	b.nextFree = start + uint64(b.perXfer)
	return start
}

// Reset clears occupancy and statistics.
func (b *Bus) Reset() {
	b.nextFree = 0
	b.Transfers = 0
	b.WaitCycle = 0
}
