// Package cache models the memory hierarchy: set-associative LRU caches and
// TLBs with externally visible tag/recency state, miss-status holding
// registers, a store buffer, and bus (interconnect) occupancy — the
// structures the paper's functional warming must keep warm and whose state
// live-points must checkpoint.
//
// A cache line records the full block address rather than a geometry-local
// tag, so the same state can be re-indexed into a different geometry — the
// property the Cache Set Record (internal/csr) relies on for reconstructing
// smaller or less-associative configurations.
package cache

import "fmt"

// Config describes one cache or TLB.
type Config struct {
	Name      string
	SizeBytes int64 // total capacity
	Assoc     int   // ways
	LineBytes int64 // block size (page size for TLBs)
	HitLat    int   // access latency in cycles on a hit
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int64 { return c.SizeBytes / (c.LineBytes * int64(c.Assoc)) }

// Lines returns the total number of lines.
func (c Config) Lines() int64 { return c.SizeBytes / c.LineBytes }

// Validate checks the geometry is usable (power-of-two sets and line size).
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Assoc <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("cache %s: non-positive geometry %+v", c.Name, c)
	}
	if c.SizeBytes%(c.LineBytes*int64(c.Assoc)) != 0 {
		return fmt.Errorf("cache %s: size %d not divisible by assoc*line", c.Name, c.SizeBytes)
	}
	if !isPow2(c.LineBytes) {
		return fmt.Errorf("cache %s: line size %d not a power of two", c.Name, c.LineBytes)
	}
	if s := c.Sets(); !isPow2(s) {
		return fmt.Errorf("cache %s: set count %d not a power of two", c.Name, s)
	}
	return nil
}

func isPow2(v int64) bool { return v > 0 && v&(v-1) == 0 }

// Line is one cache line's externally visible state. Block is the full
// block address (byte address >> log2(LineBytes)); Last is the value of the
// cache's access clock at the line's most recent touch (the LRU key and the
// CSR timestamp).
type Line struct {
	Block uint64
	Valid bool
	Dirty bool
	Last  uint64
}

// Stats counts cache events.
type Stats struct {
	Accesses   uint64
	Misses     uint64
	Writebacks uint64
}

// Cache is a set-associative LRU cache (or TLB).
type Cache struct {
	cfg     Config
	lines   []Line // sets*assoc, set-major
	setMask uint64
	lgLine  uint
	assoc   int
	clock   uint64 // monotonic access counter (LRU + CSR timestamps)
	Stat    Stats
}

// New builds an empty cache; the config must validate.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Cache{
		cfg:     cfg,
		lines:   make([]Line, cfg.Sets()*int64(cfg.Assoc)),
		setMask: uint64(cfg.Sets() - 1),
		assoc:   cfg.Assoc,
	}
	for l := cfg.LineBytes; l > 1; l >>= 1 {
		c.lgLine++
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// BlockOf returns the block address containing the byte address.
func (c *Cache) BlockOf(addr uint64) uint64 { return addr >> c.lgLine }

// setOf returns the set index for a block address.
func (c *Cache) setOf(block uint64) uint64 { return block & c.setMask }

// AccessResult describes the effects of one access.
type AccessResult struct {
	Hit bool
	// Victim describes a dirty line evicted by the fill on a miss.
	VictimDirty bool
	VictimBlock uint64
}

// Access performs a read or write access with fill-on-miss and LRU
// replacement, returning hit/victim information. This single path is used
// both by functional warming and by the detailed hierarchy (which layers
// latency, MSHR and bus modelling on top).
func (c *Cache) Access(addr uint64, write bool) AccessResult {
	c.clock++
	c.Stat.Accesses++
	block := c.BlockOf(addr)
	base := int(c.setOf(block)) * c.assoc
	set := c.lines[base : base+c.assoc]

	for i := range set {
		if set[i].Valid && set[i].Block == block {
			set[i].Last = c.clock
			if write {
				set[i].Dirty = true
			}
			return AccessResult{Hit: true}
		}
	}
	c.Stat.Misses++

	// Fill: choose invalid way, else LRU.
	vi := 0
	for i := range set {
		if !set[i].Valid {
			vi = i
			goto fill
		}
		if set[i].Last < set[vi].Last {
			vi = i
		}
	}
fill:
	res := AccessResult{}
	if set[vi].Valid && set[vi].Dirty {
		c.Stat.Writebacks++
		res.VictimDirty = true
		res.VictimBlock = set[vi].Block
	}
	set[vi] = Line{Block: block, Valid: true, Dirty: write, Last: c.clock}
	return res
}

// Probe reports whether the address currently hits, without updating any
// state. Used by wrong-path latency estimation and by tests.
func (c *Cache) Probe(addr uint64) bool {
	block := c.BlockOf(addr)
	base := int(c.setOf(block)) * c.assoc
	set := c.lines[base : base+c.assoc]
	for i := range set {
		if set[i].Valid && set[i].Block == block {
			return true
		}
	}
	return false
}

// Clock returns the cache's monotonic access counter.
func (c *Cache) Clock() uint64 { return c.clock }

// VisitLines calls fn for every valid line. Iteration order is set-major,
// way order within a set; deterministic.
func (c *Cache) VisitLines(fn func(Line)) {
	for i := range c.lines {
		if c.lines[i].Valid {
			fn(c.lines[i])
		}
	}
}

// ValidLines returns the number of valid lines.
func (c *Cache) ValidLines() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].Valid {
			n++
		}
	}
	return n
}

// Install places a line into the cache, evicting LRU if the set is full.
// It is used when reconstructing cache state from a checkpoint; Last values
// must come from a single consistent clock domain. The cache's clock is
// bumped to stay ahead of all installed timestamps.
func (c *Cache) Install(l Line) {
	base := int(c.setOf(l.Block)) * c.assoc
	set := c.lines[base : base+c.assoc]
	vi := 0
	for i := range set {
		if set[i].Valid && set[i].Block == l.Block {
			set[i] = l
			if l.Last > c.clock {
				c.clock = l.Last
			}
			return
		}
		if !set[i].Valid {
			vi = i
			goto place
		}
		if set[i].Last < set[vi].Last {
			vi = i
		}
	}
	// Set full: only replace if the incoming line is more recent than LRU.
	if set[vi].Last >= l.Last {
		return
	}
place:
	set[vi] = l
	if l.Last > c.clock {
		c.clock = l.Last
	}
}

// FillInvalid populates every invalid way with a synthetic garbage line:
// an unreachable block address (top bit set) with a pseudo-random recency
// drawn from the cache's current clock range. This materializes the
// paper's "uninitialized (effectively random)" state for restricted
// live-state simulation: garbage tags never hit, but they occupy ways and
// participate in LRU like the dropped state did.
func (c *Cache) FillInvalid(seed uint64) {
	clockRange := c.clock
	if clockRange == 0 {
		clockRange = 1
	}
	h := seed | 1
	for i := range c.lines {
		if c.lines[i].Valid {
			continue
		}
		h = h*6364136223846793005 + 1442695040888963407
		c.lines[i] = Line{
			Block: 1<<63 | h>>8, // outside any simulated address space
			Valid: true,
			Last:  h % clockRange,
		}
	}
}

// Reset invalidates all lines and zeroes statistics and the clock.
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i] = Line{}
	}
	c.clock = 0
	c.Stat = Stats{}
}

// ResetTo reconfigures the cache to cfg and resets it cold, reusing the
// line array whenever its capacity suffices. A cache reset to a
// configuration is indistinguishable from one freshly built with New, so
// per-point reconstruction can recycle one arena cache per structure
// instead of allocating.
func (c *Cache) ResetTo(cfg Config) error {
	if cfg != c.cfg {
		if err := cfg.Validate(); err != nil {
			return err
		}
		n := cfg.Sets() * int64(cfg.Assoc)
		if int64(cap(c.lines)) >= n {
			c.lines = c.lines[:n]
		} else {
			c.lines = make([]Line, n)
		}
		c.cfg = cfg
		c.setMask = uint64(cfg.Sets() - 1)
		c.assoc = cfg.Assoc
		c.lgLine = 0
		for l := cfg.LineBytes; l > 1; l >>= 1 {
			c.lgLine++
		}
	}
	c.Reset()
	return nil
}

// Clone returns a deep copy of the cache (state and statistics).
func (c *Cache) Clone() *Cache {
	n := New(c.cfg)
	copy(n.lines, c.lines)
	n.clock = c.clock
	n.Stat = c.Stat
	return n
}

// Equal reports whether two caches have identical visible state (geometry,
// valid lines, dirtiness; recency compared exactly). Used by tests.
func (c *Cache) Equal(o *Cache) bool {
	if c.cfg != o.cfg || len(c.lines) != len(o.lines) {
		return false
	}
	for i := range c.lines {
		if c.lines[i] != o.lines[i] {
			return false
		}
	}
	return true
}
