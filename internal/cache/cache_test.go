package cache

import (
	"testing"
	"testing/quick"
)

func cfg32k() Config {
	return Config{Name: "l1d", SizeBytes: 32 << 10, Assoc: 2, LineBytes: 32, HitLat: 1}
}

func TestConfigValidate(t *testing.T) {
	good := cfg32k()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Name: "a", SizeBytes: 0, Assoc: 2, LineBytes: 32},
		{Name: "b", SizeBytes: 32 << 10, Assoc: 3, LineBytes: 32}, // non-pow2 sets
		{Name: "c", SizeBytes: 32 << 10, Assoc: 2, LineBytes: 24}, // non-pow2 line
		{Name: "d", SizeBytes: 1000, Assoc: 3, LineBytes: 32},     // not divisible
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", c)
		}
	}
	if got := good.Sets(); got != 512 {
		t.Fatalf("sets=%d", got)
	}
	if got := good.Lines(); got != 1024 {
		t.Fatalf("lines=%d", got)
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := New(cfg32k())
	if res := c.Access(0x1000, false); res.Hit {
		t.Fatal("cold cache hit")
	}
	if res := c.Access(0x1000, false); !res.Hit {
		t.Fatal("warm line missed")
	}
	if res := c.Access(0x1010, false); !res.Hit {
		t.Fatal("same-line access missed")
	}
	if res := c.Access(0x1020, false); res.Hit {
		t.Fatal("next-line access hit")
	}
	if c.Stat.Accesses != 4 || c.Stat.Misses != 2 {
		t.Fatalf("stats %+v", c.Stat)
	}
}

func TestCacheLRUReplacement(t *testing.T) {
	// 2-way: fill a set with A and B, touch A, then C must evict B.
	c := New(cfg32k())
	setStride := uint64(c.Config().Sets() * c.Config().LineBytes)
	a, b, x := uint64(0x40), 0x40+setStride, 0x40+2*setStride
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // A is MRU
	c.Access(x, false) // evicts B
	if !c.Probe(a) {
		t.Fatal("MRU line evicted")
	}
	if c.Probe(b) {
		t.Fatal("LRU line survived")
	}
	if !c.Probe(x) {
		t.Fatal("filled line absent")
	}
}

func TestDirtyVictimWriteback(t *testing.T) {
	c := New(cfg32k())
	setStride := uint64(c.Config().Sets() * c.Config().LineBytes)
	c.Access(0x40, true) // dirty
	c.Access(0x40+setStride, false)
	res := c.Access(0x40+2*setStride, false) // evicts dirty 0x40
	if !res.VictimDirty {
		t.Fatal("dirty victim not reported")
	}
	if res.VictimBlock != c.BlockOf(0x40) {
		t.Fatalf("victim block %#x, want %#x", res.VictimBlock, c.BlockOf(0x40))
	}
	if c.Stat.Writebacks != 1 {
		t.Fatalf("writebacks=%d", c.Stat.Writebacks)
	}
}

func TestProbeDoesNotPerturb(t *testing.T) {
	c := New(cfg32k())
	c.Access(0x40, false)
	before := c.Clock()
	for i := 0; i < 10; i++ {
		c.Probe(0x40)
		c.Probe(0x999940)
	}
	if c.Clock() != before {
		t.Fatal("probe advanced the clock")
	}
}

func TestInstallPreservesMostRecent(t *testing.T) {
	c := New(Config{Name: "x", SizeBytes: 1 << 10, Assoc: 2, LineBytes: 32, HitLat: 1})
	// Three blocks in one set with distinct recency: install order must
	// not matter.
	s := uint64(c.Config().Sets() * 32)
	blocks := []Line{
		{Block: c.BlockOf(0 * s), Valid: true, Last: 5},
		{Block: c.BlockOf(1 * s), Valid: true, Last: 9},
		{Block: c.BlockOf(2 * s), Valid: true, Last: 1},
	}
	for _, perm := range [][]int{{0, 1, 2}, {2, 1, 0}, {1, 2, 0}} {
		c.Reset()
		for _, i := range perm {
			c.Install(blocks[i])
		}
		if !c.Probe(0) || !c.Probe(s) {
			t.Fatalf("perm %v: most recent blocks missing", perm)
		}
		if c.Probe(2 * s) {
			t.Fatalf("perm %v: least recent block survived", perm)
		}
	}
}

func TestCloneAndEqual(t *testing.T) {
	c := New(cfg32k())
	for i := 0; i < 100; i++ {
		c.Access(uint64(i)*64, i%3 == 0)
	}
	d := c.Clone()
	if !c.Equal(d) {
		t.Fatal("clone not equal")
	}
	d.Access(0xdead00, false)
	if c.Equal(d) {
		t.Fatal("diverged caches equal")
	}
}

func TestMSHRMergeAndFull(t *testing.T) {
	m := NewMSHRFile(2)
	d1 := m.Request(100, 0, 50)
	if d1 != 50 {
		t.Fatalf("first miss done at %d", d1)
	}
	// Secondary miss merges with the outstanding one.
	if d := m.Request(100, 10, 200); d != 50 {
		t.Fatalf("secondary miss done at %d, want 50", d)
	}
	if m.Stat.Secondary != 1 {
		t.Fatal("secondary miss not counted")
	}
	m.Request(101, 10, 80)
	// File full (blocks 100, 101): next miss waits for the earliest (50).
	d := m.Request(102, 20, 120)
	if d != 150 {
		t.Fatalf("full-file miss done at %d, want 120+30 wait", d)
	}
	if m.Stat.FullStall != 30 {
		t.Fatalf("stall cycles %d", m.Stat.FullStall)
	}
	// After time passes, registers retire.
	if got := m.Outstanding(1000); got != 0 {
		t.Fatalf("outstanding=%d at t=1000", got)
	}
}

func TestStoreBufferDrainAndStall(t *testing.T) {
	sb := NewStoreBuffer(2, 10)
	var drained []uint64
	fill := func(a uint64) { drained = append(drained, a) }
	if s := sb.Push(0x100, 0, fill); s != 0 {
		t.Fatalf("stall=%d", s)
	}
	if s := sb.Push(0x108, 1, fill); s != 0 {
		t.Fatalf("stall=%d", s)
	}
	// Buffer full: third push must stall until the head drains.
	s := sb.Push(0x110, 2, fill)
	if s == 0 {
		t.Fatal("full buffer did not stall")
	}
	if len(drained) == 0 || drained[0] != 0x100 {
		t.Fatalf("head not drained in order: %v", drained)
	}
	if !sb.Contains(0x110, 100000, fill) {
		// All entries drain eventually; after that Contains is false.
		t.Log("entry drained")
	}
	if sb.Len(1_000_000) != 0 {
		t.Fatal("buffer did not fully drain")
	}
}

func TestStoreBufferForwarding(t *testing.T) {
	sb := NewStoreBuffer(8, 100)
	sb.Push(0x200, 0, nil)
	if !sb.Contains(0x200, 1, nil) {
		t.Fatal("undrained store not visible for forwarding")
	}
	if sb.Contains(0x208, 1, nil) {
		t.Fatal("wrong address forwarded")
	}
}

func TestBusOccupancy(t *testing.T) {
	b := NewBus("test", 4)
	if got := b.Request(10); got != 10 {
		t.Fatalf("idle bus start %d", got)
	}
	if got := b.Request(11); got != 14 {
		t.Fatalf("busy bus start %d, want 14", got)
	}
	if got := b.Request(100); got != 100 {
		t.Fatalf("idle-again start %d", got)
	}
	if b.WaitCycle != 3 {
		t.Fatalf("wait cycles %d", b.WaitCycle)
	}
}

func TestHierWarmAndTimedConsistent(t *testing.T) {
	// Functional warming and the timed path must produce identical tag
	// state for the same access sequence.
	cfg := Config8WayHier()
	h1 := NewHier(cfg)
	h2 := NewHier(cfg)
	addrs := []uint64{0x1000, 0x2000, 0x1000, 0x40000, 0x80000, 0x2010, 0x100000}
	now := uint64(0)
	for i, a := range addrs {
		h1.WarmData(a, i%2 == 0)
		if i%2 == 0 {
			// The timed path splits stores into issue + commit.
			h2.Load(a, now) // not identical op mix; just exercise both
		} else {
			h2.Load(a, now)
		}
		now += 200
	}
	// Both hierarchies saw the same blocks; probe agreement on presence.
	for _, a := range addrs {
		if h1.L1D.Probe(a) != h2.L1D.Probe(a) {
			t.Fatalf("L1D presence of %#x differs between warm and timed paths", a)
		}
	}
}

// Config8WayHier mirrors the 8-way hierarchy without importing uarch
// (avoids an import cycle in tests).
func Config8WayHier() HierConfig {
	return HierConfig{
		L1I:          Config{Name: "l1i", SizeBytes: 32 << 10, Assoc: 2, LineBytes: 32, HitLat: 1},
		L1D:          Config{Name: "l1d", SizeBytes: 32 << 10, Assoc: 2, LineBytes: 32, HitLat: 1},
		L2:           Config{Name: "l2", SizeBytes: 1 << 20, Assoc: 4, LineBytes: 128, HitLat: 12},
		ITLB:         Config{Name: "itlb", SizeBytes: 128 * 4096, Assoc: 4, LineBytes: 4096, HitLat: 0},
		DTLB:         Config{Name: "dtlb", SizeBytes: 256 * 4096, Assoc: 4, LineBytes: 4096, HitLat: 0},
		TLBMissLat:   200,
		MemLat:       100,
		DMSHRs:       8,
		StoreBufSize: 16,
		StoreDrain:   2,
		L2BusBusy:    4,
		MemBusBusy:   8,
	}
}

func TestHierLoadLatencyOrdering(t *testing.T) {
	h := NewHier(Config8WayHier())
	// Cold load: TLB miss + L1 miss + L2 miss + memory.
	cold := h.Load(0x10000, 0)
	// Same line immediately after: everything hits (but MSHR may still
	// cover it — use a later cycle).
	warm := h.Load(0x10000, cold+10) - (cold + 10)
	if warm >= cold {
		t.Fatalf("warm latency %d not below cold %d", warm, cold)
	}
	if warm != uint64(h.Config().L1D.HitLat) {
		t.Fatalf("warm hit latency %d, want %d", warm, h.Config().L1D.HitLat)
	}
	// Same page, different L2 line: TLB hit, caches miss.
	mid := h.Load(0x10000+4096-128, cold+1000) - (cold + 1000)
	if mid >= cold || mid <= warm {
		t.Fatalf("latency ordering broken: cold=%d mid=%d warm=%d", cold, mid, warm)
	}
}

func TestHierStoreForwarding(t *testing.T) {
	h := NewHier(Config8WayHier())
	h.CommitStore(0x3000, 0)
	// A load right after the store commit forwards from the store buffer.
	done := h.Load(0x3000, 1)
	if done-1 != uint64(h.Config().L1D.HitLat) {
		t.Fatalf("forwarded load latency %d", done-1)
	}
}

func TestHierResetTransients(t *testing.T) {
	h := NewHier(Config8WayHier())
	h.Load(0x5000, 0)
	h.CommitStore(0x6000, 0)
	h.ResetTransients()
	if h.SB.Len(0) != 0 {
		t.Fatal("store buffer survived transient reset")
	}
	if h.MSHR.Outstanding(0) != 0 {
		t.Fatal("MSHRs survived transient reset")
	}
	if !h.L1D.Probe(0x5000) {
		t.Fatal("cache contents must survive transient reset")
	}
}

func TestCacheQuickContentsMatchShadow(t *testing.T) {
	// Property: a direct-mapped cache behaves like a map keyed by set.
	f := func(seed uint32) bool {
		c := New(Config{Name: "dm", SizeBytes: 4 << 10, Assoc: 1, LineBytes: 64, HitLat: 1})
		shadow := map[uint64]uint64{} // set -> block
		x := uint64(seed)
		for i := 0; i < 2000; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			addr := (x >> 16) % (1 << 20)
			block := c.BlockOf(addr)
			set := block & uint64(c.Config().Sets()-1)
			res := c.Access(addr, false)
			prev, present := shadow[set]
			wantHit := present && prev == block
			if res.Hit != wantHit {
				return false
			}
			shadow[set] = block
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
