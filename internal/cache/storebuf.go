package cache

// StoreBuffer models a finite store buffer between commit and the L1 data
// cache. Stores enter at commit and drain to the cache in FIFO order at a
// fixed drain interval; when the buffer is full, commit must stall until
// the head drains. Loads snoop the buffer for forwarding (the detailed
// core performs the address match; the buffer exposes Contains).
type StoreBuffer struct {
	cap       int
	drainLat  int // cycles between successive drains
	addrs     []uint64
	readyAt   []uint64 // cycle at which each entry drains
	lastDrain uint64
	Stat      StoreBufStats
}

// StoreBufStats counts store-buffer events.
type StoreBufStats struct {
	Stores     uint64
	FullStalls uint64 // cycles of commit stall due to a full buffer
}

// NewStoreBuffer returns a buffer with n entries draining one store per
// drainLat cycles.
func NewStoreBuffer(n, drainLat int) *StoreBuffer {
	if n <= 0 {
		panic("cache: store buffer needs at least one entry")
	}
	if drainLat < 1 {
		drainLat = 1
	}
	return &StoreBuffer{cap: n, drainLat: drainLat}
}

// Cap returns the buffer capacity.
func (sb *StoreBuffer) Cap() int { return sb.cap }

// drain retires entries whose drain time has passed, invoking fill for each
// drained store address.
func (sb *StoreBuffer) drain(now uint64, fill func(addr uint64)) {
	i := 0
	for ; i < len(sb.addrs) && sb.readyAt[i] <= now; i++ {
		if fill != nil {
			fill(sb.addrs[i])
		}
	}
	if i > 0 {
		sb.addrs = sb.addrs[i:]
		sb.readyAt = sb.readyAt[i:]
	}
}

// Push commits a store at cycle now, returning the number of stall cycles
// commit incurs (zero unless the buffer is full). fill is called for each
// store that drains to the cache as a side effect.
func (sb *StoreBuffer) Push(addr uint64, now uint64, fill func(addr uint64)) (stall uint64) {
	sb.Stat.Stores++
	sb.drain(now, fill)
	if len(sb.addrs) >= sb.cap {
		// Stall until the head drains.
		wait := sb.readyAt[0] - now
		sb.Stat.FullStalls += wait
		now += wait
		stall = wait
		sb.drain(now, fill)
	}
	drainAt := now + uint64(sb.drainLat)
	if sb.lastDrain+uint64(sb.drainLat) > drainAt {
		drainAt = sb.lastDrain + uint64(sb.drainLat)
	}
	sb.lastDrain = drainAt
	sb.addrs = append(sb.addrs, addr)
	sb.readyAt = append(sb.readyAt, drainAt)
	return stall
}

// Contains reports whether a word-aligned address has an un-drained store,
// for store-to-load forwarding. Matching is by 8-byte word.
func (sb *StoreBuffer) Contains(addr uint64, now uint64, fill func(addr uint64)) bool {
	sb.drain(now, fill)
	for i := len(sb.addrs) - 1; i >= 0; i-- {
		if sb.addrs[i] == addr {
			return true
		}
	}
	return false
}

// Len returns the current occupancy (after draining at cycle now).
func (sb *StoreBuffer) Len(now uint64) int {
	sb.drain(now, nil)
	return len(sb.addrs)
}

// Reset clears the buffer and statistics.
func (sb *StoreBuffer) Reset() {
	sb.addrs = sb.addrs[:0]
	sb.readyAt = sb.readyAt[:0]
	sb.lastDrain = 0
	sb.Stat = StoreBufStats{}
}
