package cache

// HierConfig describes the complete memory hierarchy of a simulated
// machine: split L1 instruction/data caches, a unified L2, instruction and
// data TLBs, MSHRs on the data side, a store buffer, and the L2/memory
// interconnects.
type HierConfig struct {
	L1I, L1D, L2 Config
	ITLB, DTLB   Config
	TLBMissLat   int // cycles added to an access on a TLB miss
	MemLat       int // main memory access latency in cycles
	DMSHRs       int // data-side miss status holding registers
	StoreBufSize int
	StoreDrain   int // cycles between store-buffer drains
	L2BusBusy    int // L1<->L2 interconnect occupancy per transfer
	MemBusBusy   int // L2<->memory interconnect occupancy per transfer
}

// Validate checks every component configuration.
func (hc HierConfig) Validate() error {
	for _, c := range []Config{hc.L1I, hc.L1D, hc.L2, hc.ITLB, hc.DTLB} {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Hier is an instantiated memory hierarchy. It serves two roles with the
// same state: timing-free functional warming (WarmData/WarmFetch) and
// latency computation for the detailed core (Load/IFetch/CommitStore).
type Hier struct {
	cfg    HierConfig
	L1I    *Cache
	L1D    *Cache
	L2     *Cache
	ITLB   *Cache
	DTLB   *Cache
	MSHR   *MSHRFile
	SB     *StoreBuffer
	L2Bus  *Bus
	MemBus *Bus
}

// NewHier instantiates an empty hierarchy; the config must validate.
func NewHier(cfg HierConfig) *Hier {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Hier{
		cfg:    cfg,
		L1I:    New(cfg.L1I),
		L1D:    New(cfg.L1D),
		L2:     New(cfg.L2),
		ITLB:   New(cfg.ITLB),
		DTLB:   New(cfg.DTLB),
		MSHR:   NewMSHRFile(cfg.DMSHRs),
		SB:     NewStoreBuffer(cfg.StoreBufSize, cfg.StoreDrain),
		L2Bus:  NewBus("l2bus", cfg.L2BusBusy),
		MemBus: NewBus("membus", cfg.MemBusBusy),
	}
}

// Config returns the hierarchy configuration.
func (h *Hier) Config() HierConfig { return h.cfg }

// --- Functional warming (timing-free) ---------------------------------

// WarmData performs a timing-free data access, updating DTLB, L1D and L2
// tag and recency state exactly as the detailed path would.
func (h *Hier) WarmData(addr uint64, write bool) {
	h.DTLB.Access(addr, false)
	res := h.L1D.Access(addr, write)
	if res.Hit {
		return
	}
	if res.VictimDirty {
		h.L2.Access(res.VictimBlock<<log2(h.cfg.L1D.LineBytes), true)
	}
	l2res := h.L2.Access(addr, false)
	if !l2res.Hit && write {
		// Write-allocate: the L1 line is dirty; the L2 copy stays clean
		// until the L1 victim writes back.
		_ = l2res
	}
}

// WarmFetch performs a timing-free instruction fetch access.
func (h *Hier) WarmFetch(addr uint64) {
	h.ITLB.Access(addr, false)
	res := h.L1I.Access(addr, false)
	if !res.Hit {
		h.L2.Access(addr, false)
	}
}

// --- Detailed timing paths ---------------------------------------------

// Load computes the completion cycle of a load issued at cycle now,
// updating all hierarchy state (TLB, caches, MSHRs, buses). Forwarding
// from the store buffer is checked first: forwarded loads complete at L1
// hit latency without touching the cache.
func (h *Hier) Load(addr uint64, now uint64) (doneAt uint64) {
	if h.SB.Contains(addr, now, h.drainFill(now)) {
		return now + uint64(h.cfg.L1D.HitLat)
	}
	start := now
	if !h.DTLB.Access(addr, false).Hit {
		start += uint64(h.cfg.TLBMissLat)
	}
	res := h.L1D.Access(addr, false)
	t := start + uint64(h.cfg.L1D.HitLat)
	if res.Hit {
		return t
	}
	if res.VictimDirty {
		h.L2Bus.Request(t)
		h.L2.Access(res.VictimBlock<<log2(h.cfg.L1D.LineBytes), true)
	}
	t = h.L2Bus.Request(t) + uint64(h.cfg.L2.HitLat)
	l2res := h.L2.Access(addr, false)
	if !l2res.Hit {
		if l2res.VictimDirty {
			h.MemBus.Request(t)
		}
		t = h.MemBus.Request(t) + uint64(h.cfg.MemLat)
	}
	return h.MSHR.Request(h.L1D.BlockOf(addr), now, t)
}

// StoreAddr computes the completion cycle of a store's address/tag check at
// issue time. The data write itself happens at commit via CommitStore; at
// issue a store only occupies a port and checks the TLB.
func (h *Hier) StoreAddr(addr uint64, now uint64) (doneAt uint64) {
	start := now
	if !h.DTLB.Access(addr, false).Hit {
		start += uint64(h.cfg.TLBMissLat)
	}
	return start + uint64(h.cfg.L1D.HitLat)
}

// CommitStore enters a committed store into the store buffer, returning
// commit stall cycles (non-zero only when the buffer is full).
func (h *Hier) CommitStore(addr uint64, now uint64) (stall uint64) {
	return h.SB.Push(addr, now, h.drainFill(now))
}

// drainFill returns the fill callback used when store-buffer entries drain:
// the drained store performs its cache write.
func (h *Hier) drainFill(now uint64) func(addr uint64) {
	return func(addr uint64) {
		res := h.L1D.Access(addr, true)
		if !res.Hit {
			if res.VictimDirty {
				h.L2.Access(res.VictimBlock<<log2(h.cfg.L1D.LineBytes), true)
			}
			h.L2.Access(addr, false)
			h.MSHR.Request(h.L1D.BlockOf(addr), now, now+uint64(h.cfg.L2.HitLat))
		}
	}
}

// IFetch computes the completion cycle of an instruction-cache line fetch
// issued at cycle now.
func (h *Hier) IFetch(addr uint64, now uint64) (doneAt uint64) {
	start := now
	if !h.ITLB.Access(addr, false).Hit {
		start += uint64(h.cfg.TLBMissLat)
	}
	res := h.L1I.Access(addr, false)
	t := start + uint64(h.cfg.L1I.HitLat)
	if res.Hit {
		return t
	}
	t = h.L2Bus.Request(t) + uint64(h.cfg.L2.HitLat)
	if !h.L2.Access(addr, false).Hit {
		t = h.MemBus.Request(t) + uint64(h.cfg.MemLat)
	}
	return t
}

// ResetTransients clears cycle-domain state (MSHRs, store buffer, buses)
// while preserving cache and TLB contents. The detailed core calls this at
// the start of each window because its cycle counter restarts at zero while
// the warmed tag state carries over.
func (h *Hier) ResetTransients() {
	h.MSHR.Reset()
	h.SB.Reset()
	h.L2Bus.Reset()
	h.MemBus.Reset()
}

// ResetTo reconfigures the hierarchy to cfg and resets every structure
// cold, reusing the component caches' line arrays where capacities allow.
// Equivalent to NewHier(cfg) state-wise, without the per-point allocation.
func (h *Hier) ResetTo(cfg HierConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if err := h.L1I.ResetTo(cfg.L1I); err != nil {
		return err
	}
	if err := h.L1D.ResetTo(cfg.L1D); err != nil {
		return err
	}
	if err := h.L2.ResetTo(cfg.L2); err != nil {
		return err
	}
	if err := h.ITLB.ResetTo(cfg.ITLB); err != nil {
		return err
	}
	if err := h.DTLB.ResetTo(cfg.DTLB); err != nil {
		return err
	}
	if cfg.DMSHRs != h.cfg.DMSHRs {
		h.MSHR = NewMSHRFile(cfg.DMSHRs)
	} else {
		h.MSHR.Reset()
	}
	if cfg.StoreBufSize != h.cfg.StoreBufSize || cfg.StoreDrain != h.cfg.StoreDrain {
		h.SB = NewStoreBuffer(cfg.StoreBufSize, cfg.StoreDrain)
	} else {
		h.SB.Reset()
	}
	if cfg.L2BusBusy != h.cfg.L2BusBusy {
		h.L2Bus = NewBus("l2bus", cfg.L2BusBusy)
	} else {
		h.L2Bus.Reset()
	}
	if cfg.MemBusBusy != h.cfg.MemBusBusy {
		h.MemBus = NewBus("membus", cfg.MemBusBusy)
	} else {
		h.MemBus.Reset()
	}
	h.cfg = cfg
	return nil
}

// Reset empties every structure (cold caches).
func (h *Hier) Reset() {
	h.L1I.Reset()
	h.L1D.Reset()
	h.L2.Reset()
	h.ITLB.Reset()
	h.DTLB.Reset()
	h.MSHR.Reset()
	h.SB.Reset()
	h.L2Bus.Reset()
	h.MemBus.Reset()
}

// Clone deep-copies the hierarchy state.
func (h *Hier) Clone() *Hier {
	n := NewHier(h.cfg)
	n.L1I = h.L1I.Clone()
	n.L1D = h.L1D.Clone()
	n.L2 = h.L2.Clone()
	n.ITLB = h.ITLB.Clone()
	n.DTLB = h.DTLB.Clone()
	return n
}

func log2(v int64) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
