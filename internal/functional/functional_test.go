package functional

import (
	"errors"
	"math"
	"testing"

	"livepoints/internal/isa"
	"livepoints/internal/mem"
)

// sliceText adapts a []isa.Inst to TextSource.
type sliceText []isa.Inst

func (s sliceText) Fetch(pc uint64) (isa.Inst, bool) {
	if pc >= uint64(len(s)) {
		return isa.Inst{}, false
	}
	return s[pc], true
}

func run(t *testing.T, text []isa.Inst, maxInst uint64) *CPU {
	t.Helper()
	cpu := New(sliceText(text), mem.New())
	if _, err := cpu.RunToHalt(maxInst); err != nil {
		t.Fatal(err)
	}
	return cpu
}

func TestArithmetic(t *testing.T) {
	cpu := run(t, []isa.Inst{
		{Op: isa.OpLui, Rd: 1, Imm: 20},
		{Op: isa.OpLui, Rd: 2, Imm: 3},
		{Op: isa.OpAdd, Rd: 3, Rs1: 1, Rs2: 2},
		{Op: isa.OpSub, Rd: 4, Rs1: 1, Rs2: 2},
		{Op: isa.OpMul, Rd: 5, Rs1: 1, Rs2: 2},
		{Op: isa.OpDiv, Rd: 6, Rs1: 1, Rs2: 2},
		{Op: isa.OpRem, Rd: 7, Rs1: 1, Rs2: 2},
		{Op: isa.OpShlI, Rd: 8, Rs1: 1, Imm: 2},
		{Op: isa.OpSlt, Rd: 9, Rs1: 2, Rs2: 1},
		{Op: isa.OpHalt},
	}, 100)
	want := map[uint8]uint64{3: 23, 4: 17, 5: 60, 6: 6, 7: 2, 8: 80, 9: 1}
	for r, v := range want {
		if cpu.Regs[r] != v {
			t.Errorf("r%d = %d, want %d", r, cpu.Regs[r], v)
		}
	}
}

func TestDivideByZeroYieldsZero(t *testing.T) {
	cpu := run(t, []isa.Inst{
		{Op: isa.OpLui, Rd: 1, Imm: 7},
		{Op: isa.OpDiv, Rd: 2, Rs1: 1, Rs2: 0},
		{Op: isa.OpRem, Rd: 3, Rs1: 1, Rs2: 0},
		{Op: isa.OpHalt},
	}, 10)
	if cpu.Regs[2] != 0 || cpu.Regs[3] != 0 {
		t.Fatalf("div/rem by zero: %d %d", cpu.Regs[2], cpu.Regs[3])
	}
}

func TestFloatingPoint(t *testing.T) {
	bits := math.Float64bits
	cpu := run(t, []isa.Inst{
		{Op: isa.OpLui, Rd: 1, Imm: int64(bits(1.5))},
		{Op: isa.OpLui, Rd: 2, Imm: int64(bits(2.0))},
		{Op: isa.OpFAdd, Rd: 3, Rs1: 1, Rs2: 2},
		{Op: isa.OpFMul, Rd: 4, Rs1: 1, Rs2: 2},
		{Op: isa.OpFDiv, Rd: 5, Rs1: 2, Rs2: 1},
		{Op: isa.OpFSub, Rd: 6, Rs1: 2, Rs2: 1},
		{Op: isa.OpFCmp, Rd: 7, Rs1: 1, Rs2: 2},
		{Op: isa.OpHalt},
	}, 10)
	checks := map[uint8]float64{3: 3.5, 4: 3.0, 5: 2.0 / 1.5, 6: 0.5}
	for r, v := range checks {
		if got := math.Float64frombits(cpu.Regs[r]); got != v {
			t.Errorf("r%d = %v, want %v", r, got, v)
		}
	}
	if cpu.Regs[7] != 1 {
		t.Error("fcmp 1.5 < 2.0 should be 1")
	}
}

func TestRegisterZeroHardwired(t *testing.T) {
	cpu := run(t, []isa.Inst{
		{Op: isa.OpLui, Rd: 0, Imm: 99},
		{Op: isa.OpAddI, Rd: 1, Rs1: 0, Imm: 5},
		{Op: isa.OpHalt},
	}, 10)
	if cpu.Regs[0] != 0 {
		t.Fatal("r0 was written")
	}
	if cpu.Regs[1] != 5 {
		t.Fatalf("r1 = %d", cpu.Regs[1])
	}
}

func TestLoadStore(t *testing.T) {
	cpu := run(t, []isa.Inst{
		{Op: isa.OpLui, Rd: 1, Imm: 0x10000},
		{Op: isa.OpLui, Rd: 2, Imm: 77},
		{Op: isa.OpStore, Rs1: 1, Rs2: 2, Imm: 8},
		{Op: isa.OpLoad, Rd: 3, Rs1: 1, Imm: 8},
		{Op: isa.OpHalt},
	}, 10)
	if cpu.Regs[3] != 77 {
		t.Fatalf("load got %d", cpu.Regs[3])
	}
}

func TestControlFlow(t *testing.T) {
	// Loop: r1 counts down from 3; r2 accumulates.
	cpu := run(t, []isa.Inst{
		{Op: isa.OpLui, Rd: 1, Imm: 3},
		{Op: isa.OpAddI, Rd: 2, Rs1: 2, Imm: 10}, // loop body
		{Op: isa.OpAddI, Rd: 1, Rs1: 1, Imm: -1},
		{Op: isa.OpBne, Rs1: 1, Rs2: 0, Imm: 1},
		{Op: isa.OpHalt},
	}, 100)
	if cpu.Regs[2] != 30 {
		t.Fatalf("r2 = %d, want 30", cpu.Regs[2])
	}
	if cpu.InstRet != 1+3*3 {
		t.Fatalf("InstRet = %d", cpu.InstRet)
	}
}

func TestCallReturn(t *testing.T) {
	cpu := run(t, []isa.Inst{
		{Op: isa.OpCall, Rd: isa.RegLink, Imm: 3}, // call sub
		{Op: isa.OpAddI, Rd: 2, Rs1: 2, Imm: 1},   // after return
		{Op: isa.OpHalt},
		{Op: isa.OpAddI, Rd: 3, Rs1: 3, Imm: 7}, // sub:
		{Op: isa.OpRet, Rs1: isa.RegLink},
	}, 100)
	if cpu.Regs[3] != 7 || cpu.Regs[2] != 1 {
		t.Fatalf("r3=%d r2=%d", cpu.Regs[3], cpu.Regs[2])
	}
}

func TestStepAfterHalt(t *testing.T) {
	cpu := run(t, []isa.Inst{{Op: isa.OpHalt}}, 10)
	if err := cpu.Step(); !errors.Is(err, ErrHalted) {
		t.Fatalf("step after halt: %v", err)
	}
}

func TestFetchBeyondText(t *testing.T) {
	cpu := New(sliceText([]isa.Inst{{Op: isa.OpNop}}), mem.New())
	cpu.Step() // nop, pc -> 1
	if err := cpu.Step(); !errors.Is(err, ErrNoText) {
		t.Fatalf("fetch beyond text: %v", err)
	}
}

func TestRunToHaltBound(t *testing.T) {
	// Infinite loop must be caught by the bound.
	cpu := New(sliceText([]isa.Inst{{Op: isa.OpJmp, Imm: 0}}), mem.New())
	if _, err := cpu.RunToHalt(1000); err == nil {
		t.Fatal("unbounded loop not detected")
	}
}

func TestWarmerReceivesEvents(t *testing.T) {
	text := []isa.Inst{
		{Op: isa.OpLui, Rd: 1, Imm: 0x20000},
		{Op: isa.OpLoad, Rd: 2, Rs1: 1},
		{Op: isa.OpStore, Rs1: 1, Rs2: 2, Imm: 8},
		{Op: isa.OpBne, Rs1: 0, Rs2: 0, Imm: 0}, // not taken
		{Op: isa.OpHalt},
	}
	cpu := New(sliceText(text), mem.New())
	w := &countingWarmer{}
	cpu.Warm = w
	if _, err := cpu.RunToHalt(100); err != nil {
		t.Fatal(err)
	}
	if w.fetches != 5 {
		t.Errorf("fetches=%d, want 5 (one per executed instruction incl. halt)", w.fetches)
	}
	if w.mems != 2 {
		t.Errorf("mems=%d, want 2", w.mems)
	}
	if w.branches != 1 {
		t.Errorf("branches=%d, want 1", w.branches)
	}
}

type countingWarmer struct {
	fetches, mems, branches int
}

func (w *countingWarmer) WarmFetch(addr uint64)                     { w.fetches++ }
func (w *countingWarmer) WarmMem(addr uint64, write bool)           { w.mems++ }
func (w *countingWarmer) WarmBranch(uint64, isa.Inst, bool, uint64) { w.branches++ }

func TestExecAgainstImage(t *testing.T) {
	// Loads from an image report availability; Exec substitutes zero.
	img := mem.NewImage(map[uint64]uint64{0x100: 42})
	st := &State{}
	st.SetReg(1, 0x100)
	res := Exec(st, isa.Inst{Op: isa.OpLoad, Rd: 2, Rs1: 1}, wrapImage{img})
	if !res.LoadOK || st.Reg(2) != 42 {
		t.Fatalf("captured load: ok=%v v=%d", res.LoadOK, st.Reg(2))
	}
	st.SetReg(1, 0x200)
	res = Exec(st, isa.Inst{Op: isa.OpLoad, Rd: 2, Rs1: 1}, wrapImage{img})
	if res.LoadOK {
		t.Fatal("uncaptured load reported available")
	}
	if st.Reg(2) != 0 {
		t.Fatal("unavailable load must substitute zero")
	}
}

// wrapImage adds a panicking writer to a read-only image.
type wrapImage struct{ *mem.Image }

func (wrapImage) WriteWord(addr, val uint64) { panic("write to read-only image") }
