// Package functional implements the architectural (functional) simulator:
// the reference executor that defines the ISA's semantics.
//
// Both the functional-warming engine and the detailed out-of-order core
// execute instructions through Exec, so architectural behaviour is defined
// in exactly one place. This is the property behind the SMARTS-style
// handoff invariant: a detailed window that commits N instructions must
// leave the architecture in the same state as N functional steps.
package functional

import (
	"errors"
	"fmt"
	"math"

	"livepoints/internal/isa"
	"livepoints/internal/mem"
)

// TextSource supplies instructions. ok=false means the address holds no
// known instruction (possible when running on a live-point's sparse text;
// the functional correct path must never see it, but wrong-path fetch in
// the detailed simulator may).
type TextSource interface {
	Fetch(pc uint64) (isa.Inst, bool)
}

// MemRW combines the memory read and write interfaces.
type MemRW interface {
	mem.Reader
	mem.Writer
}

// State is the complete architectural state of the simulated CPU.
type State struct {
	PC      uint64 // instruction index
	Regs    [isa.NumRegs]uint64
	Halted  bool
	InstRet uint64 // retired (committed) instruction count
}

// Clone returns a copy of the state.
func (s *State) Clone() State { return *s }

// Reg reads a register honouring the hardwired zero register.
func (s *State) Reg(r uint8) uint64 {
	if r == isa.RegZero {
		return 0
	}
	return s.Regs[r]
}

// SetReg writes a register honouring the hardwired zero register.
func (s *State) SetReg(r uint8, v uint64) {
	if r != isa.RegZero {
		s.Regs[r] = v
	}
}

// Result describes the architectural effects of one executed instruction,
// for consumers that need more than the state update (warming, the detailed
// core's dispatch, live-state capture).
type Result struct {
	// NextPC is the architecturally correct next instruction index.
	NextPC uint64
	// Taken is true when a control transfer redirected the PC.
	Taken bool
	// IsMem/IsLoad/IsStore classify memory behaviour; MemAddr is the
	// word-aligned effective byte address.
	IsMem   bool
	IsLoad  bool
	IsStore bool
	MemAddr uint64
	// LoadOK is false when a load's value was unavailable in a sparse
	// image (the wrong-path "unknown value" case; zero was substituted).
	LoadOK bool
	// Halt is true for OpHalt.
	Halt bool
}

// Exec executes one instruction against st and m, updating both, and
// returns the architectural effects. It never advances st.PC — the caller
// decides how to use Result.NextPC (the functional CPU assigns it; the
// detailed core uses it for its own sequencing and squash checks).
func Exec(st *State, in isa.Inst, m MemRW) Result {
	res := Result{NextPC: st.PC + 1, LoadOK: true}
	switch in.Op {
	case isa.OpNop:
	case isa.OpAdd:
		st.SetReg(in.Rd, st.Reg(in.Rs1)+st.Reg(in.Rs2))
	case isa.OpSub:
		st.SetReg(in.Rd, st.Reg(in.Rs1)-st.Reg(in.Rs2))
	case isa.OpAnd:
		st.SetReg(in.Rd, st.Reg(in.Rs1)&st.Reg(in.Rs2))
	case isa.OpOr:
		st.SetReg(in.Rd, st.Reg(in.Rs1)|st.Reg(in.Rs2))
	case isa.OpXor:
		st.SetReg(in.Rd, st.Reg(in.Rs1)^st.Reg(in.Rs2))
	case isa.OpShl:
		st.SetReg(in.Rd, st.Reg(in.Rs1)<<(st.Reg(in.Rs2)&63))
	case isa.OpShr:
		st.SetReg(in.Rd, st.Reg(in.Rs1)>>(st.Reg(in.Rs2)&63))
	case isa.OpAddI:
		st.SetReg(in.Rd, st.Reg(in.Rs1)+uint64(in.Imm))
	case isa.OpAndI:
		st.SetReg(in.Rd, st.Reg(in.Rs1)&uint64(in.Imm))
	case isa.OpShlI:
		st.SetReg(in.Rd, st.Reg(in.Rs1)<<(uint64(in.Imm)&63))
	case isa.OpShrI:
		st.SetReg(in.Rd, st.Reg(in.Rs1)>>(uint64(in.Imm)&63))
	case isa.OpLui:
		st.SetReg(in.Rd, uint64(in.Imm))
	case isa.OpSlt:
		st.SetReg(in.Rd, boolToU64(int64(st.Reg(in.Rs1)) < int64(st.Reg(in.Rs2))))
	case isa.OpSltI:
		st.SetReg(in.Rd, boolToU64(int64(st.Reg(in.Rs1)) < in.Imm))
	case isa.OpMul:
		st.SetReg(in.Rd, st.Reg(in.Rs1)*st.Reg(in.Rs2))
	case isa.OpDiv:
		d := int64(st.Reg(in.Rs2))
		if d == 0 {
			st.SetReg(in.Rd, 0)
		} else {
			st.SetReg(in.Rd, uint64(int64(st.Reg(in.Rs1))/d))
		}
	case isa.OpRem:
		d := int64(st.Reg(in.Rs2))
		if d == 0 {
			st.SetReg(in.Rd, 0)
		} else {
			st.SetReg(in.Rd, uint64(int64(st.Reg(in.Rs1))%d))
		}
	case isa.OpFAdd:
		st.SetReg(in.Rd, fop(st.Reg(in.Rs1), st.Reg(in.Rs2), func(a, b float64) float64 { return a + b }))
	case isa.OpFSub:
		st.SetReg(in.Rd, fop(st.Reg(in.Rs1), st.Reg(in.Rs2), func(a, b float64) float64 { return a - b }))
	case isa.OpFMul:
		st.SetReg(in.Rd, fop(st.Reg(in.Rs1), st.Reg(in.Rs2), func(a, b float64) float64 { return a * b }))
	case isa.OpFDiv:
		st.SetReg(in.Rd, fop(st.Reg(in.Rs1), st.Reg(in.Rs2), fdiv))
	case isa.OpFCmp:
		a := math.Float64frombits(st.Reg(in.Rs1))
		b := math.Float64frombits(st.Reg(in.Rs2))
		st.SetReg(in.Rd, boolToU64(a < b))
	case isa.OpLoad:
		addr := mem.WordAlign(st.Reg(in.Rs1) + uint64(in.Imm))
		v, ok := m.ReadWord(addr)
		st.SetReg(in.Rd, v)
		res.IsMem, res.IsLoad, res.MemAddr, res.LoadOK = true, true, addr, ok
	case isa.OpStore:
		addr := mem.WordAlign(st.Reg(in.Rs1) + uint64(in.Imm))
		m.WriteWord(addr, st.Reg(in.Rs2))
		res.IsMem, res.IsStore, res.MemAddr = true, true, addr
	case isa.OpBeq:
		res.Taken = st.Reg(in.Rs1) == st.Reg(in.Rs2)
	case isa.OpBne:
		res.Taken = st.Reg(in.Rs1) != st.Reg(in.Rs2)
	case isa.OpBltz:
		res.Taken = int64(st.Reg(in.Rs1)) < 0
	case isa.OpBgez:
		res.Taken = int64(st.Reg(in.Rs1)) >= 0
	case isa.OpJmp:
		res.Taken = true
	case isa.OpJr, isa.OpRet:
		res.Taken = true
		res.NextPC = st.Reg(in.Rs1)
	case isa.OpCall:
		st.SetReg(in.Rd, st.PC+1)
		res.Taken = true
	case isa.OpHalt:
		res.Halt = true
		res.NextPC = st.PC
	default:
		// Unknown opcodes (possible only on wrong paths over unavailable
		// text) behave as nops.
	}
	if res.Taken && in.Op != isa.OpJr && in.Op != isa.OpRet {
		res.NextPC = uint64(in.Imm)
	}
	return res
}

func boolToU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func fop(a, b uint64, f func(float64, float64) float64) uint64 {
	return math.Float64bits(f(math.Float64frombits(a), math.Float64frombits(b)))
}

func fdiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// ErrHalted is returned by Step/Run once the program has halted.
var ErrHalted = errors.New("functional: program halted")

// ErrNoText is returned when the correct-path PC has no instruction.
var ErrNoText = errors.New("functional: fetch from unavailable text")

// Warmer receives architectural events during functional execution to keep
// long-history microarchitectural structures warm (the paper's functional
// warming). All addresses are byte addresses.
type Warmer interface {
	// WarmFetch is called once per executed instruction with the
	// instruction's byte address.
	WarmFetch(addr uint64)
	// WarmMem is called for each data access with the word-aligned
	// effective address.
	WarmMem(addr uint64, write bool)
	// WarmBranch is called for each control-transfer instruction with its
	// byte address, the taken outcome, and the target byte address.
	WarmBranch(addr uint64, in isa.Inst, taken bool, target uint64)
}

// CPU is the functional simulator: architectural state bound to a text
// source and a memory, with optional functional warming.
type CPU struct {
	State
	Text TextSource
	Mem  MemRW

	// Warm, when non-nil, receives warming events for every executed
	// instruction (the SMARTS functional-warming mode). Swap to nil for
	// pure fast-forward functional simulation.
	Warm Warmer
}

// New returns a functional CPU at PC 0 over the given text and memory.
func New(text TextSource, m MemRW) *CPU {
	return &CPU{Text: text, Mem: m}
}

// Reset rebinds the CPU to new text, memory, and architectural state,
// clearing the warmer. Equivalent to *c = *New(text, m) with c.State = st;
// arena-based runners reuse one CPU across simulation windows.
func (c *CPU) Reset(text TextSource, m MemRW, st State) {
	c.State = st
	c.Text = text
	c.Mem = m
	c.Warm = nil
}

// Step executes one instruction. It returns ErrHalted when the program has
// already halted and ErrNoText when the PC has no instruction.
func (c *CPU) Step() error {
	if c.Halted {
		return ErrHalted
	}
	in, ok := c.Text.Fetch(c.PC)
	if !ok {
		return fmt.Errorf("%w: pc %d", ErrNoText, c.PC)
	}
	res := Exec(&c.State, in, c.Mem)
	if c.Warm != nil {
		c.Warm.WarmFetch(isa.PCToAddr(c.PC))
		if res.IsMem {
			c.Warm.WarmMem(res.MemAddr, res.IsStore)
		}
		if in.Op.IsBranch() {
			c.Warm.WarmBranch(isa.PCToAddr(c.PC), in, res.Taken, isa.PCToAddr(res.NextPC))
		}
	}
	if res.Halt {
		c.Halted = true
		return nil
	}
	c.PC = res.NextPC
	c.InstRet++
	return nil
}

// Run executes up to n instructions, stopping early on halt. It returns the
// number actually executed.
func (c *CPU) Run(n uint64) (uint64, error) {
	var done uint64
	for done < n {
		if c.Halted {
			return done, nil
		}
		if err := c.Step(); err != nil {
			return done, err
		}
		if c.Halted {
			return done, nil
		}
		done++
	}
	return done, nil
}

// RunToHalt executes until the program halts, with a safety bound to guard
// against generator bugs producing unbounded programs.
func (c *CPU) RunToHalt(maxInst uint64) (uint64, error) {
	done, err := c.Run(maxInst)
	if err != nil {
		return done, err
	}
	if !c.Halted {
		return done, fmt.Errorf("functional: program did not halt within %d instructions", maxInst)
	}
	return done, nil
}
