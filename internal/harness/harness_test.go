package harness

import (
	"strings"
	"testing"

	"livepoints/internal/bpred"
	"livepoints/internal/uarch"
)

// tinyContext builds a fast throwaway context over two contrasting
// benchmarks.
func tinyContext(t *testing.T) *Context {
	t.Helper()
	c := NewContext(t.TempDir(), 0.02)
	c.MaxLibPoints = 60
	c.Offsets = 1
	c.Parallel = 2
	c.Benches = []string{"syn.gzip", "syn.mcf"}
	return c
}

func TestTable1Renders(t *testing.T) {
	s := Table1()
	for _, want := range []string{"RUU/LSQ", "128/64", "256/128", "1MB 4-way L2", "4MB 8-way L2"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
}

func TestBenchLenCaches(t *testing.T) {
	c := tinyContext(t)
	n1, err := c.BenchLen("syn.gzip")
	if err != nil {
		t.Fatal(err)
	}
	n2, err := c.BenchLen("syn.gzip")
	if err != nil {
		t.Fatal(err)
	}
	if n1 != n2 || n1 == 0 {
		t.Fatalf("lengths %d vs %d", n1, n2)
	}
	// A fresh context over the same OutDir must hit the persisted cache.
	c2 := NewContext(c.OutDir, c.Scale)
	n3, err := c2.BenchLen("syn.gzip")
	if err != nil {
		t.Fatal(err)
	}
	if n3 != n1 {
		t.Fatalf("persisted cache returned %d, want %d", n3, n1)
	}
}

func TestLibraryDesignRespectsSpacing(t *testing.T) {
	c := tinyContext(t)
	cfg := uarch.Config8Way()
	d, err := c.LibraryDesign("syn.mcf", cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	minGap := uint64(cfg.WindowLen() + 1024)
	for i := 1; i < d.Units(); i++ {
		gap := d.Positions[i] - d.Positions[i-1]
		if gap < minGap {
			t.Fatalf("windows %d and %d only %d instructions apart (min %d)", i-1, i, gap, minGap)
		}
	}
	if d.Units() > c.MaxLibPoints {
		t.Fatalf("%d units exceeds MaxLibPoints %d", d.Units(), c.MaxLibPoints)
	}
	// Jitter must differ across offsets.
	d2, err := c.LibraryDesign("syn.mcf", cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	same := d.Units() == d2.Units()
	if same {
		identical := true
		for i := range d.Positions {
			if d.Positions[i] != d2.Positions[i] {
				identical = false
				break
			}
		}
		if identical {
			t.Fatal("offset designs are identical")
		}
	}
}

func TestEnsureLibraryIdempotent(t *testing.T) {
	c := tinyContext(t)
	cfg := uarch.Config8Way()
	info1, err := c.EnsureLibrary("syn.gzip", cfg, []bpred.Config{cfg.BP}, LibFull, 0)
	if err != nil {
		t.Fatal(err)
	}
	if info1.Points == 0 || info1.CompressedBytes == 0 {
		t.Fatalf("empty library: %+v", info1)
	}
	info2, err := c.EnsureLibrary("syn.gzip", cfg, []bpred.Config{cfg.BP}, LibFull, 0)
	if err != nil {
		t.Fatal(err)
	}
	if info1.Path != info2.Path || info2.CreateSeconds != info1.CreateSeconds {
		t.Fatal("second EnsureLibrary did not reuse the cached library")
	}
}

func TestRunFigure1Tiny(t *testing.T) {
	c := tinyContext(t)
	res, err := c.RunFigure1(uarch.Config8Way())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.WarmInsts == 0 || row.DetailedInsts == 0 {
			t.Fatalf("row %+v has zero counts", row)
		}
		if row.WarmInsts < row.DetailedInsts {
			t.Errorf("%s: warming (%d) should cover more instructions than detail (%d)",
				row.Bench, row.WarmInsts, row.DetailedInsts)
		}
	}
	if !strings.Contains(res.String(), "Figure 1") {
		t.Fatal("render broken")
	}
}

func TestRunAccuracyTiny(t *testing.T) {
	c := tinyContext(t)
	c.Benches = []string{"syn.gzip"}
	res, err := c.RunAccuracy(uarch.Config8Way())
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row.GoldenCPI <= 0 || row.Estimate <= 0 {
		t.Fatalf("bad row %+v", row)
	}
	// At tiny scale the CI is loose; the estimate must still be in the
	// right ballpark of the truth.
	if row.Err > 0.5 || row.Err < -0.5 {
		t.Fatalf("estimate %.4f wildly off truth %.4f", row.Estimate, row.GoldenCPI)
	}
}

func TestSpreadPositions(t *testing.T) {
	pos := make([]uint64, 100)
	for i := range pos {
		pos[i] = uint64(i) * 1000
	}
	out := spreadPositions(pos, 8)
	if len(out) == 0 || len(out) > 8 {
		t.Fatalf("got %d positions", len(out))
	}
	if out[0] < pos[40] {
		t.Fatalf("first spread position %d is in the cold ramp", out[0])
	}
	for i := 1; i < len(out); i++ {
		if out[i] <= out[i-1] {
			t.Fatal("positions not increasing")
		}
	}
	short := []uint64{1, 2, 3}
	if got := spreadPositions(short, 8); len(got) != 3 {
		t.Fatalf("short input should pass through, got %d", len(got))
	}
}

func TestDesignChangesAreValid(t *testing.T) {
	base := uarch.Config8Way()
	changes := DesignChanges(base)
	if len(changes) < 5 {
		t.Fatalf("only %d design changes", len(changes))
	}
	seen := map[string]bool{}
	for _, ch := range changes {
		if seen[ch.Name] {
			t.Errorf("duplicate change %s", ch.Name)
		}
		seen[ch.Name] = true
		if err := ch.Cfg.Hier.Validate(); err != nil {
			t.Errorf("%s: invalid hierarchy: %v", ch.Name, err)
		}
		// Every change must stay reconstructible from a baseline-max
		// library: no structure may grow.
		if ch.Cfg.Hier.L2.SizeBytes > base.Hier.L2.SizeBytes ||
			ch.Cfg.Hier.L1D.SizeBytes > base.Hier.L1D.SizeBytes ||
			ch.Cfg.BP != base.BP {
			t.Errorf("%s: exceeds library maxima", ch.Name)
		}
	}
}
