package harness

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"math"
	"strings"
	"time"

	"livepoints/internal/bpred"
	"livepoints/internal/livepoint"
	"livepoints/internal/mrrl"
	"livepoints/internal/sampling"
	"livepoints/internal/uarch"
	"livepoints/internal/warm"
)

func gzipCompressLen(b []byte) int {
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	gz.Write(b)
	gz.Close()
	return buf.Len()
}

// --- Table 2: runtimes per technique -------------------------------------------

// Table2Row is one benchmark's wall-clock per technique, in seconds.
type Table2Row struct {
	Bench      string
	Complete   float64 // complete detailed simulation (sim-outorder)
	SMARTS     float64 // full warming
	AWMRRL     float64 // adaptive warming (warming + detailed, FF excluded)
	LivePoints float64 // load + simulate until target confidence
	LPPoints   int     // points processed by the live-point run
	LPRelCI    float64 // achieved confidence
}

// Table2Result is the Table 2 reproduction for one configuration.
type Table2Result struct {
	Cfg  string
	Rows []Table2Row
}

// RunTable2 measures per-benchmark wall-clock for all four techniques. The
// live-point runs use the online stopping rule (target RelErr at confidence
// Z) against the shuffled library; the other techniques traverse the full
// sample design.
func (c *Context) RunTable2(cfg uarch.Config) (*Table2Result, error) {
	res := &Table2Result{Cfg: cfg.Name}
	rows := make(map[string]Table2Row)
	err := c.forEachBench(func(name string) error {
		p, err := c.Program(name)
		if err != nil {
			return err
		}
		golden, err := c.GoldenCPI(name, cfg)
		if err != nil {
			return err
		}
		design, err := c.LibraryDesign(name, cfg, 0)
		if err != nil {
			return err
		}
		sm, err := warm.RunSMARTS(cfg, p, design, warm.SMARTSOpts{})
		if err != nil {
			return err
		}
		lens, _, err := c.MRRLWarmLens(name, cfg, 0)
		if err != nil {
			return err
		}
		aw, err := mrrl.RunAW(cfg, p, design, analysisFor(lens), mrrl.AWOpts{Stitched: true})
		if err != nil {
			return err
		}
		lib, err := c.EnsureLibrary(name, cfg, []bpred.Config{cfg.BP}, LibFull, 0)
		if err != nil {
			return err
		}
		lr, err := livepoint.RunFile(lib.Path, livepoint.RunOpts{Cfg: cfg, Z: c.Z, RelErr: c.RelErr})
		if err != nil {
			return err
		}
		row := Table2Row{
			Bench:      name,
			Complete:   golden.Seconds,
			SMARTS:     (sm.FuncWarmTime + sm.DetailedTime).Seconds(),
			AWMRRL:     (aw.WarmTime + aw.DetailedTime).Seconds(),
			LivePoints: (lr.LoadTime + lr.SimTime).Seconds(),
			LPPoints:   lr.Processed,
			LPRelCI:    lr.Est.RelCI(c.Z),
		}
		c.mu.Lock()
		rows[name] = row
		c.mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, name := range c.BenchNames() {
		res.Rows = append(res.Rows, rows[name])
	}
	return res, nil
}

// MinAvgMax summarizes one technique column.
func (r *Table2Result) MinAvgMax(get func(Table2Row) float64) (mn, avg, mx float64) {
	if len(r.Rows) == 0 {
		return
	}
	mn = math.Inf(1)
	for _, row := range r.Rows {
		v := get(row)
		mn = math.Min(mn, v)
		mx = math.Max(mx, v)
		avg += v
	}
	avg /= float64(len(r.Rows))
	return
}

// String renders the runtimes table.
func (r *Table2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2 — runtimes (%s), seconds of wall-clock on this host\n", r.Cfg)
	fmt.Fprintf(&b, "%-14s %12s %12s %12s %14s %8s %8s\n",
		"benchmark", "complete", "SMARTS", "AW-MRRL", "live-points", "points", "±CI")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-14s %12.2f %12.2f %12.2f %14.3f %8d %7.1f%%\n",
			row.Bench, row.Complete, row.SMARTS, row.AWMRRL, row.LivePoints, row.LPPoints, 100*row.LPRelCI)
	}
	line := func(label string, get func(Table2Row) float64, format string) {
		mn, avg, mx := r.MinAvgMax(get)
		fmt.Fprintf(&b, "%-14s min "+format+"  avg "+format+"  max "+format+"\n", label, mn, avg, mx)
	}
	line("complete", func(x Table2Row) float64 { return x.Complete }, "%10.2fs")
	line("SMARTS", func(x Table2Row) float64 { return x.SMARTS }, "%10.2fs")
	line("AW-MRRL", func(x Table2Row) float64 { return x.AWMRRL }, "%10.2fs")
	line("live-points", func(x Table2Row) float64 { return x.LivePoints }, "%10.3fs")
	_, a1, _ := r.MinAvgMax(func(x Table2Row) float64 { return x.SMARTS })
	_, a2, _ := r.MinAvgMax(func(x Table2Row) float64 { return x.LivePoints })
	if a2 > 0 {
		fmt.Fprintf(&b, "speedup of live-points over SMARTS (avg): %.0fx (paper: ~277x at full SPEC2K length; grows with benchmark length)\n", a1/a2)
	}
	return b.String()
}

// --- accuracy headline -----------------------------------------------------------

// AccuracyRow is one benchmark's live-point estimate versus complete
// simulation.
type AccuracyRow struct {
	Bench        string
	GoldenCPI    float64
	Estimate     float64
	Err          float64 // signed relative error
	RelCI        float64 // achieved half-width
	Points       int
	UnknownLoads float64 // per window (paper: < 1)
}

// AccuracyResult is the headline ±3 % at 99.7 % confidence check.
type AccuracyResult struct {
	Cfg  string
	Rows []AccuracyRow
}

// RunAccuracy estimates every benchmark's CPI from its live-point library
// with the paper's confidence target and compares with complete simulation.
func (c *Context) RunAccuracy(cfg uarch.Config) (*AccuracyResult, error) {
	res := &AccuracyResult{Cfg: cfg.Name}
	rows := make(map[string]AccuracyRow)
	err := c.forEachBench(func(name string) error {
		golden, err := c.GoldenCPI(name, cfg)
		if err != nil {
			return err
		}
		lib, err := c.EnsureLibrary(name, cfg, []bpred.Config{cfg.BP}, LibFull, 0)
		if err != nil {
			return err
		}
		lr, err := livepoint.RunFile(lib.Path, livepoint.RunOpts{Cfg: cfg, Z: c.Z, RelErr: c.RelErr})
		if err != nil {
			return err
		}
		if lr.CaptureErrors > 0 {
			return fmt.Errorf("harness: %s: %d capture errors", name, lr.CaptureErrors)
		}
		c.mu.Lock()
		rows[name] = AccuracyRow{
			Bench:        name,
			GoldenCPI:    golden.CPI,
			Estimate:     lr.Est.Mean(),
			Err:          (lr.Est.Mean() - golden.CPI) / golden.CPI,
			RelCI:        lr.Est.RelCI(c.Z),
			Points:       lr.Processed,
			UnknownLoads: float64(lr.UnknownLoads) / float64(lr.Processed),
		}
		c.mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, name := range c.BenchNames() {
		res.Rows = append(res.Rows, rows[name])
	}
	return res, nil
}

// String renders the accuracy table.
func (r *AccuracyResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Accuracy — live-point CPI estimates vs complete simulation (%s, target ±3%% @ 99.7%%)\n", r.Cfg)
	fmt.Fprintf(&b, "%-14s %10s %10s %9s %9s %8s %12s\n", "benchmark", "true CPI", "estimate", "error", "±CI", "points", "unk loads/w")
	within := 0
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-14s %10.4f %10.4f %+8.2f%% %8.2f%% %8d %12.3f\n",
			row.Bench, row.GoldenCPI, row.Estimate, 100*row.Err, 100*row.RelCI, row.Points, row.UnknownLoads)
		if math.Abs(row.Err) <= row.RelCI+0.03 {
			within++
		}
	}
	fmt.Fprintf(&b, "%d/%d benchmarks within CI+3%% of truth\n", within, len(r.Rows))
	return b.String()
}

// --- matched-pair comparison (§6.2) ----------------------------------------------

// MatchedRow is one design-change sensitivity result.
type MatchedRow struct {
	Change    string
	RelDelta  float64 // estimated CPI change
	Reduction float64 // matched-pair sample-size reduction factor
	PairsUsed int
	NoImpact  bool
}

// MatchedResult is the §6.2 reproduction.
type MatchedResult struct {
	Bench string
	Rows  []MatchedRow
}

// DesignChanges returns the experimental variants of the baseline used for
// the sensitivity study (latencies, queue sizes, functional-unit mix —
// §6.2), all reconstructible from a baseline-maximum library.
func DesignChanges(base uarch.Config) []struct {
	Name string
	Cfg  uarch.Config
} {
	mk := func(name string, mod func(*uarch.Config)) struct {
		Name string
		Cfg  uarch.Config
	} {
		cfg := base
		mod(&cfg)
		cfg.Name = name
		return struct {
			Name string
			Cfg  uarch.Config
		}{name, cfg}
	}
	return []struct {
		Name string
		Cfg  uarch.Config
	}{
		mk("mem-lat+50%", func(c *uarch.Config) { c.Hier.MemLat = 150 }),
		mk("L2-half", func(c *uarch.Config) { c.Hier.L2.SizeBytes /= 2 }),
		mk("L1D-half", func(c *uarch.Config) { c.Hier.L1D.SizeBytes /= 2 }),
		mk("RUU-half", func(c *uarch.Config) { c.RUUSize /= 2; c.LSQSize /= 2 }),
		mk("IALU-half", func(c *uarch.Config) { c.IntALU /= 2 }),
		mk("L2-lat+4", func(c *uarch.Config) { c.Hier.L2.HitLat += 4 }),
		mk("mispred+3", func(c *uarch.Config) { c.BranchPenalty += 3 }),
		// A change expected to have no appreciable impact: one more
		// store-buffer entry.
		mk("sbuf+1", func(c *uarch.Config) { c.Hier.StoreBufSize++ }),
	}
}

// RunMatchedPair measures each design change with matched-pair comparison
// over one benchmark's library, reporting the sample-size reduction factor
// versus an absolute measurement (paper: 3.5–150x).
func (c *Context) RunMatchedPair(bench string, base uarch.Config) (*MatchedResult, error) {
	lib, err := c.EnsureLibrary(bench, base, []bpred.Config{base.BP}, LibFull, 0)
	if err != nil {
		return nil, err
	}
	res := &MatchedResult{Bench: bench}
	for _, ch := range DesignChanges(base) {
		mr, err := livepoint.RunMatchedFile(lib.Path, livepoint.MatchedOpts{
			Base:              base,
			Exp:               ch.Cfg,
			Z:                 c.Z,
			RelErr:            c.RelErr / 2,
			NoImpactThreshold: 0.03,
		})
		if err != nil {
			return nil, fmt.Errorf("harness: matched pair %s: %w", ch.Name, err)
		}
		res.Rows = append(res.Rows, MatchedRow{
			Change:    ch.Name,
			RelDelta:  mr.MP.RelDelta(),
			Reduction: mr.MP.SampleSizeReduction(),
			PairsUsed: mr.Processed,
			NoImpact:  mr.StoppedNoImpact,
		})
	}
	return res, nil
}

// String renders the sensitivity table.
func (r *MatchedResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Matched-pair comparison (§6.2) on %s: sample-size reduction vs absolute estimates\n", r.Bench)
	fmt.Fprintf(&b, "%-14s %12s %12s %8s %10s\n", "change", "ΔCPI", "reduction", "pairs", "no-impact")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-14s %+11.2f%% %11.1fx %8d %10v\n",
			row.Change, 100*row.RelDelta, row.Reduction, row.PairsUsed, row.NoImpact)
	}
	return b.String()
}

// --- scaling with benchmark length (Table 3 / §7.2) ---------------------------

// ScalingRow is one benchmark-length point.
type ScalingRow struct {
	Scale      float64
	BenchLen   uint64
	SMARTS     float64 // seconds
	LivePoints float64 // seconds
}

// ScalingResult demonstrates O(benchmark) SMARTS versus O(sample)
// live-points.
type ScalingResult struct {
	Bench string
	Rows  []ScalingRow
}

// RunScaling sweeps benchmark length and measures SMARTS versus live-point
// turnaround (library creation excluded, as in the paper's methodology:
// creation is amortized across experiments).
func (c *Context) RunScaling(bench string, cfg uarch.Config, scales []float64) (*ScalingResult, error) {
	res := &ScalingResult{Bench: bench}
	for _, s := range scales {
		sub := NewContext(c.OutDir, s)
		// Hold the sample size constant across lengths: the paper's claim
		// is that live-point turnaround depends on sample size alone,
		// while SMARTS turnaround tracks benchmark length.
		sub.MaxLibPoints = 100
		sub.Log = c.Log
		benchLen, err := sub.BenchLen(bench)
		if err != nil {
			return nil, err
		}
		p, err := sub.Program(bench)
		if err != nil {
			return nil, err
		}
		design, err := sub.LibraryDesign(bench, cfg, 0)
		if err != nil {
			return nil, err
		}
		sm, err := warm.RunSMARTS(cfg, p, design, warm.SMARTSOpts{})
		if err != nil {
			return nil, err
		}
		lib, err := sub.EnsureLibrary(bench, cfg, []bpred.Config{cfg.BP}, LibFull, 0)
		if err != nil {
			return nil, err
		}
		lr, err := livepoint.RunFile(lib.Path, livepoint.RunOpts{Cfg: cfg, Z: c.Z, RelErr: c.RelErr})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, ScalingRow{
			Scale:      s,
			BenchLen:   benchLen,
			SMARTS:     (sm.FuncWarmTime + sm.DetailedTime).Seconds(),
			LivePoints: (lr.LoadTime + lr.SimTime).Seconds(),
		})
	}
	return res, nil
}

// String renders the scaling sweep.
func (r *ScalingResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scaling — turnaround vs benchmark length (%s): SMARTS is O(B), live-points O(sample)\n", r.Bench)
	fmt.Fprintf(&b, "%8s %14s %12s %14s\n", "scale", "instructions", "SMARTS", "live-points")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8.2f %14d %11.2fs %13.3fs\n", row.Scale, row.BenchLen, row.SMARTS, row.LivePoints)
	}
	if n := len(r.Rows); n >= 2 {
		g := r.Rows[n-1]
		s := r.Rows[0]
		fmt.Fprintf(&b, "length grew %.1fx; SMARTS time grew %.1fx; live-point time grew %.1fx\n",
			float64(g.BenchLen)/float64(s.BenchLen), g.SMARTS/s.SMARTS, g.LivePoints/s.LivePoints)
	}
	return b.String()
}

// --- online convergence demo (§6.1) ----------------------------------------------

// OnlineResult captures a convergence history.
type OnlineResult struct {
	Bench   string
	History []sampling.Snapshot
	Final   sampling.Estimate
}

// RunOnlineDemo processes one shuffled library recording the running
// estimate after every point (§6.1's online reporting).
func (c *Context) RunOnlineDemo(bench string, cfg uarch.Config) (*OnlineResult, error) {
	lib, err := c.EnsureLibrary(bench, cfg, []bpred.Config{cfg.BP}, LibFull, 0)
	if err != nil {
		return nil, err
	}
	lr, err := livepoint.RunFile(lib.Path, livepoint.RunOpts{Cfg: cfg, RecordHistory: true})
	if err != nil {
		return nil, err
	}
	return &OnlineResult{Bench: bench, History: lr.History, Final: lr.Est}, nil
}

// String renders convergence checkpoints.
func (r *OnlineResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Online results (§6.1) — %s: estimate and confidence while simulation runs\n", r.Bench)
	fmt.Fprintf(&b, "%8s %12s %10s\n", "points", "CPI", "±CI")
	marks := []int{10, 30, 50, 100, 200, 400, 800, 1600}
	for _, m := range marks {
		if m-1 < len(r.History) {
			s := r.History[m-1]
			fmt.Fprintf(&b, "%8d %12.4f %9.2f%%\n", s.N, s.Mean, 100*s.RelCI)
		}
	}
	if n := len(r.History); n > 0 {
		s := r.History[n-1]
		fmt.Fprintf(&b, "%8d %12.4f %9.2f%%  (final)\n", s.N, s.Mean, 100*s.RelCI)
	}
	return b.String()
}

// --- Table 3: summary --------------------------------------------------------------

// Table3Result is the summary assembled from the other experiments.
type Table3Result struct {
	Fig4          *BiasResult // AW stitched
	Fig4Unstitch  *BiasResult
	Fig5          *BiasResult
	Table2        *Table2Result
	LibraryBytes  int64 // total compressed library size across the suite
	LibraryPoints int
}

// RunTable3 aggregates bias, runtime and storage into the paper's summary
// table. The component results must come from the same Context.
func (c *Context) RunTable3(fig4, fig4u, fig5 *BiasResult, t2 *Table2Result, cfg uarch.Config) (*Table3Result, error) {
	res := &Table3Result{Fig4: fig4, Fig4Unstitch: fig4u, Fig5: fig5, Table2: t2}
	for _, name := range c.BenchNames() {
		lib, err := c.EnsureLibrary(name, cfg, []bpred.Config{cfg.BP}, LibFull, 0)
		if err != nil {
			return nil, err
		}
		res.LibraryBytes += lib.CompressedBytes
		res.LibraryPoints += lib.Points
	}
	return res, nil
}

// String renders the summary.
func (r *Table3Result) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table 3 — summary of simulation sampling warming methods")
	_, fullAvg, _ := 0.0, 0.0, 0.0
	var fullWorst float64
	for _, row := range r.Fig4.Rows {
		fullAvg += row.BaselineBias
		fullWorst = math.Max(fullWorst, row.BaselineBias)
	}
	fullAvg /= float64(len(r.Fig4.Rows))
	_, awAvg, _ := r.Fig4.Avg()
	awWorst, _ := r.Fig4.Worst()
	_, awuAvg, _ := r.Fig4Unstitch.Avg()
	awuWorst, _ := r.Fig4Unstitch.Worst()
	// For live-points, the Figure 5 baseline column IS full live-state.
	var lpAvg, lpWorst float64
	for _, row := range r.Fig5.Rows {
		lpAvg += row.BaselineBias
		lpWorst = math.Max(lpWorst, row.BaselineBias)
	}
	lpAvg /= float64(len(r.Fig5.Rows))

	fmt.Fprintf(&b, "%-28s %-22s %-22s %-22s\n", "", "Full warming (SMARTS)", "AW-MRRL", "Live-points")
	fmt.Fprintf(&b, "%-28s %-22s %-22s %-22s\n", "Avg (worst) CPI bias",
		fmt.Sprintf("%.2f%% (%.2f%%)", 100*fullAvg, 100*fullWorst),
		fmt.Sprintf("%.2f%% (%.2f%%)*", 100*awAvg, 100*awWorst),
		fmt.Sprintf("%.2f%% (%.2f%%)", 100*lpAvg, 100*lpWorst))
	_, sAvg, _ := r.Table2.MinAvgMax(func(x Table2Row) float64 { return x.SMARTS })
	_, aAvg, _ := r.Table2.MinAvgMax(func(x Table2Row) float64 { return x.AWMRRL })
	_, lAvg, _ := r.Table2.MinAvgMax(func(x Table2Row) float64 { return x.LivePoints })
	fmt.Fprintf(&b, "%-28s %-22s %-22s %-22s\n", "Avg benchmark runtime",
		fmt.Sprintf("%.1fs", sAvg), fmt.Sprintf("%.1fs", aAvg), fmt.Sprintf("%.2fs", lAvg))
	fmt.Fprintf(&b, "%-28s %-22s %-22s %-22s\n", "Scaling behaviour", "O(B)", "O(1)", "O(C)")
	fmt.Fprintf(&b, "%-28s %-22s %-22s %-22s\n", "Independent checkpoints", "n/a", "no*", "yes")
	fmt.Fprintf(&b, "%-28s %-22s %-22s %-22s\n", "Suite library size", "n/a", "-",
		fmt.Sprintf("%.1f MB / %d pts", float64(r.LibraryBytes)/(1<<20), r.LibraryPoints))
	fmt.Fprintf(&b, "%-28s %-22s %-22s %-22s\n", "Fixed parameters", "none", "none", "max cache/TLB, bpred set")
	fmt.Fprintf(&b, "* unstitched AW-MRRL: avg %.2f%%, worst %.2f%% bias (independent checkpoints)\n",
		100*awuAvg, 100*awuWorst)
	return b.String()
}

// ensure referenced imports stay (time used in Figure 8 path).
var _ = time.Now
