package harness

import (
	"fmt"
	"math"
	"strings"
	"time"

	"livepoints/internal/bpred"
	"livepoints/internal/livepoint"
	"livepoints/internal/mrrl"
	"livepoints/internal/uarch"
	"livepoints/internal/warm"
)

// --- Table 1: microarchitectural configurations -----------------------------

// Table1 renders the two simulated configurations (paper Table 1).
func Table1() string {
	var b strings.Builder
	row := func(k, v8, v16 string) { fmt.Fprintf(&b, "%-24s %-28s %-28s\n", k, v8, v16) }
	c8, c16 := uarch.Config8Way(), uarch.Config16Way()
	row("Parameter", c8.Name+" (baseline)", c16.Name)
	row("RUU/LSQ size", fmt.Sprintf("%d/%d", c8.RUUSize, c8.LSQSize), fmt.Sprintf("%d/%d", c16.RUUSize, c16.LSQSize))
	memSys := func(c uarch.Config) string {
		return fmt.Sprintf("%dKB %d-way L1, %dMB %d-way L2", c.Hier.L1D.SizeBytes>>10, c.Hier.L1D.Assoc,
			c.Hier.L2.SizeBytes>>20, c.Hier.L2.Assoc)
	}
	row("Memory system", memSys(c8), memSys(c16))
	row("Ports/MSHRs/store buf",
		fmt.Sprintf("%d/%d/%d", c8.MemPorts, c8.Hier.DMSHRs, c8.Hier.StoreBufSize),
		fmt.Sprintf("%d/%d/%d", c16.MemPorts, c16.Hier.DMSHRs, c16.Hier.StoreBufSize))
	row("L1/L2/mem latency",
		fmt.Sprintf("%d/%d/%d cycles", c8.Hier.L1D.HitLat, c8.Hier.L2.HitLat, c8.Hier.MemLat),
		fmt.Sprintf("%d/%d/%d cycles", c16.Hier.L1D.HitLat, c16.Hier.L2.HitLat, c16.Hier.MemLat))
	row("ITLB/DTLB entries",
		fmt.Sprintf("%d/%d, %d-cycle miss", c8.Hier.ITLB.Lines(), c8.Hier.DTLB.Lines(), c8.Hier.TLBMissLat),
		fmt.Sprintf("%d/%d, %d-cycle miss", c16.Hier.ITLB.Lines(), c16.Hier.DTLB.Lines(), c16.Hier.TLBMissLat))
	row("Functional units",
		fmt.Sprintf("%d IALU %d IMUL %d FPALU %d FPMUL", c8.IntALU, c8.IntMul, c8.FPALU, c8.FPMul),
		fmt.Sprintf("%d IALU %d IMUL %d FPALU %d FPMUL", c16.IntALU, c16.IntMul, c16.FPALU, c16.FPMul))
	row("Branch predictor",
		fmt.Sprintf("combined %dK tables, %d-cycle mispred, %d pred/cycle", c8.BP.TableSize>>10, c8.BranchPenalty, c8.PredsPerCycle),
		fmt.Sprintf("combined %dK tables, %d-cycle mispred, %d pred/cycle", c16.BP.TableSize>>10, c16.BranchPenalty, c16.PredsPerCycle))
	row("Detailed warming", fmt.Sprintf("%d instructions", c8.DetailedWarm), fmt.Sprintf("%d instructions", c16.DetailedWarm))
	return b.String()
}

// --- Figure 1: functional warming dominates SMARTS ---------------------------

// Figure1Row is one benchmark's SMARTS runtime split.
type Figure1Row struct {
	Bench         string
	WarmInsts     uint64
	DetailedInsts uint64
	WarmSeconds   float64
	DetSeconds    float64
}

// WarmShare returns the fraction of runtime spent functionally warming.
func (r Figure1Row) WarmShare() float64 {
	t := r.WarmSeconds + r.DetSeconds
	if t == 0 {
		return 0
	}
	return r.WarmSeconds / t
}

// Figure1Result is the Figure 1 reproduction.
type Figure1Result struct {
	Rows []Figure1Row
	Cfg  string
}

// RunFigure1 measures the SMARTS runtime split between functional warming
// and detailed windows across the suite.
func (c *Context) RunFigure1(cfg uarch.Config) (*Figure1Result, error) {
	res := &Figure1Result{Cfg: cfg.Name}
	rows := make(map[string]Figure1Row)
	var mu = &c.mu
	err := c.forEachBench(func(name string) error {
		p, err := c.Program(name)
		if err != nil {
			return err
		}
		design, err := c.LibraryDesign(name, cfg, 0)
		if err != nil {
			return err
		}
		sm, err := warm.RunSMARTS(cfg, p, design, warm.SMARTSOpts{})
		if err != nil {
			return err
		}
		mu.Lock()
		rows[name] = Figure1Row{
			Bench:         name,
			WarmInsts:     sm.FuncWarmInsts,
			DetailedInsts: sm.DetailedInsts,
			WarmSeconds:   sm.FuncWarmTime.Seconds(),
			DetSeconds:    sm.DetailedTime.Seconds(),
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, name := range c.BenchNames() {
		res.Rows = append(res.Rows, rows[name])
	}
	return res, nil
}

// String renders the figure as a table.
func (r *Figure1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 — SMARTS runtime split (%s): functional warming dominates\n", r.Cfg)
	fmt.Fprintf(&b, "%-14s %14s %14s %10s\n", "benchmark", "warm insts", "detail insts", "warm time")
	var totW, totD float64
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-14s %14d %14d %9.1f%%\n", row.Bench, row.WarmInsts, row.DetailedInsts, 100*row.WarmShare())
		totW += row.WarmSeconds
		totD += row.DetSeconds
	}
	if totW+totD > 0 {
		fmt.Fprintf(&b, "%-14s %44.1f%%  (paper: >99%% at full SPEC2K length)\n", "suite", 100*totW/(totW+totD))
	}
	return b.String()
}

// --- Figures 4 and 5: bias experiments ----------------------------------------

// BiasRow is one benchmark's bias under a technique versus the full-warming
// baseline, averaged over sample offsets.
type BiasRow struct {
	Bench          string
	BaselineBias   float64 // full warming (SMARTS) vs complete simulation
	TechniqueBias  float64 // the technique under test vs complete simulation
	AdditionalBias float64 // TechniqueBias - BaselineBias
}

// BiasResult is a Figure 4 / Figure 5 style experiment outcome.
type BiasResult struct {
	Title string
	Rows  []BiasRow
}

// Avg returns average baseline, technique, and additional bias.
func (r *BiasResult) Avg() (base, tech, add float64) {
	if len(r.Rows) == 0 {
		return
	}
	for _, row := range r.Rows {
		base += row.BaselineBias
		tech += row.TechniqueBias
		add += row.AdditionalBias
	}
	n := float64(len(r.Rows))
	return base / n, tech / n, add / n
}

// Worst returns the largest technique bias and additional bias.
func (r *BiasResult) Worst() (tech, add float64) {
	for _, row := range r.Rows {
		tech = math.Max(tech, row.TechniqueBias)
		add = math.Max(add, row.AdditionalBias)
	}
	return
}

// String renders the experiment sorted by additional bias (paper style).
func (r *BiasResult) String() string {
	rows := make([]BiasRow, len(r.Rows))
	copy(rows, r.Rows)
	for i := 0; i < len(rows); i++ {
		for j := i + 1; j < len(rows); j++ {
			if rows[j].AdditionalBias > rows[i].AdditionalBias {
				rows[i], rows[j] = rows[j], rows[i]
			}
		}
	}
	var b strings.Builder
	fmt.Fprintln(&b, r.Title)
	fmt.Fprintf(&b, "%-14s %12s %12s %12s\n", "benchmark", "full-warm", "technique", "additional")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-14s %11.2f%% %11.2f%% %+11.2f%%\n",
			row.Bench, 100*row.BaselineBias, 100*row.TechniqueBias, 100*row.AdditionalBias)
	}
	base, tech, add := r.Avg()
	wt, wa := r.Worst()
	fmt.Fprintf(&b, "%-14s %11.2f%% %11.2f%% %+11.2f%%   worst %.2f%% (+%.2f%%)\n",
		"average", 100*base, 100*tech, 100*add, 100*wt, 100*wa)
	return b.String()
}

// RunFigure4 measures adaptive warming's additional CPI bias versus full
// warming (paper Figure 4: avg +1.1 %-ish, worst-case several percent,
// stitched AW-MRRL at 99.9 % reuse).
func (c *Context) RunFigure4(cfg uarch.Config, stitched bool) (*BiasResult, error) {
	title := fmt.Sprintf("Figure 4 — additional CPI bias of AW-MRRL (stitched=%v, %s, %d offsets)", stitched, cfg.Name, c.Offsets)
	res := &BiasResult{Title: title}
	rows := make(map[string]BiasRow)
	err := c.forEachBench(func(name string) error {
		golden, err := c.GoldenCPI(name, cfg)
		if err != nil {
			return err
		}
		p, err := c.Program(name)
		if err != nil {
			return err
		}
		var fullBias, awBias float64
		for off := 0; off < c.Offsets; off++ {
			design, err := c.LibraryDesign(name, cfg, off)
			if err != nil {
				return err
			}
			sm, err := warm.RunSMARTS(cfg, p, design, warm.SMARTSOpts{})
			if err != nil {
				return err
			}
			lens, _, err := c.MRRLWarmLens(name, cfg, off)
			if err != nil {
				return err
			}
			aw, err := mrrl.RunAW(cfg, p, design, analysisFor(lens), mrrl.AWOpts{Stitched: stitched})
			if err != nil {
				return err
			}
			fullBias += math.Abs(sm.Est.Mean()-golden.CPI) / golden.CPI
			awBias += math.Abs(aw.Est.Mean()-golden.CPI) / golden.CPI
		}
		fullBias /= float64(c.Offsets)
		awBias /= float64(c.Offsets)
		c.mu.Lock()
		rows[name] = BiasRow{Bench: name, BaselineBias: fullBias, TechniqueBias: awBias, AdditionalBias: awBias - fullBias}
		c.mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, name := range c.BenchNames() {
		res.Rows = append(res.Rows, rows[name])
	}
	return res, nil
}

// RunFigure5 measures restricted live-state's additional bias versus full
// live-points (paper Figure 5: avg +0.1 %, worst +3.3 %).
func (c *Context) RunFigure5(cfg uarch.Config) (*BiasResult, error) {
	title := fmt.Sprintf("Figure 5 — additional CPI bias of restricted live-state (%s, %d offsets)", cfg.Name, c.Offsets)
	res := &BiasResult{Title: title}
	rows := make(map[string]BiasRow)
	err := c.forEachBench(func(name string) error {
		golden, err := c.GoldenCPI(name, cfg)
		if err != nil {
			return err
		}
		var fullBias, restBias float64
		for off := 0; off < c.Offsets; off++ {
			fullLib, err := c.EnsureLibrary(name, cfg, []bpred.Config{cfg.BP}, LibFull, off)
			if err != nil {
				return err
			}
			restLib, err := c.EnsureLibrary(name, cfg, []bpred.Config{cfg.BP}, LibRestricted, off)
			if err != nil {
				return err
			}
			fr, err := livepoint.RunFile(fullLib.Path, livepoint.RunOpts{Cfg: cfg})
			if err != nil {
				return err
			}
			rr, err := livepoint.RunFile(restLib.Path, livepoint.RunOpts{Cfg: cfg})
			if err != nil {
				return err
			}
			if fr.CaptureErrors > 0 {
				return fmt.Errorf("harness: %s full library has %d capture errors", name, fr.CaptureErrors)
			}
			fullBias += math.Abs(fr.Est.Mean()-golden.CPI) / golden.CPI
			restBias += math.Abs(rr.Est.Mean()-golden.CPI) / golden.CPI
		}
		fullBias /= float64(c.Offsets)
		restBias /= float64(c.Offsets)
		c.mu.Lock()
		rows[name] = BiasRow{Bench: name, BaselineBias: fullBias, TechniqueBias: restBias, AdditionalBias: restBias - fullBias}
		c.mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, name := range c.BenchNames() {
		res.Rows = append(res.Rows, rows[name])
	}
	return res, nil
}

// --- Figure 7: live-point size breakdown ---------------------------------------

// Figure7Result is the per-section storage breakdown of a typical
// live-point versus an AW-MRRL checkpoint.
type Figure7Result struct {
	Bench        string
	Breakdown    livepoint.SizeBreakdown // averaged, uncompressed
	LPTotal      int
	LPCompressed int
	AWTotal      int
	AWCompressed int
	// ConventionalBytes is the benchmark's full memory footprint: what a
	// conventional (Simics/SimpleScalar EIO) checkpoint would store.
	ConventionalBytes int64
	Points            int
}

// RunFigure7 measures the encoded size of every live-point section,
// averaged over a handful of points of one benchmark (paper Figure 7).
func (c *Context) RunFigure7(bench string, cfg uarch.Config) (*Figure7Result, error) {
	p, err := c.Program(bench)
	if err != nil {
		return nil, err
	}
	design, err := c.LibraryDesign(bench, cfg, 0)
	if err != nil {
		return nil, err
	}
	// Use a sparsely thinned design: windows from the later part of the
	// run (steady-state warm structures) with wide gaps, so the AW-MRRL
	// comparison point gets realistic multi-hundred-kiloinstruction
	// warming periods rather than gap-capped ones.
	const maxPoints = 8
	design.Positions = spreadPositions(design.Positions, maxPoints)

	res := &Figure7Result{Bench: bench, ConventionalBytes: p.FootprintBytes()}
	sum := livepoint.SizeBreakdown{}
	add := func(dst *livepoint.SizeBreakdown, s livepoint.SizeBreakdown) {
		dst.Header += s.Header
		dst.Arch += s.Arch
		dst.Mem += s.Mem
		dst.Text += s.Text
		dst.L1I += s.L1I
		dst.L1D += s.L1D
		dst.L2 += s.L2
		dst.TLB += s.TLB
		dst.Bpred += s.Bpred
	}
	err = livepoint.Create(p, design, livepoint.CreateOpts{MaxHier: cfg.Hier, Preds: []bpred.Config{cfg.BP}},
		func(lp *livepoint.LivePoint) error {
			blob, bd := livepoint.Encode(lp)
			add(&sum, bd)
			res.LPTotal += len(blob)
			res.LPCompressed += gzipLen(blob)
			res.Points++
			return nil
		})
	if err != nil {
		return nil, err
	}

	// AW-MRRL checkpoints over the same (sparse) windows; the analysis
	// runs directly on the thinned design so warming periods can extend
	// across the full inter-window gaps.
	an, err := mrrl.Analyze(p, design, mrrl.DefaultReuseProb, mrrl.DefaultGranularity)
	if err != nil {
		return nil, err
	}
	awOpts := livepoint.CreateOpts{NoMicroarch: true, FuncWarmLens: an.WarmLens}
	awPoints := 0
	err = livepoint.Create(p, design, awOpts, func(lp *livepoint.LivePoint) error {
		blob, _ := livepoint.Encode(lp)
		res.AWTotal += len(blob)
		res.AWCompressed += gzipLen(blob)
		awPoints++
		return nil
	})
	if err != nil {
		return nil, err
	}

	n := res.Points
	res.Breakdown = livepoint.SizeBreakdown{
		Header: sum.Header / n, Arch: sum.Arch / n, Mem: sum.Mem / n, Text: sum.Text / n,
		L1I: sum.L1I / n, L1D: sum.L1D / n, L2: sum.L2 / n, TLB: sum.TLB / n, Bpred: sum.Bpred / n,
	}
	res.LPTotal /= n
	res.LPCompressed /= n
	res.AWTotal /= awPoints
	res.AWCompressed /= awPoints
	return res, nil
}

// String renders the breakdown (paper Figure 7 layout).
func (r *Figure7Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7 — breakdown of a typical live-point (%s, uncompressed, avg of %d points)\n", r.Bench, r.Points)
	row := func(k string, v int) { fmt.Fprintf(&b, "  %-34s %9.1f KB\n", k, float64(v)/1024) }
	row("registers/PC + header", r.Breakdown.Header+r.Breakdown.Arch)
	row("TLB state (ITLB+DTLB)", r.Breakdown.TLB)
	row("branch predictor", r.Breakdown.Bpred)
	row("L1-I cache tags", r.Breakdown.L1I)
	row("L1-D cache tags", r.Breakdown.L1D)
	row("L2 cache tags", r.Breakdown.L2)
	row("memory data (live-state)", r.Breakdown.Mem)
	row("instruction text", r.Breakdown.Text)
	fmt.Fprintf(&b, "  %-34s %9.1f KB (gzip: %.1f KB)\n", "live-point total", float64(r.LPTotal)/1024, float64(r.LPCompressed)/1024)
	fmt.Fprintf(&b, "  %-34s %9.1f KB (gzip: %.1f KB)\n", "AW-MRRL checkpoint", float64(r.AWTotal)/1024, float64(r.AWCompressed)/1024)
	fmt.Fprintf(&b, "  %-34s %9.1f MB\n", "conventional checkpoint (footprint)", float64(r.ConventionalBytes)/(1<<20))
	return b.String()
}

// --- Figure 8: size/time versus maximum cache --------------------------------

// Figure8Row is one sweep point.
type Figure8Row struct {
	L2MB        int
	BPredTables int
	LPBytes     int     // compressed per-point
	AWBytes     int     // compressed per-point
	LPMillis    float64 // load+simulate per point
	AWMillis    float64
}

// Figure8Result is the reproduction of Figure 8.
type Figure8Result struct {
	Bench string
	Rows  []Figure8Row
}

// RunFigure8 sweeps the maximum stored cache (1–16 MB L2 with matching
// predictor growth) and measures per-checkpoint compressed size and
// processing time for live-points versus AW-MRRL checkpoints.
func (c *Context) RunFigure8(bench string) (*Figure8Result, error) {
	p, err := c.Program(bench)
	if err != nil {
		return nil, err
	}
	res := &Figure8Result{Bench: bench}

	const points = 6
	baseCfg := uarch.Config8Way()
	design, err := c.LibraryDesign(bench, baseCfg, 0)
	if err != nil {
		return nil, err
	}
	design.Positions = spreadPositions(design.Positions, points)

	// AW checkpoints are microarchitecture-independent: one set. The
	// analysis runs on the thinned design so warming periods are not
	// capped by dense library gaps.
	an, err := mrrl.Analyze(p, design, mrrl.DefaultReuseProb, mrrl.DefaultGranularity)
	if err != nil {
		return nil, err
	}
	var awBlobs [][]byte
	err = livepoint.Create(p, design, livepoint.CreateOpts{NoMicroarch: true, FuncWarmLens: an.WarmLens},
		func(lp *livepoint.LivePoint) error {
			blob, _ := livepoint.Encode(lp)
			awBlobs = append(awBlobs, blob)
			return nil
		})
	if err != nil {
		return nil, err
	}
	awBytes, awMillis := 0, 0.0
	for _, blob := range awBlobs {
		awBytes += gzipLen(blob)
		lp, err := livepoint.Decode(blob)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		if _, err := livepoint.Simulate(lp, baseCfg); err != nil {
			return nil, err
		}
		awMillis += float64(time.Since(t0).Microseconds()) / 1000
	}
	awBytes /= len(awBlobs)
	awMillis /= float64(len(awBlobs))

	for i, l2mb := range []int{1, 2, 4, 8, 16} {
		cfg := baseCfg
		cfg.Name = fmt.Sprintf("8way-%dm", l2mb)
		cfg.Hier.L2.SizeBytes = int64(l2mb) << 20
		cfg.BP.TableSize = 1024 << i
		cfg.BP.HistBits = 10 + i
		cfg.BP.Name = fmt.Sprintf("comb-%dk", 1<<i)

		var lpBytes int
		var lpMillis float64
		var n int
		err := livepoint.Create(p, design, livepoint.CreateOpts{MaxHier: cfg.Hier, Preds: []bpred.Config{cfg.BP}},
			func(lp *livepoint.LivePoint) error {
				blob, _ := livepoint.Encode(lp)
				lpBytes += gzipLen(blob)
				dec, err := livepoint.Decode(blob)
				if err != nil {
					return err
				}
				t0 := time.Now()
				if _, err := livepoint.Simulate(dec, cfg); err != nil {
					return err
				}
				lpMillis += float64(time.Since(t0).Microseconds()) / 1000
				n++
				return nil
			})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Figure8Row{
			L2MB:        l2mb,
			BPredTables: cfg.BP.TableSize,
			LPBytes:     lpBytes / n,
			AWBytes:     awBytes,
			LPMillis:    lpMillis / float64(n),
			AWMillis:    awMillis,
		})
	}
	return res, nil
}

// String renders the sweep.
func (r *Figure8Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8 — compressed checkpoint size and processing time vs max cache (%s)\n", r.Bench)
	fmt.Fprintf(&b, "%-16s %12s %12s %12s %12s\n", "max config", "LP size", "AW size", "LP time", "AW time")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%2dMB L2 / %5dT %9.1f KB %9.1f KB %9.1f ms %9.1f ms\n",
			row.L2MB, row.BPredTables,
			float64(row.LPBytes)/1024, float64(row.AWBytes)/1024, row.LPMillis, row.AWMillis)
	}
	return b.String()
}

func gzipLen(b []byte) int {
	return gzipCompressLen(b)
}
