// Package harness orchestrates the paper's evaluation: it builds and caches
// benchmark goldens, MRRL analyses and live-point libraries, and regenerates
// every table and figure of the evaluation section (see DESIGN.md §4 for
// the experiment index).
//
// Expensive one-time artifacts (benchmark lengths, complete-simulation
// CPIs, MRRL warming lengths, live-point libraries) are cached under the
// output directory, keyed by benchmark, scale and configuration, so
// experiments can be re-run and extended cheaply — mirroring how a real
// live-point library amortizes its creation cost (§4.3).
package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"livepoints/internal/bpred"
	"livepoints/internal/livepoint"
	"livepoints/internal/mrrl"
	"livepoints/internal/prog"
	"livepoints/internal/sampling"
	"livepoints/internal/uarch"
	"livepoints/internal/warm"
)

// Context carries experiment-wide settings and the artifact cache.
type Context struct {
	// OutDir holds libraries, caches and reports.
	OutDir string
	// Scale multiplies every benchmark's dynamic length. The paper runs
	// SPEC2K at full length; scaled-down defaults keep full-suite
	// experiments tractable while preserving every shape (see DESIGN.md
	// §2). 1.0 is the suite's nominal length.
	Scale float64
	// Benches selects the suite subset (nil = whole suite).
	Benches []string
	// MaxLibPoints caps live-point library sizes.
	MaxLibPoints int
	// Z and RelErr are the confidence target (paper: 99.7 % of ±3 %).
	Z      float64
	RelErr float64
	// Offsets is the number of independent sample offsets used when
	// averaging bias measurements (paper: five).
	Offsets int
	// Parallel bounds concurrent benchmark-level work.
	Parallel int

	Log io.Writer

	mu    sync.Mutex
	cache map[string]json.RawMessage
	progs map[string]*prog.Program
}

// NewContext returns a context with the paper-equivalent defaults at the
// given scale, writing artifacts under outDir.
func NewContext(outDir string, scale float64) *Context {
	if scale <= 0 {
		scale = 0.5
	}
	return &Context{
		OutDir:       outDir,
		Scale:        scale,
		MaxLibPoints: 500,
		Z:            sampling.Z997,
		RelErr:       0.03,
		Offsets:      3,
		Parallel:     8,
		Log:          io.Discard,
		progs:        map[string]*prog.Program{},
	}
}

func (c *Context) logf(format string, args ...any) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format+"\n", args...)
	}
}

// BenchNames returns the selected benchmark names.
func (c *Context) BenchNames() []string {
	if len(c.Benches) > 0 {
		return c.Benches
	}
	return prog.SuiteNames()
}

// Program returns the (cached) generated program for a benchmark.
func (c *Context) Program(name string) (*prog.Program, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.progs[name]; ok {
		return p, nil
	}
	spec, err := prog.ByName(name)
	if err != nil {
		return nil, err
	}
	p := prog.Generate(spec, c.Scale)
	c.progs[name] = p
	return p, nil
}

// --- persistent cache -----------------------------------------------------

func (c *Context) cachePath() string { return filepath.Join(c.OutDir, "cache.json") }

func (c *Context) loadCache() {
	if c.cache != nil {
		return
	}
	c.cache = map[string]json.RawMessage{}
	data, err := os.ReadFile(c.cachePath())
	if err != nil {
		return
	}
	_ = json.Unmarshal(data, &c.cache)
}

// cached fetches key into out (a pointer), returning whether it was found.
func (c *Context) cached(key string, out any) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.loadCache()
	raw, ok := c.cache[key]
	if !ok {
		return false
	}
	return json.Unmarshal(raw, out) == nil
}

// store persists key -> val in the cache file.
func (c *Context) store(key string, val any) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.loadCache()
	raw, err := json.Marshal(val)
	if err != nil {
		return err
	}
	c.cache[key] = raw
	if err := os.MkdirAll(c.OutDir, 0o755); err != nil {
		return err
	}
	blob, err := json.MarshalIndent(c.cache, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(c.cachePath(), blob, 0o644)
}

// --- benchmark goldens ------------------------------------------------------

// BenchLen returns (computing and caching) the benchmark's dynamic length.
func (c *Context) BenchLen(name string) (uint64, error) {
	key := fmt.Sprintf("benchlen/%s/%.4f", name, c.Scale)
	var n uint64
	if c.cached(key, &n) {
		return n, nil
	}
	p, err := c.Program(name)
	if err != nil {
		return 0, err
	}
	n, err = warm.BenchLength(p, p.TargetLen*4+4_000_000)
	if err != nil {
		return 0, err
	}
	return n, c.store(key, n)
}

// Golden holds a complete-simulation result.
type Golden struct {
	CPI     float64
	Seconds float64 // wall-clock of the complete detailed simulation
}

// GoldenCPI returns (computing and caching) the complete detailed
// simulation CPI — the bias reference (§3: "actual error relative to full
// sim-outorder simulations").
func (c *Context) GoldenCPI(name string, cfg uarch.Config) (Golden, error) {
	key := fmt.Sprintf("golden/%s/%.4f/%s", name, c.Scale, cfg.Name)
	var g Golden
	if c.cached(key, &g) {
		return g, nil
	}
	p, err := c.Program(name)
	if err != nil {
		return g, err
	}
	benchLen, err := c.BenchLen(name)
	if err != nil {
		return g, err
	}
	c.logf("golden: full detailed simulation of %s (%s, %d instructions)...", name, cfg.Name, benchLen)
	t0 := time.Now()
	cpi, _, err := warm.RunFullDetailed(cfg, p, benchLen*2+1000)
	if err != nil {
		return g, err
	}
	g = Golden{CPI: cpi, Seconds: time.Since(t0).Seconds()}
	return g, c.store(key, g)
}

// --- sample designs ----------------------------------------------------------

// minStrideUnits keeps consecutive windows (plus capture run-ahead) from
// overlapping.
func minStrideUnits(cfg uarch.Config) int {
	win := cfg.WindowLen() + 1024 // run-ahead margin
	return win/uarch.MeasureLen + 2
}

// LibraryDesign returns the sample design used for a benchmark's library:
// systematic, at most MaxLibPoints units, spaced widely enough that
// functional warming dominates between windows (the regime the paper
// studies; SMARTS samples ~3k-instruction windows every ~20M instructions).
func (c *Context) LibraryDesign(name string, cfg uarch.Config, offset int) (sampling.Design, error) {
	benchLen, err := c.BenchLen(name)
	if err != nil {
		return sampling.Design{}, err
	}
	population := int(benchLen / uarch.MeasureLen)
	stride := minStrideUnits(cfg)
	// Keep detailed windows ≤ ~10 % of the instruction stream.
	if floor := 10 * cfg.WindowLen() / uarch.MeasureLen; stride < floor {
		stride = floor
	}
	if c.MaxLibPoints > 0 && population/stride > c.MaxLibPoints {
		stride = population / c.MaxLibPoints
	}
	d, err := sampling.NewSystematic(benchLen, uarch.MeasureLen, uint64(cfg.DetailedWarm), stride, offset*stride/(c.Offsets+1)+1)
	if err != nil {
		return d, err
	}
	// Jitter the positions: the synthetic benchmarks are loop-periodic and
	// a strictly periodic design aliases with them, biasing any sampler
	// (the effect is on the sample design, not on any warming technique).
	seed := int64(1)
	for _, ch := range name {
		seed = seed*131 + int64(ch)
	}
	d.Jitter(seed+int64(offset)*7919, stride, minStrideUnits(cfg), benchLen)
	return d, nil
}

// --- MRRL analyses -----------------------------------------------------------

// MRRLWarmLens returns (computing and caching) the per-window MRRL warming
// lengths for a benchmark's library design.
func (c *Context) MRRLWarmLens(name string, cfg uarch.Config, offset int) ([]uint64, float64, error) {
	design, err := c.LibraryDesign(name, cfg, offset)
	if err != nil {
		return nil, 0, err
	}
	key := fmt.Sprintf("mrrl/%s/%.4f/%s/o%d", name, c.Scale, cfg.Name, offset)
	var lens []uint64
	if !c.cached(key, &lens) {
		p, err := c.Program(name)
		if err != nil {
			return nil, 0, err
		}
		c.logf("mrrl: analysis pass for %s (%s, offset %d)...", name, cfg.Name, offset)
		an, err := mrrl.Analyze(p, design, mrrl.DefaultReuseProb, mrrl.DefaultGranularity)
		if err != nil {
			return nil, 0, err
		}
		lens = an.WarmLens
		if err := c.store(key, lens); err != nil {
			return nil, 0, err
		}
	}
	var sum uint64
	for _, w := range lens {
		sum += w
	}
	avg := 0.0
	if len(lens) > 0 {
		avg = float64(sum) / float64(len(lens))
	}
	return lens, avg, nil
}

// analysisFor rebuilds an mrrl.Analysis from cached lengths.
func analysisFor(lens []uint64) *mrrl.Analysis {
	return &mrrl.Analysis{ReuseProb: mrrl.DefaultReuseProb, Granularity: mrrl.DefaultGranularity, WarmLens: lens}
}

// --- live-point libraries ------------------------------------------------------

// LibraryKind selects the library flavour.
type LibraryKind int

// Library flavours.
const (
	LibFull       LibraryKind = iota // full live-state (the paper's design)
	LibRestricted                    // restricted live-state (Figure 5)
	LibAW                            // architectural-only AW-MRRL checkpoints
)

func (k LibraryKind) String() string {
	switch k {
	case LibRestricted:
		return "restricted"
	case LibAW:
		return "aw"
	}
	return "full"
}

// LibraryInfo describes a built library.
type LibraryInfo struct {
	Path              string
	Points            int
	CompressedBytes   int64
	UncompressedBytes int64
	CreateSeconds     float64
}

// EnsureLibrary creates (or reuses) a shuffled live-point library for the
// benchmark under the given maximum configuration. All predictor
// configurations in preds are warmed and stored.
func (c *Context) EnsureLibrary(name string, cfg uarch.Config, preds []bpred.Config, kind LibraryKind, offset int) (LibraryInfo, error) {
	key := fmt.Sprintf("library/%s/%.4f/%s/%s/o%d/n%d", name, c.Scale, cfg.Name, kind, offset, c.MaxLibPoints)
	var info LibraryInfo
	if c.cached(key, &info) {
		if _, err := os.Stat(info.Path); err == nil {
			return info, nil
		}
	}
	design, err := c.LibraryDesign(name, cfg, offset)
	if err != nil {
		return info, err
	}
	p, err := c.Program(name)
	if err != nil {
		return info, err
	}

	opts := livepoint.CreateOpts{MaxHier: cfg.Hier, Preds: preds}
	switch kind {
	case LibRestricted:
		opts.Restricted = true
	case LibAW:
		opts.NoMicroarch = true
		lens, _, err := c.MRRLWarmLens(name, cfg, offset)
		if err != nil {
			return info, err
		}
		opts.FuncWarmLens = lens
	}

	if err := os.MkdirAll(c.OutDir, 0o755); err != nil {
		return info, err
	}
	base := fmt.Sprintf("%s-s%.3f-%s-%s-o%d", name, c.Scale, cfg.Name, kind, offset)
	rawPath := filepath.Join(c.OutDir, base+".raw.lplib")
	path := filepath.Join(c.OutDir, base+".lplib")

	c.logf("library: creating %d %s live-points for %s (%s, offset %d)...",
		design.Units(), kind, name, cfg.Name, offset)
	t0 := time.Now()
	var blobs [][]byte
	err = livepoint.Create(p, design, opts, func(lp *livepoint.LivePoint) error {
		blob, _ := livepoint.Encode(lp)
		blobs = append(blobs, blob)
		return nil
	})
	if err != nil {
		return info, err
	}
	meta := livepoint.Meta{Benchmark: name, UnitLen: design.UnitLen, WarmLen: design.WarmLen}
	uncompressed, err := livepoint.WriteLibrary(rawPath, meta, blobs)
	if err != nil {
		return info, err
	}
	if err := livepoint.ShuffleFile(rawPath, path, 0x5EED+int64(offset)); err != nil {
		return info, err
	}
	if err := os.Remove(rawPath); err != nil {
		return info, err
	}
	size, err := livepoint.FileSize(path)
	if err != nil {
		return info, err
	}
	info = LibraryInfo{
		Path:              path,
		Points:            len(blobs),
		CompressedBytes:   size,
		UncompressedBytes: uncompressed,
		CreateSeconds:     time.Since(t0).Seconds(),
	}
	return info, c.store(key, info)
}

// forEachBench runs fn for every selected benchmark with bounded
// parallelism, collecting the first error.
func (c *Context) forEachBench(fn func(name string) error) error {
	names := c.BenchNames()
	par := c.Parallel
	if par < 1 {
		par = 1
	}
	sem := make(chan struct{}, par)
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, name string) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = fn(name)
		}(i, name)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// sortedCopy returns a sorted copy of xs.
func sortedCopy(xs []float64) []float64 {
	out := make([]float64, len(xs))
	copy(out, xs)
	sort.Float64s(out)
	return out
}

// spreadPositions picks up to n window positions from the later 60 % of the
// design, evenly spaced, so size/time measurements see steady-state warmed
// structures rather than the cold ramp at program start.
func spreadPositions(positions []uint64, n int) []uint64 {
	if len(positions) <= n {
		return positions
	}
	start := 2 * len(positions) / 5
	tail := positions[start:]
	out := make([]uint64, 0, n)
	step := len(tail) / n
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(tail) && len(out) < n; i += step {
		out = append(out, tail[i])
	}
	return out
}
