// Package warm implements the warming engines of §2 and §4: the
// functional-warming adapter that keeps long-history structures warm during
// functional simulation, and the SMARTS engine (full warming) that
// interleaves functional warming with detailed windows — the baseline every
// other warming method is measured against.
package warm

import (
	"fmt"
	"time"

	"livepoints/internal/bpred"
	"livepoints/internal/cache"
	"livepoints/internal/functional"
	"livepoints/internal/isa"
	"livepoints/internal/mem"
	"livepoints/internal/prog"
	"livepoints/internal/sampling"
	"livepoints/internal/uarch"
)

// Warmer adapts a memory hierarchy and branch predictor to the functional
// simulator's warming hooks. Optional observers receive the reference
// stream (used by MRRL analysis and MTR capture).
type Warmer struct {
	H  *cache.Hier
	BP *bpred.Predictor

	// OnMem, when non-nil, observes every data reference (word address).
	OnMem func(addr uint64, write bool)
	// OnFetch, when non-nil, observes every instruction fetch (byte
	// address).
	OnFetch func(addr uint64)
}

// WarmFetch implements functional.Warmer.
func (w *Warmer) WarmFetch(addr uint64) {
	if w.H != nil {
		w.H.WarmFetch(addr)
	}
	if w.OnFetch != nil {
		w.OnFetch(addr)
	}
}

// WarmMem implements functional.Warmer.
func (w *Warmer) WarmMem(addr uint64, write bool) {
	if w.H != nil {
		w.H.WarmData(addr, write)
	}
	if w.OnMem != nil {
		w.OnMem(addr, write)
	}
}

// WarmBranch implements functional.Warmer.
func (w *Warmer) WarmBranch(addr uint64, in isa.Inst, taken bool, target uint64) {
	if w.BP != nil {
		w.BP.UpdateWithSpec(addr, in, taken, target)
	}
}

// BenchLength runs a pure functional simulation to halt and returns the
// benchmark's exact dynamic instruction count. maxInst bounds runaway
// programs.
func BenchLength(p *prog.Program, maxInst uint64) (uint64, error) {
	cpu := functional.New(p, p.NewMemory())
	return cpu.RunToHalt(maxInst)
}

// WindowResult is the outcome of one detailed window.
type WindowResult struct {
	UnitCPI float64
	Stats   uarch.Stats
}

// RunWindow runs one detailed window (warming then measurement) on the
// given core, returning the CPI of the measurement interval.
func RunWindow(core *uarch.Core, warmLen, unitLen uint64) (WindowResult, error) {
	if n := core.Run(warmLen); n != warmLen {
		return WindowResult{}, fmt.Errorf("warm: window halted during detailed warming (%d of %d committed)", n, warmLen)
	}
	cyclesAtMeasure := core.Cycle()
	if n := core.Run(unitLen); n != unitLen {
		return WindowResult{}, fmt.Errorf("warm: window halted during measurement (%d of %d committed)", n, unitLen)
	}
	cpi := float64(core.Cycle()-cyclesAtMeasure) / float64(unitLen)
	return WindowResult{UnitCPI: cpi, Stats: core.Stat}, nil
}

// SMARTSResult is the outcome of a full-warming (SMARTS) sampled
// simulation.
type SMARTSResult struct {
	UnitCPIs []float64
	Est      sampling.Estimate

	// Instruction and wall-clock accounting, the basis of Figure 1's
	// runtime split.
	FuncWarmInsts uint64
	DetailedInsts uint64
	FuncWarmTime  time.Duration
	DetailedTime  time.Duration
}

// SMARTSOpts tunes the engine.
type SMARTSOpts struct {
	// CheckHandoff verifies after every window that the detailed core's
	// committed architectural state equals pure functional execution —
	// the invariant the sampling methodology rests on. Costs one register
	// compare per window.
	CheckHandoff bool
	// MaxUnits, when positive, stops after that many measurement units
	// (used for pilot variance runs).
	MaxUnits int
}

// RunSMARTS performs full-warming simulation sampling over the program:
// functional warming between windows, detailed windows at each design
// position. This is the paper's SMARTS baseline (Figure 1) and also the
// creation-time reference for checkpointed warming.
func RunSMARTS(cfg uarch.Config, p *prog.Program, design sampling.Design, opts SMARTSOpts) (*SMARTSResult, error) {
	m := p.NewMemory()
	hier := cache.NewHier(cfg.Hier)
	bp := bpred.New(cfg.BP)
	w := &Warmer{H: hier, BP: bp}
	cpu := functional.New(p, m)
	cpu.Warm = w

	res := &SMARTSResult{}
	for j := 0; j < design.Units(); j++ {
		if opts.MaxUnits > 0 && j >= opts.MaxUnits {
			break
		}
		start := design.WindowStart(j)
		if cpu.InstRet > start {
			return nil, fmt.Errorf("warm: overlapping windows at unit %d (at %d, window starts %d)", j, cpu.InstRet, start)
		}
		// Functional warming up to the window.
		t0 := time.Now()
		ff := start - cpu.InstRet
		if n, err := cpu.Run(ff); err != nil || n != ff {
			return nil, fmt.Errorf("warm: functional warming ended early at unit %d: %v", j, err)
		}
		res.FuncWarmInsts += ff
		res.FuncWarmTime += time.Since(t0)

		// Detailed window on an overlay; caches and predictor are shared
		// with warming, exactly as in SMARTS.
		t0 = time.Now()
		winLen := design.WindowLen()
		overlay := mem.NewOverlay(m)
		core := uarch.NewCore(cfg, p, overlay, cpu.State, hier, bp)
		wr, err := RunWindow(core, design.WarmLen, design.UnitLen)
		if err != nil {
			return nil, fmt.Errorf("warm: unit %d: %w", j, err)
		}
		res.UnitCPIs = append(res.UnitCPIs, wr.UnitCPI)
		res.Est.Add(wr.UnitCPI)
		res.DetailedInsts += winLen
		res.DetailedTime += time.Since(t0)

		// Advance the functional simulator over the window with warming
		// off — the detailed core already performed the window's
		// microarchitectural updates (including wrong-path pollution).
		cpu.Warm = nil
		if n, err := cpu.Run(winLen); err != nil || n != winLen {
			return nil, fmt.Errorf("warm: functional advance over window %d failed: %v", j, err)
		}
		cpu.Warm = w

		if opts.CheckHandoff {
			cs := core.CommittedState()
			if cs.PC != cpu.PC || cs.Regs != cpu.Regs {
				return nil, fmt.Errorf("warm: handoff invariant violated at unit %d: core pc=%d functional pc=%d", j, cs.PC, cpu.PC)
			}
		}
	}
	return res, nil
}

// RunFullDetailed runs the entire benchmark through the detailed core with
// cold-started but continuously-live structures: the sim-outorder
// "complete simulation" gold standard against which sampling bias is
// measured. Returns overall CPI and the core statistics.
func RunFullDetailed(cfg uarch.Config, p *prog.Program, maxInst uint64) (float64, uarch.Stats, error) {
	m := p.NewMemory()
	hier := cache.NewHier(cfg.Hier)
	bp := bpred.New(cfg.BP)
	core := uarch.NewCore(cfg, p, m, functional.State{}, hier, bp)
	core.Run(maxInst)
	if !core.Halted() {
		return 0, core.Stat, fmt.Errorf("warm: benchmark did not halt within %d instructions", maxInst)
	}
	return core.Stat.CPI(), core.Stat, nil
}
