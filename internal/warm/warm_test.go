package warm

import (
	"math"
	"testing"

	"livepoints/internal/prog"
	"livepoints/internal/sampling"
	"livepoints/internal/uarch"
)

func genBench(t *testing.T, name string, scale float64) (*prog.Program, uint64) {
	t.Helper()
	spec, err := prog.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	p := prog.Generate(spec, scale)
	n, err := BenchLength(p, p.TargetLen*4+1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return p, n
}

// TestSMARTSHandoffInvariant is the load-bearing correctness test: across
// every window of a SMARTS run, the detailed core must hand the
// architectural state back to the functional simulator exactly.
func TestSMARTSHandoffInvariant(t *testing.T) {
	for _, name := range []string{"syn.gzip", "syn.mcf", "syn.gcc"} {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := uarch.Config8Way()
			p, benchLen := genBench(t, name, 0.01)
			design, err := sampling.NewSystematic(benchLen, uarch.MeasureLen, uint64(cfg.DetailedWarm), 8, 1)
			if err != nil {
				t.Fatal(err)
			}
			res, err := RunSMARTS(cfg, p, design, SMARTSOpts{CheckHandoff: true, MaxUnits: 20})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.UnitCPIs) == 0 {
				t.Fatal("no units measured")
			}
			for i, c := range res.UnitCPIs {
				if c <= 0 || math.IsNaN(c) {
					t.Fatalf("unit %d: bad CPI %v", i, c)
				}
			}
		})
	}
}

// TestSMARTSEstimateTracksFullSim checks that a dense SMARTS sample
// estimates whole-program CPI close to complete detailed simulation — the
// fundamental premise of simulation sampling.
func TestSMARTSEstimateTracksFullSim(t *testing.T) {
	if testing.Short() {
		t.Skip("full detailed simulation is slow")
	}
	cfg := uarch.Config8Way()
	p, benchLen := genBench(t, "syn.gzip", 0.02)

	fullCPI, _, err := RunFullDetailed(cfg, p, benchLen*2+1000)
	if err != nil {
		t.Fatal(err)
	}

	design, err := sampling.NewSystematic(benchLen, uarch.MeasureLen, uint64(cfg.DetailedWarm), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSMARTS(cfg, p, design, SMARTSOpts{})
	if err != nil {
		t.Fatal(err)
	}
	est := res.Est.Mean()
	relErr := math.Abs(est-fullCPI) / fullCPI
	t.Logf("full CPI %.4f, SMARTS estimate %.4f (n=%d units), error %.2f%%",
		fullCPI, est, res.Est.N(), 100*relErr)
	if relErr > 0.10 {
		t.Errorf("SMARTS estimate off by %.1f%% (full %.4f vs est %.4f)", 100*relErr, fullCPI, est)
	}
}

// TestFunctionalWarmingDominates verifies the Figure 1 premise at our
// scale: instructions functionally warmed vastly outnumber detailed-window
// instructions under a realistic design stride.
func TestFunctionalWarmingDominates(t *testing.T) {
	cfg := uarch.Config8Way()
	p, benchLen := genBench(t, "syn.swim", 0.05)
	design, err := sampling.NewSystematic(benchLen, uarch.MeasureLen, uint64(cfg.DetailedWarm), 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSMARTS(cfg, p, design, SMARTSOpts{})
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(res.FuncWarmInsts) / float64(res.FuncWarmInsts+res.DetailedInsts)
	t.Logf("functional warming covers %.1f%% of instructions (%d warm, %d detailed)",
		100*frac, res.FuncWarmInsts, res.DetailedInsts)
	if frac < 0.9 {
		t.Errorf("expected functional warming to dominate, got %.1f%%", 100*frac)
	}
}

// TestRunWindowErrorsOnHalt checks windows that cross program end fail
// loudly instead of producing bogus CPI.
func TestRunWindowErrorsOnHalt(t *testing.T) {
	cfg := uarch.Config8Way()
	_, benchLen := genBench(t, "syn.perlbmk", 0.002)
	if _, err := sampling.NewSystematic(benchLen/1000, uarch.MeasureLen, uint64(cfg.DetailedWarm), 1, 0); err == nil {
		t.Log("short design unexpectedly viable; exercising window halt instead")
	}
	// A design whose last unit extends past the end must be rejected by
	// NewSystematic's clamping, so all windows are simulatable.
	design, err := sampling.NewSystematic(benchLen, uarch.MeasureLen, uint64(cfg.DetailedWarm), 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range design.Positions {
		if pos+design.UnitLen > benchLen {
			t.Fatalf("design emitted unit past benchmark end: %d + %d > %d", pos, design.UnitLen, benchLen)
		}
		if pos < design.WarmLen {
			t.Fatalf("design emitted unit whose warming precedes start: %d < %d", pos, design.WarmLen)
		}
	}
}
