package sampling

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEstimateMatchesClosedForm(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var e Estimate
	for _, x := range xs {
		e.Add(x)
	}
	if e.N() != len(xs) {
		t.Fatalf("n=%d", e.N())
	}
	if math.Abs(e.Mean()-5.0) > 1e-12 {
		t.Fatalf("mean=%v", e.Mean())
	}
	// Unbiased sample variance of the classic dataset is 32/7.
	if math.Abs(e.Var()-32.0/7.0) > 1e-12 {
		t.Fatalf("var=%v", e.Var())
	}
}

func TestEstimateQuickAgainstTwoPass(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(500)
		xs := make([]float64, n)
		var e Estimate
		for i := range xs {
			xs[i] = rng.NormFloat64()*3 + 10
			e.Add(xs[i])
		}
		var mean float64
		for _, x := range xs {
			mean += x
		}
		mean /= float64(n)
		var m2 float64
		for _, x := range xs {
			m2 += (x - mean) * (x - mean)
		}
		v := m2 / float64(n-1)
		return math.Abs(e.Mean()-mean) < 1e-9 && math.Abs(e.Var()-v) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateMergeQuickAgainstSerial(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(400)
		xs := make([]float64, n)
		var serial Estimate
		for i := range xs {
			xs[i] = rng.NormFloat64()*2 + 5
			serial.Add(xs[i])
		}
		// Split into random-size partials and merge them back together.
		var merged Estimate
		for start := 0; start < n; {
			end := start + 1 + rng.Intn(n-start)
			var part Estimate
			for _, x := range xs[start:end] {
				part.Add(x)
			}
			merged.Merge(part)
			start = end
		}
		return merged.N() == serial.N() &&
			math.Abs(merged.Mean()-serial.Mean()) < 1e-9 &&
			math.Abs(merged.Var()-serial.Var()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateMergeEmpty(t *testing.T) {
	var a, b Estimate
	a.Add(1)
	a.Add(3)
	want := a
	a.Merge(b) // merging an empty estimate is a no-op
	if a != want {
		t.Fatalf("merge with empty changed estimate: %+v", a)
	}
	b.Merge(a) // merging into an empty estimate copies
	if b != want {
		t.Fatalf("merge into empty: %+v, want %+v", b, want)
	}
}

func TestMatchedPairMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var serial, left, right MatchedPair
	for i := 0; i < 100; i++ {
		b, e := rng.NormFloat64()+2, rng.NormFloat64()+2.1
		serial.Add(b, e)
		if i < 37 {
			left.Add(b, e)
		} else {
			right.Add(b, e)
		}
	}
	left.Merge(right)
	if left.N() != serial.N() || math.Abs(left.MeanDelta()-serial.MeanDelta()) > 1e-9 {
		t.Fatalf("merged pair n=%d Δ=%v, want n=%d Δ=%v",
			left.N(), left.MeanDelta(), serial.N(), serial.MeanDelta())
	}
	if math.Abs(left.DeltaCI(3)-serial.DeltaCI(3)) > 1e-9 {
		t.Fatalf("merged ΔCI %v, want %v", left.DeltaCI(3), serial.DeltaCI(3))
	}
}

func TestRequiredN(t *testing.T) {
	// Paper arithmetic: ±3% at z=3 with CV=1 needs (3*1/0.03)^2 = 10000.
	if n := RequiredN(1.0, 3, 0.03); n != 10000 {
		t.Fatalf("RequiredN(cv=1)=%d, want 10000", n)
	}
	// Tiny CV floors at the CLT minimum.
	if n := RequiredN(0.001, 3, 0.03); n != MinSampleSize {
		t.Fatalf("RequiredN(cv=0.001)=%d, want %d", n, MinSampleSize)
	}
}

func TestRequiredNPanicsOnBadTarget(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RequiredN with zero target should panic")
		}
	}()
	RequiredN(1, 3, 0)
}

func TestSatisfiedNeedsMinSample(t *testing.T) {
	var e Estimate
	for i := 0; i < MinSampleSize-1; i++ {
		e.Add(1.0)
	}
	if e.Satisfied(Z997, 0.5) {
		t.Fatal("satisfied below the CLT minimum")
	}
	e.Add(1.0)
	if !e.Satisfied(Z997, 0.5) {
		t.Fatal("identical observations should satisfy any target at n=30")
	}
}

func TestCIShrinksWithN(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var e Estimate
	var prev float64 = math.Inf(1)
	for step := 0; step < 4; step++ {
		for i := 0; i < 1000; i++ {
			e.Add(rng.NormFloat64() + 5)
		}
		ci := e.CIHalfWidth(Z997)
		if ci >= prev {
			t.Fatalf("CI did not shrink: %v -> %v", prev, ci)
		}
		prev = ci
	}
}

func TestCICoverage(t *testing.T) {
	// 99.7% intervals from normal samples should cover the true mean in
	// the vast majority of trials.
	rng := rand.New(rand.NewSource(7))
	const trials = 300
	covered := 0
	for trial := 0; trial < trials; trial++ {
		var e Estimate
		for i := 0; i < 200; i++ {
			e.Add(rng.NormFloat64()*2 + 42)
		}
		if math.Abs(e.Mean()-42) <= e.CIHalfWidth(Z997) {
			covered++
		}
	}
	if covered < trials*95/100 {
		t.Fatalf("99.7%% CI covered truth in only %d/%d trials", covered, trials)
	}
}

func TestNewSystematicDesign(t *testing.T) {
	d, err := NewSystematic(1_000_000, 1000, 2000, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Units() == 0 {
		t.Fatal("no units")
	}
	for j := 0; j < d.Units(); j++ {
		if d.WindowStart(j) > d.Positions[j] {
			t.Fatal("window start after measurement start")
		}
		if d.Positions[j]+d.UnitLen > 1_000_000 {
			t.Fatal("unit past benchmark end")
		}
		if j > 0 && d.Positions[j] <= d.Positions[j-1] {
			t.Fatal("positions not increasing")
		}
	}
	// First window's warming must not precede instruction 0.
	if d.WindowStart(0) > d.Positions[0] {
		t.Fatal("underflow in first window")
	}
}

func TestNewSystematicRejectsBadParams(t *testing.T) {
	if _, err := NewSystematic(1000, 0, 0, 1, 0); err == nil {
		t.Fatal("zero unit length accepted")
	}
	if _, err := NewSystematic(1000, 1000, 0, 0, 0); err == nil {
		t.Fatal("zero stride accepted")
	}
	if _, err := NewSystematic(500, 1000, 0, 1, 0); err == nil {
		t.Fatal("benchmark shorter than a unit accepted")
	}
}

func TestShuffledOrderIsPermutationAndDeterministic(t *testing.T) {
	d, err := NewSystematic(10_000_000, 1000, 2000, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	o1 := d.ShuffledOrder(99)
	o2 := d.ShuffledOrder(99)
	o3 := d.ShuffledOrder(100)
	seen := make([]bool, d.Units())
	same12, same13 := true, true
	for i := range o1 {
		if seen[o1[i]] {
			t.Fatal("duplicate index in shuffle")
		}
		seen[o1[i]] = true
		same12 = same12 && o1[i] == o2[i]
		same13 = same13 && o1[i] == o3[i]
	}
	if !same12 {
		t.Fatal("same seed produced different orders")
	}
	if same13 {
		t.Fatal("different seeds produced identical orders")
	}
}

func TestSubSample(t *testing.T) {
	d, _ := NewSystematic(10_000_000, 1000, 2000, 10, 1)
	s := d.SubSample(1, 50)
	if len(s) != 50 {
		t.Fatalf("sub-sample has %d elements", len(s))
	}
	s = d.SubSample(1, 1<<20)
	if len(s) != d.Units() {
		t.Fatal("oversized sub-sample not clamped")
	}
}

func TestOnlineEstimatorStopsAtTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	o := NewOnline(Z997, 0.05, true)
	n := 0
	for !o.Add(rng.NormFloat64()*0.1 + 1.0) {
		n++
		if n > 100_000 {
			t.Fatal("never satisfied")
		}
	}
	if o.Estimate().N() < MinSampleSize {
		t.Fatal("stopped before CLT minimum")
	}
	if got := len(o.History()); got != o.Estimate().N() {
		t.Fatalf("history %d entries, want %d", got, o.Estimate().N())
	}
}

func TestMatchedPairReduction(t *testing.T) {
	// Correlated pairs: delta variance far below absolute variance.
	rng := rand.New(rand.NewSource(11))
	var mp MatchedPair
	for i := 0; i < 2000; i++ {
		base := 1.0 + rng.NormFloat64()*0.5 // high absolute variance
		mp.Add(base, base*1.05)             // uniform +5% effect
	}
	if r := mp.SampleSizeReduction(); r < 10 {
		t.Fatalf("expected large reduction for uniform effect, got %.1fx", r)
	}
	if d := mp.RelDelta(); math.Abs(d-0.05) > 0.01 {
		t.Fatalf("RelDelta %.4f, want ~0.05", d)
	}
}

func TestMatchedPairNoImpact(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var mp MatchedPair
	for i := 0; i < 100; i++ {
		base := 1.0 + rng.NormFloat64()*0.3
		mp.Add(base, base+rng.NormFloat64()*0.001) // negligible change
	}
	if !mp.NoImpact(Z997, 0.03) {
		t.Fatal("negligible change not screened as no-impact")
	}
	var mp2 MatchedPair
	for i := 0; i < 100; i++ {
		base := 1.0 + rng.NormFloat64()*0.3
		mp2.Add(base, base*1.5) // huge change
	}
	if mp2.NoImpact(Z997, 0.03) {
		t.Fatal("50% change screened as no-impact")
	}
}

func TestMatchedPairDeltaSatisfied(t *testing.T) {
	var mp MatchedPair
	for i := 0; i < MinSampleSize; i++ {
		mp.Add(1.0, 1.1)
	}
	if !mp.DeltaSatisfied(Z997, 0.01) {
		t.Fatal("constant delta should satisfy immediately at n=30")
	}
}

// TestMatchedPairNegativeBaseline: the ratio helpers normalize by the
// baseline mean's magnitude. Before the math.Abs fix, a negative
// baseline flipped every threshold comparison — DeltaSatisfied's
// positive CI half-width divided by a negative mean was vacuously below
// any target, so a wide-open comparison "satisfied" at n=30, and
// NoImpact's interval bounds swapped sign.
func TestMatchedPairNegativeBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(17))

	// Wide-open delta on a negative baseline: must NOT satisfy a tight
	// target, must NOT screen as no-impact.
	var wide MatchedPair
	for i := 0; i < 100; i++ {
		base := -1.0 + rng.NormFloat64()*0.3
		wide.Add(base, base+rng.NormFloat64()*2.0)
	}
	if wide.DeltaSatisfied(Z997, 0.01) {
		t.Fatal("noisy delta on a negative baseline claimed ±1% satisfaction")
	}
	if wide.NoImpact(Z997, 0.03) {
		t.Fatal("noisy delta on a negative baseline screened as no-impact")
	}

	// Tight delta on a negative baseline: behaves exactly like its
	// positive mirror image.
	var neg, pos MatchedPair
	for i := 0; i < 100; i++ {
		base := 1.0 + rng.NormFloat64()*0.1
		d := rng.NormFloat64() * 0.001
		pos.Add(base, base+d)
		neg.Add(-base, -base+d)
	}
	if pos.DeltaSatisfied(Z997, 0.05) != neg.DeltaSatisfied(Z997, 0.05) {
		t.Fatalf("DeltaSatisfied asymmetric in baseline sign: pos=%v neg=%v",
			pos.DeltaSatisfied(Z997, 0.05), neg.DeltaSatisfied(Z997, 0.05))
	}
	if pos.NoImpact(Z997, 0.03) != neg.NoImpact(Z997, 0.03) {
		t.Fatalf("NoImpact asymmetric in baseline sign: pos=%v neg=%v",
			pos.NoImpact(Z997, 0.03), neg.NoImpact(Z997, 0.03))
	}
	if !neg.NoImpact(Z997, 0.03) {
		t.Fatal("negligible change on a negative baseline not screened as no-impact")
	}

	// RelDelta keeps the delta's own sign regardless of baseline sign: a
	// +0.05 absolute delta is a +5% relative change whether the metric
	// runs positive or negative.
	var rd MatchedPair
	for i := 0; i < MinSampleSize; i++ {
		rd.Add(-1.0, -0.95) // delta = +0.05 on baseline mean -1.0
	}
	if got := rd.RelDelta(); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("RelDelta on negative baseline %.6f, want +0.05", got)
	}
}
