// Package sampling implements the statistical machinery of SMARTS-style
// simulation sampling: streaming mean/variance estimation, confidence
// intervals, required-sample-size computation, systematic sample designs,
// deterministic shuffling for random-order processing, and matched-pair
// comparison for comparative studies (§6 of the paper).
package sampling

import (
	"fmt"
	"math"
	"math/rand"
)

// Z997 is the normal quantile the paper uses for "99.7 % confidence"
// (three sigma).
const Z997 = 3.0

// MinSampleSize is the minimum sample the paper accepts before trusting
// the central limit theorem (§6.1).
const MinSampleSize = 30

// Estimate is a streaming (Welford) mean/variance accumulator.
type Estimate struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the estimate.
func (e *Estimate) Add(x float64) {
	e.n++
	d := x - e.mean
	e.mean += d / float64(e.n)
	e.m2 += d * (x - e.mean)
}

// N returns the number of observations.
func (e *Estimate) N() int { return e.n }

// Mean returns the sample mean.
func (e *Estimate) Mean() float64 { return e.mean }

// Var returns the unbiased sample variance.
func (e *Estimate) Var() float64 {
	if e.n < 2 {
		return 0
	}
	return e.m2 / float64(e.n-1)
}

// Std returns the sample standard deviation.
func (e *Estimate) Std() float64 { return math.Sqrt(e.Var()) }

// CV returns the coefficient of variation (σ/μ); zero when the mean is zero.
func (e *Estimate) CV() float64 {
	if e.mean == 0 {
		return 0
	}
	return math.Abs(e.Std() / e.mean)
}

// CIHalfWidth returns the confidence-interval half-width z·σ/√n.
func (e *Estimate) CIHalfWidth(z float64) float64 {
	if e.n == 0 {
		return math.Inf(1)
	}
	return z * e.Std() / math.Sqrt(float64(e.n))
}

// RelCI returns the half-width relative to the mean (the paper's "±3 %").
func (e *Estimate) RelCI(z float64) float64 {
	if e.mean == 0 {
		return math.Inf(1)
	}
	return math.Abs(e.CIHalfWidth(z) / e.mean)
}

// Satisfied reports whether the estimate meets a relative-error target at
// confidence z with at least MinSampleSize observations.
func (e *Estimate) Satisfied(z, relErr float64) bool {
	return e.n >= MinSampleSize && e.RelCI(z) <= relErr
}

// Merge folds another estimate into e (the parallel Welford combination of
// Chan et al.), so partial estimates accumulated independently — on other
// goroutines or other machines — compose into one fleet-wide estimate
// without revisiting the observations.
func (e *Estimate) Merge(other Estimate) {
	if other.n == 0 {
		return
	}
	if e.n == 0 {
		*e = other
		return
	}
	n := e.n + other.n
	d := other.mean - e.mean
	e.m2 += other.m2 + d*d*float64(e.n)*float64(other.n)/float64(n)
	e.mean += d * float64(other.n) / float64(n)
	e.n = n
}

// String formats the estimate compactly.
func (e *Estimate) String() string {
	return fmt.Sprintf("n=%d mean=%.4f ±%.2f%% (99.7%%)", e.n, e.mean, 100*e.RelCI(Z997))
}

// RequiredN returns the sample size needed to achieve the given relative
// error at confidence z for a population with coefficient of variation cv:
// n = ceil((z·cv/ε)²), floored at MinSampleSize.
func RequiredN(cv, z, relErr float64) int {
	if relErr <= 0 {
		panic("sampling: relative error target must be positive")
	}
	n := int(math.Ceil(sq(z * cv / relErr)))
	if n < MinSampleSize {
		n = MinSampleSize
	}
	return n
}

func sq(x float64) float64 { return x * x }

// Design is a systematic (periodic) sample design over a benchmark: U
// measurement units of UnitLen instructions, the j-th unit starting at
// Positions[j] (an instruction offset from the start of the benchmark).
// All experiments on a benchmark share one design, which is exactly how a
// live-point library fixes window locations in advance (§5).
type Design struct {
	UnitLen   uint64
	WarmLen   uint64 // detailed-warming instructions before each unit
	Positions []uint64
}

// NewSystematic builds a periodic design over a benchmark of length
// benchLen: units of unitLen instructions every strideUnits·unitLen
// instructions, starting at offset·unitLen. The detailed-warming length
// warmLen determines how far before each measurement the detailed window
// opens; positions are clamped so the warming never precedes instruction 0.
func NewSystematic(benchLen, unitLen, warmLen uint64, strideUnits, offset int) (Design, error) {
	if unitLen == 0 || strideUnits <= 0 {
		return Design{}, fmt.Errorf("sampling: bad design parameters unitLen=%d stride=%d", unitLen, strideUnits)
	}
	stride := unitLen * uint64(strideUnits)
	first := uint64(offset) * unitLen
	if first < warmLen {
		first = warmLen
	}
	d := Design{UnitLen: unitLen, WarmLen: warmLen}
	for pos := first; pos+unitLen <= benchLen; pos += stride {
		d.Positions = append(d.Positions, pos)
	}
	if len(d.Positions) == 0 {
		return Design{}, fmt.Errorf("sampling: benchmark of %d instructions too short for any unit", benchLen)
	}
	return d, nil
}

// Units returns the number of measurement units in the design.
func (d Design) Units() int { return len(d.Positions) }

// WindowStart returns the instruction position where the detailed window
// (warming + measurement) for unit j begins.
func (d Design) WindowStart(j int) uint64 { return d.Positions[j] - d.WarmLen }

// WindowLen returns the total detailed window length.
func (d Design) WindowLen() uint64 { return d.WarmLen + d.UnitLen }

// Jitter displaces every position by a deterministic pseudo-random number
// of units within its stride slot ("systematic random sampling"). This
// removes the aliasing a strictly periodic design suffers on periodic
// workloads while keeping windows non-overlapping: the jitter range leaves
// at least minGapUnits between consecutive windows.
func (d *Design) Jitter(seed int64, strideUnits, minGapUnits int, benchLen uint64) {
	maxJit := strideUnits - minGapUnits
	if maxJit <= 1 {
		return
	}
	rng := rand.New(rand.NewSource(seed))
	for i := range d.Positions {
		j := uint64(rng.Intn(maxJit)) * d.UnitLen
		if lim := benchLen - d.UnitLen - d.Positions[i]; j > lim {
			j = lim
		}
		d.Positions[i] += j
	}
}

// ShuffledOrder returns a deterministic pseudo-random permutation of the
// design's unit indices — the paper's random-order processing (§6.1).
func (d Design) ShuffledOrder(seed int64) []int {
	order := make([]int, len(d.Positions))
	for i := range order {
		order[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	return order
}

// SubSample returns the first n positions of the shuffled order: an
// unbiased random sub-sample of the design (§6.1).
func (d Design) SubSample(seed int64, n int) []int {
	order := d.ShuffledOrder(seed)
	if n > len(order) {
		n = len(order)
	}
	return order[:n]
}
