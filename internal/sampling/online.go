package sampling

import "math"

// OnlineEstimator implements the paper's random-order online reporting
// (§6.1): as shuffled live-points are processed, the points seen so far
// form an unbiased sub-sample, so the running estimate and its confidence
// are valid at every step. Simulation can stop as soon as the target is
// met (never before MinSampleSize observations).
type OnlineEstimator struct {
	est     Estimate
	z       float64
	relErr  float64
	history []Snapshot
	keep    bool
}

// Snapshot is the state of the running estimate after one observation,
// retained when history recording is enabled (for convergence plots).
type Snapshot struct {
	N      int
	Mean   float64
	RelCI  float64
	Target float64
}

// NewOnline returns an online estimator targeting the given relative error
// at confidence z.
func NewOnline(z, relErr float64, recordHistory bool) *OnlineEstimator {
	return &OnlineEstimator{z: z, relErr: relErr, keep: recordHistory}
}

// Add folds in one observation and reports whether the confidence target
// is now satisfied (simulation may stop).
func (o *OnlineEstimator) Add(x float64) (satisfied bool) {
	o.est.Add(x)
	if o.keep {
		o.history = append(o.history, Snapshot{
			N:      o.est.N(),
			Mean:   o.est.Mean(),
			RelCI:  o.est.RelCI(o.z),
			Target: o.relErr,
		})
	}
	return o.Satisfied()
}

// Satisfied reports whether the confidence target is met.
func (o *OnlineEstimator) Satisfied() bool { return o.est.Satisfied(o.z, o.relErr) }

// Estimate returns the current running estimate.
func (o *OnlineEstimator) Estimate() *Estimate { return &o.est }

// History returns the per-observation snapshots (nil unless recording was
// requested).
func (o *OnlineEstimator) History() []Snapshot { return o.history }

// MatchedPair accumulates paired observations from a baseline and an
// experimental configuration measured on the same sample units, building a
// confidence interval directly on the per-unit delta (§6.2, after Ekman &
// Stenström). Because design changes shift most units by a similar amount,
// Var(delta) ≪ Var(absolute), and far fewer units are needed.
type MatchedPair struct {
	Base  Estimate
	Exp   Estimate
	Delta Estimate
}

// Add folds in one paired measurement.
func (mp *MatchedPair) Add(base, exp float64) {
	mp.Base.Add(base)
	mp.Exp.Add(exp)
	mp.Delta.Add(exp - base)
}

// Merge folds another matched-pair accumulator into mp, composing partial
// comparisons built on independent workers into one (see Estimate.Merge).
func (mp *MatchedPair) Merge(other MatchedPair) {
	mp.Base.Merge(other.Base)
	mp.Exp.Merge(other.Exp)
	mp.Delta.Merge(other.Delta)
}

// N returns the number of pairs.
func (mp *MatchedPair) N() int { return mp.Delta.N() }

// MeanDelta returns the estimated performance change.
func (mp *MatchedPair) MeanDelta() float64 { return mp.Delta.Mean() }

// RelDelta returns the change relative to the baseline mean's magnitude.
// Normalizing by |mean| keeps the sign of the delta meaningful when the
// baseline metric itself is negative (a speedup stays a speedup).
func (mp *MatchedPair) RelDelta() float64 {
	if mp.Base.Mean() == 0 {
		return 0
	}
	return mp.Delta.Mean() / math.Abs(mp.Base.Mean())
}

// DeltaCI returns the half-width of the confidence interval on the mean
// delta at confidence z.
func (mp *MatchedPair) DeltaCI(z float64) float64 { return mp.Delta.CIHalfWidth(z) }

// DeltaSatisfied reports whether the delta is known to the given relative
// error (relative to the baseline mean's magnitude — the natural
// yardstick when the delta itself may be near zero). The divisor must be
// |mean|: dividing the (positive) CI half-width by a negative mean would
// make the comparison vacuously true at N = MinSampleSize.
func (mp *MatchedPair) DeltaSatisfied(z, relErr float64) bool {
	if mp.N() < MinSampleSize || mp.Base.Mean() == 0 {
		return false
	}
	return mp.DeltaCI(z)/math.Abs(mp.Base.Mean()) <= relErr
}

// NoImpact reports whether the confidence interval on the delta excludes
// any change larger than threshold·|baseline| — the paper's rapid
// "no appreciable impact" screen (§6.2). As in DeltaSatisfied, a
// negative baseline mean must not flip the interval bounds.
func (mp *MatchedPair) NoImpact(z, threshold float64) bool {
	if mp.N() < MinSampleSize || mp.Base.Mean() == 0 {
		return false
	}
	hi := (mp.Delta.Mean() + mp.DeltaCI(z)) / math.Abs(mp.Base.Mean())
	lo := (mp.Delta.Mean() - mp.DeltaCI(z)) / math.Abs(mp.Base.Mean())
	return hi < threshold && lo > -threshold
}

// SampleSizeReduction returns the factor by which matched-pair comparison
// shrinks the required sample relative to an absolute measurement of the
// experimental configuration at equal precision:
// (cv_abs / cv_delta)² with cv_delta = σ_delta/μ_base.
func (mp *MatchedPair) SampleSizeReduction() float64 {
	if mp.Delta.Std() == 0 {
		return 1
	}
	nAbs := sq(mp.Exp.Std() / mp.Exp.Mean())
	nDelta := sq(mp.Delta.Std() / mp.Base.Mean())
	if nDelta == 0 {
		return 1
	}
	return nAbs / nDelta
}
