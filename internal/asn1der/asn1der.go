// Package asn1der implements the subset of ASN.1 Distinguished Encoding
// Rules (ISO/IEC 8825-1) that the live-point format uses: BOOLEAN, INTEGER,
// OCTET STRING, UTF8String, SEQUENCE, and context-specific constructed
// tags. The paper encodes live-points in ASN.1 DER before gzip compression
// (§3); this package reproduces that wire discipline from scratch.
//
// DER demands minimal, canonical encodings: definite lengths with the
// fewest bytes, integers in minimal two's complement. The decoder enforces
// these rules, so any encoder bug that breaks canonical form is caught by
// round-trip tests.
package asn1der

import (
	"errors"
	"fmt"
)

// Universal tags used by the live-point format.
const (
	TagBoolean     = 0x01
	TagInteger     = 0x02
	TagOctetString = 0x04
	TagUTF8String  = 0x0C
	TagSequence    = 0x30 // constructed
)

// ContextTag returns the identifier octet for a context-specific
// constructed tag [n] (n < 31).
func ContextTag(n int) byte {
	if n < 0 || n >= 31 {
		panic(fmt.Sprintf("asn1der: context tag %d out of range", n))
	}
	return 0xA0 | byte(n)
}

// ErrTruncated reports input ending inside an element.
var ErrTruncated = errors.New("asn1der: truncated input")

// Builder incrementally assembles DER output.
type Builder struct {
	buf []byte
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{} }

// Bytes returns the encoded output. The slice aliases the builder's
// internal buffer.
func (b *Builder) Bytes() []byte { return b.buf }

// Len returns the current encoded size.
func (b *Builder) Len() int { return len(b.buf) }

// appendLength appends a DER definite length.
func (b *Builder) appendLength(n int) {
	switch {
	case n < 0x80:
		b.buf = append(b.buf, byte(n))
	case n <= 0xFF:
		b.buf = append(b.buf, 0x81, byte(n))
	case n <= 0xFFFF:
		b.buf = append(b.buf, 0x82, byte(n>>8), byte(n))
	case n <= 0xFFFFFF:
		b.buf = append(b.buf, 0x83, byte(n>>16), byte(n>>8), byte(n))
	default:
		b.buf = append(b.buf, 0x84, byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
	}
}

// Bool appends a BOOLEAN (DER: 0xFF for true, 0x00 for false).
func (b *Builder) Bool(v bool) {
	b.buf = append(b.buf, TagBoolean, 1)
	if v {
		b.buf = append(b.buf, 0xFF)
	} else {
		b.buf = append(b.buf, 0x00)
	}
}

// Int64 appends an INTEGER in minimal two's complement.
func (b *Builder) Int64(v int64) {
	var tmp [8]byte
	for i := 0; i < 8; i++ {
		tmp[i] = byte(v >> uint(56-8*i))
	}
	// Strip redundant leading bytes per DER.
	i := 0
	for i < 7 {
		if tmp[i] == 0x00 && tmp[i+1]&0x80 == 0 {
			i++
			continue
		}
		if tmp[i] == 0xFF && tmp[i+1]&0x80 != 0 {
			i++
			continue
		}
		break
	}
	content := tmp[i:]
	b.buf = append(b.buf, TagInteger)
	b.appendLength(len(content))
	b.buf = append(b.buf, content...)
}

// Uint64 appends an unsigned value as an INTEGER (prepending 0x00 when the
// top bit is set, per DER).
func (b *Builder) Uint64(v uint64) {
	var tmp [9]byte
	for i := 0; i < 8; i++ {
		tmp[i+1] = byte(v >> uint(56-8*i))
	}
	i := 1
	for i < 8 && tmp[i] == 0 {
		i++
	}
	if tmp[i]&0x80 != 0 {
		i-- // keep one 0x00 pad
	}
	content := tmp[i:]
	b.buf = append(b.buf, TagInteger)
	b.appendLength(len(content))
	b.buf = append(b.buf, content...)
}

// OctetString appends an OCTET STRING.
func (b *Builder) OctetString(v []byte) {
	b.buf = append(b.buf, TagOctetString)
	b.appendLength(len(v))
	b.buf = append(b.buf, v...)
}

// UTF8String appends a UTF8String.
func (b *Builder) UTF8String(v string) {
	b.buf = append(b.buf, TagUTF8String)
	b.appendLength(len(v))
	b.buf = append(b.buf, v...)
}

// Sequence appends a SEQUENCE whose contents are produced by fn.
func (b *Builder) Sequence(fn func(*Builder)) { b.constructed(TagSequence, fn) }

// Context appends a context-specific constructed element [n].
func (b *Builder) Context(n int, fn func(*Builder)) { b.constructed(ContextTag(n), fn) }

func (b *Builder) constructed(tag byte, fn func(*Builder)) {
	child := &Builder{}
	fn(child)
	b.buf = append(b.buf, tag)
	b.appendLength(len(child.buf))
	b.buf = append(b.buf, child.buf...)
}

// Decoder walks DER input produced by Builder.
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder returns a decoder over the input.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Over returns a value Decoder over the input. Unlike NewDecoder it never
// touches the heap, which matters to allocation-free decode paths: child
// decoders obtained with ReadSequence/ReadContext live on the caller's
// stack.
func Over(buf []byte) Decoder { return Decoder{buf: buf} }

// More reports whether undecoded bytes remain.
func (d *Decoder) More() bool { return d.off < len(d.buf) }

// Rest returns the number of undecoded bytes.
func (d *Decoder) Rest() int { return len(d.buf) - d.off }

// readHeader consumes an identifier octet and length, returning the tag and
// content bounds.
func (d *Decoder) readHeader() (tag byte, content []byte, err error) {
	if d.off >= len(d.buf) {
		return 0, nil, ErrTruncated
	}
	tag = d.buf[d.off]
	d.off++
	if d.off >= len(d.buf) {
		return 0, nil, ErrTruncated
	}
	l := int(d.buf[d.off])
	d.off++
	if l >= 0x80 {
		nb := l & 0x7F
		if nb == 0 || nb > 4 {
			return 0, nil, fmt.Errorf("asn1der: unsupported length-of-length %d", nb)
		}
		if d.off+nb > len(d.buf) {
			return 0, nil, ErrTruncated
		}
		l = 0
		for i := 0; i < nb; i++ {
			l = l<<8 | int(d.buf[d.off])
			d.off++
		}
		if l < 0x80 && nb == 1 {
			return 0, nil, errors.New("asn1der: non-minimal length encoding")
		}
	}
	if d.off+l > len(d.buf) {
		return 0, nil, ErrTruncated
	}
	content = d.buf[d.off : d.off+l]
	d.off += l
	return tag, content, nil
}

// expect reads an element and checks its tag.
func (d *Decoder) expect(want byte) ([]byte, error) {
	tag, content, err := d.readHeader()
	if err != nil {
		return nil, err
	}
	if tag != want {
		return nil, fmt.Errorf("asn1der: tag %#02x, want %#02x at offset %d", tag, want, d.off)
	}
	return content, nil
}

// Bool reads a BOOLEAN.
func (d *Decoder) Bool() (bool, error) {
	c, err := d.expect(TagBoolean)
	if err != nil {
		return false, err
	}
	if len(c) != 1 || (c[0] != 0x00 && c[0] != 0xFF) {
		return false, errors.New("asn1der: non-canonical boolean")
	}
	return c[0] == 0xFF, nil
}

// Int64 reads an INTEGER.
func (d *Decoder) Int64() (int64, error) {
	c, err := d.expect(TagInteger)
	if err != nil {
		return 0, err
	}
	if err := checkMinimalInt(c); err != nil {
		return 0, err
	}
	if len(c) > 8 {
		return 0, errors.New("asn1der: integer overflows int64")
	}
	v := int64(0)
	if c[0]&0x80 != 0 {
		v = -1
	}
	for _, by := range c {
		v = v<<8 | int64(by)
	}
	return v, nil
}

// Uint64 reads an unsigned INTEGER.
func (d *Decoder) Uint64() (uint64, error) {
	c, err := d.expect(TagInteger)
	if err != nil {
		return 0, err
	}
	if err := checkMinimalInt(c); err != nil {
		return 0, err
	}
	if c[0]&0x80 != 0 {
		return 0, errors.New("asn1der: negative value for unsigned field")
	}
	if len(c) > 9 || (len(c) == 9 && c[0] != 0) {
		return 0, errors.New("asn1der: integer overflows uint64")
	}
	v := uint64(0)
	for _, by := range c {
		v = v<<8 | uint64(by)
	}
	return v, nil
}

func checkMinimalInt(c []byte) error {
	if len(c) == 0 {
		return errors.New("asn1der: empty integer")
	}
	if len(c) > 1 {
		if c[0] == 0x00 && c[1]&0x80 == 0 {
			return errors.New("asn1der: non-minimal integer")
		}
		if c[0] == 0xFF && c[1]&0x80 != 0 {
			return errors.New("asn1der: non-minimal integer")
		}
	}
	return nil
}

// OctetString reads an OCTET STRING. The returned slice aliases the input.
func (d *Decoder) OctetString() ([]byte, error) { return d.expect(TagOctetString) }

// UTF8String reads a UTF8String.
func (d *Decoder) UTF8String() (string, error) {
	c, err := d.expect(TagUTF8String)
	if err != nil {
		return "", err
	}
	return string(c), nil
}

// UTF8Bytes reads a UTF8String and returns its raw contents. The returned
// slice aliases the input; callers that keep it must copy. Allocation-free
// decoders use it to compare against an already-interned string before
// converting.
func (d *Decoder) UTF8Bytes() ([]byte, error) { return d.expect(TagUTF8String) }

// Sequence reads a SEQUENCE and returns a decoder over its contents.
func (d *Decoder) Sequence() (*Decoder, error) {
	c, err := d.expect(TagSequence)
	if err != nil {
		return nil, err
	}
	return NewDecoder(c), nil
}

// Context reads a context-specific constructed element [n] and returns a
// decoder over its contents.
func (d *Decoder) Context(n int) (*Decoder, error) {
	c, err := d.expect(ContextTag(n))
	if err != nil {
		return nil, err
	}
	return NewDecoder(c), nil
}

// ReadSequence reads a SEQUENCE and returns a value decoder over its
// contents. Semantically identical to Sequence, but the child decoder is
// returned by value so hot decode loops stay allocation-free.
func (d *Decoder) ReadSequence() (Decoder, error) {
	c, err := d.expect(TagSequence)
	if err != nil {
		return Decoder{}, err
	}
	return Decoder{buf: c}, nil
}

// ReadContext reads a context-specific constructed element [n] and returns
// a value decoder over its contents (the allocation-free Context).
func (d *Decoder) ReadContext(n int) (Decoder, error) {
	c, err := d.expect(ContextTag(n))
	if err != nil {
		return Decoder{}, err
	}
	return Decoder{buf: c}, nil
}

// PeekTag returns the next element's tag without consuming it.
func (d *Decoder) PeekTag() (byte, error) {
	if d.off >= len(d.buf) {
		return 0, ErrTruncated
	}
	return d.buf[d.off], nil
}
