package asn1der

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestInt64RoundTrip(t *testing.T) {
	cases := []int64{0, 1, -1, 127, 128, -128, -129, 255, 256, 65535, -65536,
		math.MaxInt64, math.MinInt64, 1 << 31, -(1 << 31)}
	for _, v := range cases {
		b := NewBuilder()
		b.Int64(v)
		got, err := NewDecoder(b.Bytes()).Int64()
		if err != nil {
			t.Fatalf("%d: %v", v, err)
		}
		if got != v {
			t.Fatalf("round-trip %d -> %d", v, got)
		}
	}
}

func TestUint64RoundTrip(t *testing.T) {
	cases := []uint64{0, 1, 127, 128, 255, 256, 1 << 32, math.MaxUint64, math.MaxUint64 - 1}
	for _, v := range cases {
		b := NewBuilder()
		b.Uint64(v)
		got, err := NewDecoder(b.Bytes()).Uint64()
		if err != nil {
			t.Fatalf("%d: %v", v, err)
		}
		if got != v {
			t.Fatalf("round-trip %d -> %d", v, got)
		}
	}
}

func TestQuickIntRoundTrip(t *testing.T) {
	if err := quick.Check(func(v int64) bool {
		b := NewBuilder()
		b.Int64(v)
		got, err := NewDecoder(b.Bytes()).Int64()
		return err == nil && got == v
	}, nil); err != nil {
		t.Fatal(err)
	}
	if err := quick.Check(func(v uint64) bool {
		b := NewBuilder()
		b.Uint64(v)
		got, err := NewDecoder(b.Bytes()).Uint64()
		return err == nil && got == v
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinimalIntegerEncoding(t *testing.T) {
	// DER: 127 encodes in one content byte, 128 needs two (sign pad).
	b := NewBuilder()
	b.Int64(127)
	if !bytes.Equal(b.Bytes(), []byte{0x02, 0x01, 0x7F}) {
		t.Fatalf("127 encoded as % x", b.Bytes())
	}
	b = NewBuilder()
	b.Int64(128)
	if !bytes.Equal(b.Bytes(), []byte{0x02, 0x02, 0x00, 0x80}) {
		t.Fatalf("128 encoded as % x", b.Bytes())
	}
	b = NewBuilder()
	b.Int64(-129)
	if !bytes.Equal(b.Bytes(), []byte{0x02, 0x02, 0xFF, 0x7F}) {
		t.Fatalf("-129 encoded as % x", b.Bytes())
	}
}

func TestDecoderRejectsNonMinimal(t *testing.T) {
	// 0x00 0x01 is a non-minimal encoding of 1.
	bad := []byte{0x02, 0x02, 0x00, 0x01}
	if _, err := NewDecoder(bad).Int64(); err == nil {
		t.Fatal("non-minimal integer accepted")
	}
	// 0x81 0x05 is a non-minimal length for 5.
	bad = []byte{0x04, 0x81, 0x05, 1, 2, 3, 4, 5}
	if _, err := NewDecoder(bad).OctetString(); err == nil {
		t.Fatal("non-minimal length accepted")
	}
}

func TestBoolRoundTrip(t *testing.T) {
	for _, v := range []bool{true, false} {
		b := NewBuilder()
		b.Bool(v)
		got, err := NewDecoder(b.Bytes()).Bool()
		if err != nil || got != v {
			t.Fatalf("bool %v: got %v err %v", v, got, err)
		}
	}
	// DER booleans must be 0x00 or 0xFF.
	if _, err := NewDecoder([]byte{0x01, 0x01, 0x42}).Bool(); err == nil {
		t.Fatal("non-canonical boolean accepted")
	}
}

func TestOctetStringLengths(t *testing.T) {
	for _, n := range []int{0, 1, 127, 128, 255, 256, 65535, 65536, 1 << 20} {
		payload := bytes.Repeat([]byte{0xAB}, n)
		b := NewBuilder()
		b.OctetString(payload)
		got, err := NewDecoder(b.Bytes()).OctetString()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("n=%d: payload corrupted", n)
		}
	}
}

func TestSequenceNesting(t *testing.T) {
	b := NewBuilder()
	b.Sequence(func(b *Builder) {
		b.UTF8String("outer")
		b.Sequence(func(b *Builder) {
			b.Uint64(42)
			b.Bool(true)
		})
		b.Int64(-7)
	})
	d, err := NewDecoder(b.Bytes()).Sequence()
	if err != nil {
		t.Fatal(err)
	}
	s, err := d.UTF8String()
	if err != nil || s != "outer" {
		t.Fatalf("string: %q %v", s, err)
	}
	inner, err := d.Sequence()
	if err != nil {
		t.Fatal(err)
	}
	if v, err := inner.Uint64(); err != nil || v != 42 {
		t.Fatalf("inner uint: %d %v", v, err)
	}
	if v, err := inner.Bool(); err != nil || !v {
		t.Fatalf("inner bool: %v %v", v, err)
	}
	if inner.More() {
		t.Fatal("inner decoder should be exhausted")
	}
	if v, err := d.Int64(); err != nil || v != -7 {
		t.Fatalf("outer int: %d %v", v, err)
	}
	if d.More() {
		t.Fatal("outer decoder should be exhausted")
	}
}

func TestContextTags(t *testing.T) {
	b := NewBuilder()
	b.Context(3, func(b *Builder) { b.Uint64(9) })
	d := NewDecoder(b.Bytes())
	tag, err := d.PeekTag()
	if err != nil || tag != ContextTag(3) {
		t.Fatalf("peek: %#x %v", tag, err)
	}
	cd, err := d.Context(3)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := cd.Uint64(); err != nil || v != 9 {
		t.Fatalf("context payload: %d %v", v, err)
	}
	// Wrong tag number must fail.
	b2 := NewBuilder()
	b2.Context(2, func(b *Builder) {})
	if _, err := NewDecoder(b2.Bytes()).Context(4); err == nil {
		t.Fatal("mismatched context tag accepted")
	}
}

func TestTruncatedInput(t *testing.T) {
	b := NewBuilder()
	b.OctetString(bytes.Repeat([]byte{1}, 300))
	full := b.Bytes()
	for _, cut := range []int{0, 1, 2, 3, len(full) - 1} {
		if _, err := NewDecoder(full[:cut]).OctetString(); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestTagMismatch(t *testing.T) {
	b := NewBuilder()
	b.Uint64(5)
	if _, err := NewDecoder(b.Bytes()).OctetString(); err == nil {
		t.Fatal("integer decoded as octet string")
	}
	if _, err := NewDecoder(b.Bytes()).Bool(); err == nil {
		t.Fatal("integer decoded as boolean")
	}
}

func TestUint64RejectsNegative(t *testing.T) {
	b := NewBuilder()
	b.Int64(-5)
	if _, err := NewDecoder(b.Bytes()).Uint64(); err == nil {
		t.Fatal("negative integer decoded as unsigned")
	}
}

func TestContextTagPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ContextTag(31) should panic")
		}
	}()
	ContextTag(31)
}
