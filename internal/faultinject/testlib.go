package faultinject

import (
	"math/rand"
	"path/filepath"

	"livepoints/internal/bpred"
	"livepoints/internal/livepoint"
	"livepoints/internal/lpstore"
	"livepoints/internal/prog"
	"livepoints/internal/sampling"
	"livepoints/internal/uarch"
	"livepoints/internal/warm"
)

// GenLibrary captures a small real (simulatable) shuffled v2 library
// into dir and returns its path — the same recipe the cluster tests use,
// exported so soak harnesses outside this package (and outside the
// lpcluster test package, which cannot be imported) can build a library
// that exercises the full live-point load/simulate path. Creation runs a
// complete functional pass, so callers should build once and share.
func GenLibrary(dir string) (string, error) {
	cfg := uarch.Config8Way()
	spec, err := prog.ByName("syn.gzip")
	if err != nil {
		return "", err
	}
	p := prog.Generate(spec, 0.01)
	benchLen, err := warm.BenchLength(p, p.TargetLen*4+1_000_000)
	if err != nil {
		return "", err
	}
	design, err := sampling.NewSystematic(benchLen, uarch.MeasureLen, uint64(cfg.DetailedWarm), 2, 1)
	if err != nil {
		return "", err
	}
	opts := livepoint.CreateOpts{MaxHier: cfg.Hier, Preds: []bpred.Config{cfg.BP}}
	var blobs [][]byte
	err = livepoint.Create(p, design, opts, func(lp *livepoint.LivePoint) error {
		b, _ := livepoint.Encode(lp)
		blobs = append(blobs, b)
		return nil
	})
	if err != nil {
		return "", err
	}
	rng := rand.New(rand.NewSource(0x5EED))
	rng.Shuffle(len(blobs), func(i, j int) { blobs[i], blobs[j] = blobs[j], blobs[i] })
	meta := livepoint.Meta{Benchmark: "syn.gzip", UnitLen: design.UnitLen, WarmLen: design.WarmLen, Shuffled: true}
	path := filepath.Join(dir, "lib.lplib")
	if _, err := lpstore.Write(path, meta, blobs, lpstore.WriteOpts{ShardPoints: 5}); err != nil {
		return "", err
	}
	return path, nil
}
