package faultinject

import (
	"encoding/binary"
	"fmt"
	"os"
)

// Region names a byte range of a v2 library file for targeted
// corruption. The v2 layout is magic | shard gzip streams | DER footer
// index | 16-byte trailer (index length + trailer magic); each region
// exercises a different detection path: shard bytes are covered by the
// per-shard gzip CRC, the index by DER parsing and span validation, the
// trailer by the open-time magic/length checks.
type Region int

const (
	RegionShard Region = iota
	RegionIndex
	RegionTrailer
)

func (r Region) String() string {
	switch r {
	case RegionShard:
		return "shard"
	case RegionIndex:
		return "index"
	case RegionTrailer:
		return "trailer"
	}
	return fmt.Sprintf("region(%d)", int(r))
}

const (
	v2MagicLen   = 8  // "LPLIBv2\n"
	v2TrailerLen = 16 // 8-byte LE index length + "LPIDXv2\n"
)

// CorruptFile copies the library at src to dst and XOR-flips one byte
// inside the chosen region, at an offset picked deterministically from
// seed. It returns the absolute file offset flipped. The safety property
// consumers assert is not "reading always fails" — a flip can land in
// bytes no decoder consults (e.g. a gzip header MTIME) — but that a
// corrupted library never yields successfully-decoded data that differs
// from the original: every read either errors or returns identical
// bytes.
func CorruptFile(src, dst string, region Region, seed uint64) (int64, error) {
	data, err := os.ReadFile(src)
	if err != nil {
		return 0, err
	}
	if len(data) < v2MagicLen+v2TrailerLen {
		return 0, fmt.Errorf("faultinject: %s too short (%d bytes) for a v2 library", src, len(data))
	}
	size := int64(len(data))
	idxLen := int64(binary.LittleEndian.Uint64(data[size-v2TrailerLen:]))
	idxOff := size - v2TrailerLen - idxLen
	if idxLen < 0 || idxOff < v2MagicLen {
		return 0, fmt.Errorf("faultinject: %s trailer declares index length %d beyond file bounds", src, idxLen)
	}

	var lo, hi int64 // flip lands in [lo, hi)
	switch region {
	case RegionShard:
		lo, hi = v2MagicLen, idxOff
	case RegionIndex:
		lo, hi = idxOff, size-v2TrailerLen
	case RegionTrailer:
		lo, hi = size-v2TrailerLen, size
	default:
		return 0, fmt.Errorf("faultinject: unknown region %v", region)
	}
	if hi <= lo {
		return 0, fmt.Errorf("faultinject: region %v of %s is empty", region, src)
	}
	off := lo + int64(mix64(seed)%uint64(hi-lo))
	data[off] ^= 0xFF
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		return 0, err
	}
	return off, nil
}
