//go:build !race

package faultinject

// raceEnabled reports whether the race detector is built into this
// binary. The soak scales its timing constants by it: race
// instrumentation multiplies simulation cost enough that, on small
// machines, a lease TTL tuned for uninstrumented builds drops below the
// per-lease processing time and the fleet livelocks in expiry thrash
// (every lease reassigned before its result posts) — first seen as
// matched/proxy seed 0xD002 timing out under -race on one core.
const raceEnabled = false
