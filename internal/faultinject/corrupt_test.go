package faultinject

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"livepoints/internal/asn1der"
	"livepoints/internal/livepoint"
	"livepoints/internal/lpstore"
)

// writeSynthLibrary builds a small synthetic v2 store and returns its
// path plus the blobs in read order.
func writeSynthLibrary(t *testing.T) (string, [][]byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	blobs := make([][]byte, 60)
	for i := range blobs {
		payload := make([]byte, 40+rng.Intn(100))
		rng.Read(payload)
		b := asn1der.NewBuilder()
		b.OctetString(payload)
		blobs[i] = b.Bytes()
	}
	path := filepath.Join(t.TempDir(), "synth.lplib")
	meta := livepoint.Meta{Benchmark: "syn.corrupt", UnitLen: 10, WarmLen: 20, Shuffled: true}
	if _, err := lpstore.Write(path, meta, blobs, lpstore.WriteOpts{ShardPoints: 7}); err != nil {
		t.Fatal(err)
	}
	st, err := lpstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ordered, err := st.Blobs(0, st.Count())
	if err != nil {
		t.Fatal(err)
	}
	// Detach from the store's shard buffers before closing it.
	out := make([][]byte, len(ordered))
	for i, b := range ordered {
		out[i] = append([]byte(nil), b...)
	}
	return path, out
}

// readAll opens a (possibly corrupted) library and reads every blob.
func readAll(path string) ([][]byte, error) {
	st, err := lpstore.Open(path)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	blobs, err := st.Blobs(0, st.Count())
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(blobs))
	for i, b := range blobs {
		out[i] = append([]byte(nil), b...)
	}
	return out, nil
}

// TestCorruptFileNeverSilent is the safety property of the store's
// integrity layers: a single flipped byte anywhere in the file must
// never produce successfully-decoded data that differs from the
// original. An error is fine (detected); identical output is fine (the
// flip hit a byte no decoder consults, like a gzip MTIME field);
// different output is the one forbidden outcome.
func TestCorruptFileNeverSilent(t *testing.T) {
	src, want := writeSynthLibrary(t)
	dir := t.TempDir()
	detected := map[Region]int{}
	for _, region := range []Region{RegionShard, RegionIndex, RegionTrailer} {
		for seed := uint64(0); seed < 24; seed++ {
			dst := filepath.Join(dir, fmt.Sprintf("%v-%d.lplib", region, seed))
			off, err := CorruptFile(src, dst, region, seed)
			if err != nil {
				t.Fatalf("region %v seed %d: %v", region, seed, err)
			}
			got, err := readAll(dst)
			if err != nil {
				detected[region]++
				continue
			}
			if len(got) != len(want) {
				t.Fatalf("region %v seed %d (offset %d): read %d blobs, want %d — silent corruption",
					region, seed, off, len(got), len(want))
			}
			for i := range got {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("region %v seed %d (offset %d): blob %d silently corrupted",
						region, seed, off, i)
				}
			}
		}
	}
	// The corruptor must actually be exercising the error paths, not
	// landing exclusively on dead bytes.
	for _, region := range []Region{RegionShard, RegionIndex, RegionTrailer} {
		if detected[region] == 0 {
			t.Errorf("region %v: no seed of 24 produced a detected error; corruptor is not reaching live bytes", region)
		}
	}
}

// TestCorruptFilePinnedSeeds pins one known-detected seed per region so
// the decode error paths stay exercised deterministically even if the
// sweep above ever shrinks.
func TestCorruptFilePinnedSeeds(t *testing.T) {
	src, _ := writeSynthLibrary(t)
	dir := t.TempDir()
	for _, tc := range []struct {
		region Region
		seed   uint64
	}{
		{RegionShard, 0},
		{RegionIndex, 0},
		{RegionTrailer, 0},
	} {
		dst := filepath.Join(dir, fmt.Sprintf("pin-%v.lplib", tc.region))
		if _, err := CorruptFile(src, dst, tc.region, tc.seed); err != nil {
			t.Fatalf("region %v: %v", tc.region, err)
		}
		if _, err := readAll(dst); err == nil {
			t.Errorf("region %v seed %d: corruption went undetected (update the pinned seed if the flip landed on a dead byte)",
				tc.region, tc.seed)
		}
	}
}
