// Package faultinject is a deterministic, seed-driven fault-injection
// layer for the cluster path (coordinator + workers + serving). The
// paper's whole argument rests on the estimate staying valid while the
// sample is folded out of order, in parallel, and under early stopping
// (§6.1) — so a dropped, duplicated, delayed, truncated, or corrupted
// message anywhere between a worker and the coordinator must never
// double-fold or silently lose an observation.
//
// The package has three parts:
//
//   - a Schedule: a seeded, per-request-class fault decision stream. The
//     same seed always yields the same fault sequence for the same class,
//     independent of goroutine interleaving, so any failure reproduces
//     from its seed alone.
//   - two injection points driven by one Schedule: Transport (a
//     client-side http.RoundTripper spliced under lpserve.Client via
//     SetTransport) and Proxy (a server-side handler wrapper mounted in
//     front of an lpserve mux). Both can drop connections, deliver a
//     request and then sever the reply, duplicate POST deliveries, delay
//     responses past lease TTLs, answer 5xx, truncate bodies mid-stream,
//     and corrupt response bytes.
//   - CorruptFile: a store-level corruptor flipping bytes in a library
//     file's shard gzip streams, footer index, or trailer, to exercise
//     the open/decode error paths.
//
// Soak (soak.go) ties them together: it runs full cluster rounds under
// many seeded schedules and asserts the three safety invariants after
// every round — bit-equal estimate vs. an undisturbed local run, folded
// observations == positions done, and no leaked goroutines.
package faultinject

import (
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
	"time"
)

// Kind is one fault type a schedule can inject into an HTTP exchange.
type Kind int

const (
	// None passes the exchange through untouched.
	None Kind = iota
	// Drop severs the exchange before the server sees the request.
	Drop
	// DropAfter lets the server process the request, then severs the
	// reply — the client cannot tell this from Drop, so its retry
	// redelivers a request the server already handled. This is the fault
	// that flushes out missing idempotency.
	DropAfter
	// Dup delivers the request twice back to back and returns the first
	// response; the second delivery is the server's problem.
	Dup
	// Delay holds a completed response for Fault.Delay — long enough,
	// in the soak, to blow past a lease TTL.
	Delay
	// Err500 answers 503 without consulting the server.
	Err500
	// Truncate delivers only a prefix of the response body, then severs.
	Truncate
	// Corrupt damages the response body: JSON bodies get a poison first
	// byte (0x00 — never valid JSON, so corruption is always detectable
	// rather than a silent field flip), binary bodies get one byte
	// XOR-flipped at a schedule-chosen offset.
	Corrupt
)

var kindNames = [...]string{"none", "drop", "drop-after", "dup", "delay", "err500", "truncate", "corrupt"}

func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return kindNames[k]
}

// Fault is one schedule decision for one exchange.
type Fault struct {
	Kind  Kind
	Delay time.Duration // Delay faults: how long to hold the response
	Rand  uint64        // deterministic randomness for offset choices
}

// Rates are per-class fault probabilities (each in [0,1]; their sum must
// not exceed 1 — the remainder is the no-fault probability).
type Rates struct {
	Drop      float64
	DropAfter float64
	Dup       float64
	Delay     float64
	Err500    float64
	Truncate  float64
	Corrupt   float64

	// DelayFor is the hold applied by Delay faults in this class.
	DelayFor time.Duration
}

// Request classes. Faults are scheduled per class so a seed exercises
// every endpoint deterministically regardless of how many requests other
// endpoints absorbed first.
const (
	ClassLeases     = "leases"      // POST /v1/leases
	ClassResults    = "results"     // POST /v1/results
	ClassRun        = "run"         // GET /v1/run
	ClassPoints     = "points"      // GET /v1/points
	ClassStat       = "stat"        // GET /v1/stat
	ClassShards     = "shards"      // GET /v1/shards
	ClassShardData  = "shard-data"  // GET /v1/shards/{id}
	ClassShardIndex = "shard-index" // GET /v1/shards/{id}/index
	ClassOther      = "other"
)

// ClassOf maps a request path to its schedule class.
func ClassOf(path string) string {
	switch {
	case path == "/v1/leases":
		return ClassLeases
	case path == "/v1/results":
		return ClassResults
	case path == "/v1/run":
		return ClassRun
	case path == "/v1/points":
		return ClassPoints
	case path == "/v1/stat":
		return ClassStat
	case path == "/v1/shards":
		return ClassShards
	case strings.HasPrefix(path, "/v1/shards/") && strings.HasSuffix(path, "/index"):
		return ClassShardIndex
	case strings.HasPrefix(path, "/v1/shards/"):
		return ClassShardData
	default:
		return ClassOther
	}
}

// DefaultRates is the soak's standard fault mix: every failure family on
// every cluster endpoint, at rates low enough that retry budgets converge
// and a run still finishes. delay is the hold for Delay faults — pick it
// longer than the coordinator's lease TTL so delayed fetches turn into
// expired leases. /v1/stat and /v1/shards are left fault-free: workers
// never call them, and faulting the harness's own setup requests would
// only abort runs before any invariant is exercised.
func DefaultRates(delay time.Duration) map[string]Rates {
	return map[string]Rates{
		ClassLeases:     {Drop: 0.04, Err500: 0.04, Truncate: 0.015, Corrupt: 0.015},
		ClassResults:    {Drop: 0.04, DropAfter: 0.05, Dup: 0.05, Delay: 0.03, Err500: 0.04, DelayFor: delay},
		ClassRun:        {Drop: 0.04, Err500: 0.04, Corrupt: 0.015},
		ClassPoints:     {Drop: 0.03, Delay: 0.04, Err500: 0.03, Truncate: 0.05, Corrupt: 0.05, DelayFor: delay},
		ClassShardData:  {Drop: 0.03, Delay: 0.04, Truncate: 0.05, Corrupt: 0.05, DelayFor: delay},
		ClassShardIndex: {Drop: 0.03, Err500: 0.03, Corrupt: 0.03},
	}
}

// Schedule is a deterministic fault decision stream: decision n for class
// c is a pure function of (seed, c, n), so concurrent requests to
// different endpoints cannot perturb each other's sequences and a failing
// run replays from its seed.
type Schedule struct {
	seed  uint64
	rates map[string]Rates

	mu       sync.Mutex
	counts   map[string]uint64
	injected map[string]uint64 // "class/kind" -> count, for reports
	total    uint64
}

// NewSchedule builds a schedule from a seed and per-class rates (classes
// absent from the map fall back to rates[""], which defaults to
// fault-free).
func NewSchedule(seed uint64, rates map[string]Rates) *Schedule {
	return &Schedule{
		seed:     seed,
		rates:    rates,
		counts:   make(map[string]uint64),
		injected: make(map[string]uint64),
	}
}

// Seed returns the schedule's seed.
func (s *Schedule) Seed() uint64 { return s.seed }

// Next returns the fault decision for the class's next exchange.
func (s *Schedule) Next(class string) Fault {
	r, ok := s.rates[class]
	if !ok {
		r = s.rates[""]
	}
	s.mu.Lock()
	n := s.counts[class]
	s.counts[class] = n + 1
	s.mu.Unlock()

	draw := mix64(s.seed ^ classHash(class) ^ n*0x9E3779B97F4A7C15)
	u := float64(draw>>11) / (1 << 53)
	f := Fault{Kind: None, Rand: mix64(draw)}
	for _, c := range []struct {
		k Kind
		p float64
	}{
		{Drop, r.Drop}, {DropAfter, r.DropAfter}, {Dup, r.Dup}, {Delay, r.Delay},
		{Err500, r.Err500}, {Truncate, r.Truncate}, {Corrupt, r.Corrupt},
	} {
		if u < c.p {
			f.Kind = c.k
			break
		}
		u -= c.p
	}
	if f.Kind == Delay {
		f.Delay = r.DelayFor
		if f.Delay <= 0 {
			f.Delay = 100 * time.Millisecond
		}
	}
	if f.Kind != None {
		s.mu.Lock()
		s.injected[class+"/"+f.Kind.String()]++
		s.total++
		s.mu.Unlock()
	}
	return f
}

// Total returns how many faults the schedule has injected so far.
func (s *Schedule) Total() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Injected returns a copy of the per-class/kind injection counts.
func (s *Schedule) Injected() map[string]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]uint64, len(s.injected))
	for k, v := range s.injected {
		out[k] = v
	}
	return out
}

// mix64 is the splitmix64 finalizer: a bijective avalanche over uint64,
// the standard cheap way to turn structured inputs into uniform draws.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

func classHash(class string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(class))
	return h.Sum64()
}
