package faultinject

import (
	"testing"
	"time"
)

// TestScheduleDeterministic: decision n for a class must be a pure
// function of (seed, class, n) — the whole reproducibility story rests
// on this.
func TestScheduleDeterministic(t *testing.T) {
	rates := DefaultRates(100 * time.Millisecond)
	a := NewSchedule(42, rates)
	b := NewSchedule(42, rates)
	classes := []string{ClassLeases, ClassResults, ClassPoints, ClassShardData}
	for i := 0; i < 500; i++ {
		for _, c := range classes {
			fa, fb := a.Next(c), b.Next(c)
			if fa != fb {
				t.Fatalf("draw %d class %s diverged: %+v vs %+v", i, c, fa, fb)
			}
		}
	}
	if a.Total() != b.Total() {
		t.Fatalf("totals diverged: %d vs %d", a.Total(), b.Total())
	}
	if a.Total() == 0 {
		t.Fatal("500 draws per class injected nothing; rates are dead")
	}
}

// TestScheduleClassIsolation: draws for one class must not depend on how
// many requests other classes absorbed first (concurrent endpoints would
// otherwise perturb each other's sequences).
func TestScheduleClassIsolation(t *testing.T) {
	rates := DefaultRates(100 * time.Millisecond)
	a := NewSchedule(7, rates)
	b := NewSchedule(7, rates)
	// Burn 100 draws on another class in a only.
	for i := 0; i < 100; i++ {
		a.Next(ClassLeases)
	}
	for i := 0; i < 200; i++ {
		fa, fb := a.Next(ClassPoints), b.Next(ClassPoints)
		if fa != fb {
			t.Fatalf("points draw %d perturbed by leases traffic: %+v vs %+v", i, fa, fb)
		}
	}
}

func TestScheduleSeedsDiffer(t *testing.T) {
	rates := DefaultRates(100 * time.Millisecond)
	a := NewSchedule(1, rates)
	b := NewSchedule(2, rates)
	same := 0
	const n = 400
	for i := 0; i < n; i++ {
		if a.Next(ClassResults) == b.Next(ClassResults) {
			same++
		}
	}
	if same == n {
		t.Fatal("two seeds produced identical 400-draw schedules")
	}
}

func TestScheduleRatesRespected(t *testing.T) {
	// A rate-1.0 class must always fault; an absent class never.
	s := NewSchedule(9, map[string]Rates{ClassResults: {Dup: 1}})
	for i := 0; i < 50; i++ {
		if f := s.Next(ClassResults); f.Kind != Dup {
			t.Fatalf("draw %d: %v, want dup", i, f.Kind)
		}
		if f := s.Next(ClassLeases); f.Kind != None {
			t.Fatalf("unconfigured class faulted: %v", f.Kind)
		}
	}
}

func TestClassOf(t *testing.T) {
	cases := map[string]string{
		"/v1/leases":          ClassLeases,
		"/v1/results":         ClassResults,
		"/v1/run":             ClassRun,
		"/v1/points":          ClassPoints,
		"/v1/stat":            ClassStat,
		"/v1/shards":          ClassShards,
		"/v1/shards/3":        ClassShardData,
		"/v1/shards/3/index":  ClassShardIndex,
		"/v1/shards/12/index": ClassShardIndex,
		"/metrics":            ClassOther,
	}
	for path, want := range cases {
		if got := ClassOf(path); got != want {
			t.Errorf("ClassOf(%q) = %q, want %q", path, got, want)
		}
	}
}

func TestCorruptBody(t *testing.T) {
	jsonBody := []byte(`{"ok":true}`)
	out := CorruptBody("application/json", jsonBody, 5)
	if out[0] != 0x00 {
		t.Fatalf("JSON corruption must poison byte 0, got %#x", out[0])
	}
	if jsonBody[0] != '{' {
		t.Fatal("CorruptBody mutated its input")
	}
	bin := []byte{1, 2, 3, 4}
	out = CorruptBody("application/octet-stream", bin, 2)
	diff := 0
	for i := range bin {
		if bin[i] != out[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("binary corruption flipped %d bytes, want exactly 1", diff)
	}
	if got := CorruptBody("application/json", nil, 0); len(got) != 0 {
		t.Fatalf("empty body corrupted into %v", got)
	}
}
