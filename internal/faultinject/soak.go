package faultinject

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"time"

	"livepoints/internal/livepoint"
	"livepoints/internal/lpcluster"
	"livepoints/internal/lpserve"
	"livepoints/internal/lpstore"
	"livepoints/internal/obs"
	"livepoints/internal/sampling"
)

// SoakOptions configures one Soak sweep.
type SoakOptions struct {
	// Library is the path of the v2 library file to run over (required;
	// GenLibrary builds a suitable one).
	Library string
	// Seeds are the fault-schedule seeds to sweep. Each seed is one full
	// cluster run with its own coordinator, server, and worker fleet.
	Seeds []uint64
	// Mode is lpcluster.ModeAbsolute (default) or lpcluster.ModeMatched.
	Mode string
	// RelErr enables §6.1 online stopping; 0 runs the whole library.
	// Bit-equality vs. the local run is only asserted for whole-library
	// runs — a stopping run's stop point legitimately depends on fold
	// order.
	RelErr float64
	// Proxy injects faults server-side (the Proxy handler) instead of
	// client-side (the Transport RoundTripper).
	Proxy bool
	// Workers is the fleet size per run (default 3).
	Workers int
	// MaxWorkerRestarts bounds how many fatally-dead workers are
	// replaced per run (default 16). Fatal deaths are expected: corrupt
	// or truncated control-plane JSON is a protocol error, and protocol
	// errors kill a worker by design.
	MaxWorkerRestarts int
	// LeaseTTL is the coordinator lease TTL (default 200ms — short, so
	// Delay faults convert into expiry/reassignment, the path under
	// test).
	LeaseTTL time.Duration
	// RunTimeout bounds one seed's run (default 2 minutes).
	RunTimeout time.Duration
	// Rates overrides the fault mix (default DefaultRates(LeaseTTL*3/2)).
	Rates map[string]Rates
	// Log, when set, receives one line per seed.
	Log *obs.Logger
}

// SeedResult is one seed's outcome.
type SeedResult struct {
	Seed     uint64
	Faults   uint64 // faults the schedule injected during the run
	Restarts int    // fatally-dead workers replaced
	Expired  int    // leases lost to expiry/reassignment, summed over workers
	Err      error  // nil iff every invariant held
}

// Report aggregates a sweep.
type Report struct {
	Seeds    []SeedResult
	Faults   uint64
	Restarts int
	Failed   int
}

// baseline is the undisturbed local reference a cluster run must match.
type baseline struct {
	abs     *livepoint.RunResult
	matched *livepoint.MatchedResult
}

// Soak sweeps the seeds, running one full cluster round per seed under
// its fault schedule, and checks the three safety invariants after every
// round:
//
//  1. whole-library runs produce an estimate bit-equal to the
//     undisturbed local fold (livepoint.RunFile / RunMatchedFile) — no
//     fault may change the answer, only the turnaround;
//  2. observations folded == positions done — nothing double-folded,
//     nothing lost;
//  3. every goroutine the run started is gone afterwards.
//
// It returns an error (alongside the full report) if any seed violated
// an invariant or failed to complete.
func Soak(ctx context.Context, opt SoakOptions) (*Report, error) {
	if opt.Library == "" {
		return nil, fmt.Errorf("faultinject: SoakOptions.Library is required")
	}
	if opt.Workers <= 0 {
		opt.Workers = 3
	}
	if opt.MaxWorkerRestarts <= 0 {
		opt.MaxWorkerRestarts = 16
	}
	if opt.LeaseTTL <= 0 {
		opt.LeaseTTL = 200 * time.Millisecond
		if raceEnabled {
			// Race instrumentation inflates per-lease processing past an
			// uninstrumented-build TTL on small machines; a TTL below the
			// processing time livelocks the fleet in expiry thrash (see
			// race_off.go). Delay faults scale with the TTL, so the
			// expiry/reassignment path stays exercised.
			opt.LeaseTTL = time.Second
		}
	}
	if opt.RunTimeout <= 0 {
		opt.RunTimeout = 2 * time.Minute
		if raceEnabled {
			opt.RunTimeout = 8 * time.Minute
		}
	}
	if opt.Rates == nil {
		opt.Rates = DefaultRates(opt.LeaseTTL * 3 / 2)
	}

	bl, err := localBaseline(opt)
	if err != nil {
		return nil, fmt.Errorf("faultinject: computing undisturbed baseline: %w", err)
	}

	rep := &Report{}
	for _, seed := range opt.Seeds {
		sr := runSeed(ctx, opt, bl, seed)
		rep.Seeds = append(rep.Seeds, sr)
		rep.Faults += sr.Faults
		rep.Restarts += sr.Restarts
		if sr.Err != nil {
			rep.Failed++
		}
		opt.Log.Info("soak seed done", "seed", seed, "faults", sr.Faults,
			"restarts", sr.Restarts, "expired", sr.Expired, "err", sr.Err)
	}
	if rep.Failed > 0 {
		for _, sr := range rep.Seeds {
			if sr.Err != nil {
				return rep, fmt.Errorf("faultinject: %d/%d seeds failed; first: seed %#x: %w",
					rep.Failed, len(rep.Seeds), sr.Seed, sr.Err)
			}
		}
	}
	return rep, nil
}

// spec builds the cluster run spec for the sweep's mode.
func (o *SoakOptions) spec() lpcluster.RunSpec {
	spec := lpcluster.RunSpec{RelErr: o.RelErr}
	if o.Mode == lpcluster.ModeMatched {
		spec.Mode = lpcluster.ModeMatched
		spec.MemLat = 200
	}
	return spec
}

// localBaseline computes the undisturbed single-process reference.
func localBaseline(opt SoakOptions) (*baseline, error) {
	spec := opt.spec()
	base, exp, err := spec.Configs()
	if err != nil {
		return nil, err
	}
	bl := &baseline{}
	if spec.Mode == lpcluster.ModeMatched {
		bl.matched, err = livepoint.RunMatchedFile(opt.Library,
			livepoint.MatchedOpts{Base: base, Exp: exp, Z: sampling.Z997, RelErr: opt.RelErr})
		return bl, err
	}
	bl.abs, err = livepoint.RunFile(opt.Library, livepoint.RunOpts{Cfg: base, RelErr: opt.RelErr})
	return bl, err
}

// runSeed runs one seeded cluster round and checks the invariants.
func runSeed(ctx context.Context, opt SoakOptions, bl *baseline, seed uint64) SeedResult {
	sr := SeedResult{Seed: seed}
	gBase := runtime.NumGoroutine()

	ctx, cancel := context.WithTimeout(ctx, opt.RunTimeout)
	defer cancel()

	st, err := lpstore.Open(opt.Library)
	if err != nil {
		sr.Err = err
		return sr
	}
	defer st.Close()

	reg := obs.NewRegistry()
	coord, err := lpcluster.NewCoordinator(st, opt.spec(),
		lpcluster.Options{LeaseTTL: opt.LeaseTTL, Metrics: reg})
	if err != nil {
		sr.Err = err
		return sr
	}
	defer coord.Close()
	srv := lpserve.NewServerWithMetrics(st, obs.NewRegistry())
	coord.Mount(srv)

	sched := NewSchedule(seed, opt.Rates)
	var handler http.Handler = srv.Handler()
	if opt.Proxy {
		handler = &Proxy{Inner: handler, Sched: sched}
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()

	cl := lpserve.New(ts.URL)
	cl.Timeout = 2 * time.Second
	if raceEnabled {
		cl.Timeout = 10 * time.Second // must outlast race-inflated shard fetches
	}
	cl.Retry = lpserve.RetryPolicy{Max: 4, Base: 2 * time.Millisecond, Cap: 25 * time.Millisecond}
	cl.Metrics = obs.NewRegistry()
	tr := &http.Transport{}
	if opt.Proxy {
		cl.SetTransport(tr)
	} else {
		cl.SetTransport(&Transport{Base: tr, Sched: sched})
	}
	defer cl.CloseIdle()

	sr.Err = superviseWorkers(ctx, opt, coord, cl, &sr)
	sr.Faults = sched.Total()
	if sr.Err == nil {
		sr.Err = checkInvariants(opt, bl, coord, reg, st)
	}

	// Teardown before the leak check: server conns, client keep-alives,
	// store handles. The deferred closes above are idempotent.
	ts.Close()
	cl.CloseIdle()
	if leakErr := settleGoroutines(gBase, 3*time.Second); leakErr != nil && sr.Err == nil {
		sr.Err = leakErr
	}
	return sr
}

// superviseWorkers drives the fleet to run completion, replacing workers
// that die fatally (protocol errors are fatal by design) up to the
// restart budget.
func superviseWorkers(ctx context.Context, opt SoakOptions, coord *lpcluster.Coordinator, cl *lpserve.Client, sr *SeedResult) error {
	errCh := make(chan error, opt.Workers+opt.MaxWorkerRestarts)
	workers := make(chan *lpcluster.Worker, opt.Workers+opt.MaxWorkerRestarts)
	running := 0
	spawn := func(id string) {
		w := lpcluster.NewWorker(id, cl)
		w.ReconnectBase = 2 * time.Millisecond
		w.ReconnectCap = 25 * time.Millisecond
		running++
		go func() {
			err := w.Run(ctx)
			workers <- w
			errCh <- err
		}()
	}
	for i := 0; i < opt.Workers; i++ {
		spawn(fmt.Sprintf("w%d", i))
	}
	var lastErr error
	for running > 0 {
		err := <-errCh
		w := <-workers
		running--
		sr.Expired += w.Expired
		if err == nil {
			continue
		}
		if ctx.Err() != nil {
			return fmt.Errorf("run timed out: %w", ctx.Err())
		}
		if _, finished := coord.Final(); finished {
			continue // late fatal after the run sealed: harmless
		}
		lastErr = err
		if sr.Restarts < opt.MaxWorkerRestarts {
			sr.Restarts++
			spawn(fmt.Sprintf("w-r%d", sr.Restarts))
		}
	}
	if _, finished := coord.Final(); !finished {
		return fmt.Errorf("run did not finish (restart budget %d exhausted; last worker error: %w)",
			opt.MaxWorkerRestarts, lastErr)
	}
	return nil
}

// checkInvariants asserts the estimate and accounting invariants after a
// finished run.
func checkInvariants(opt SoakOptions, bl *baseline, coord *lpcluster.Coordinator, reg *obs.Registry, st *lpstore.Store) error {
	res, ok := coord.Final()
	if !ok {
		return fmt.Errorf("coordinator not finished")
	}

	// Invariant 2: observations folded == positions done. A double-fold
	// or a lost observation shows up here even when the estimate happens
	// to survive numerically.
	folded := reg.Counter("lpcluster_points_folded_total", "").Value()
	done := coord.State().Done
	if folded != uint64(done) {
		return fmt.Errorf("folded %d observations for %d done positions (double-fold or loss)", folded, done)
	}
	if folded != uint64(res.Processed) {
		return fmt.Errorf("folded %d but final result processed %d", folded, res.Processed)
	}

	// Invariant 1: bit-equality vs. the undisturbed local run
	// (whole-library runs only; a stopping run's stop point depends on
	// fold order, so it gets the statistical contract instead).
	if opt.RelErr > 0 {
		if res.Stopped {
			if opt.Mode == lpcluster.ModeMatched {
				if !res.MP.DeltaSatisfied(sampling.Z997, opt.RelErr) && !res.StoppedNoImpact {
					return fmt.Errorf("stopped without satisfying the target: n=%d", res.MP.N())
				}
			} else if !res.Est.Satisfied(sampling.Z997, opt.RelErr) {
				return fmt.Errorf("stopped without satisfying the target: n=%d relCI=%.4f",
					res.Est.N(), res.Est.RelCI(sampling.Z997))
			}
			if res.Processed < sampling.MinSampleSize {
				return fmt.Errorf("stopped below the CLT floor: n=%d", res.Processed)
			}
		}
		return nil
	}
	if res.Processed != st.Count() {
		return fmt.Errorf("whole-library run processed %d of %d points", res.Processed, st.Count())
	}
	if opt.Mode == lpcluster.ModeMatched {
		if !reflect.DeepEqual(res.MP, bl.matched.MP) {
			return fmt.Errorf("matched pair not bit-equal to local: Δ %.12f vs %.12f",
				res.MP.MeanDelta(), bl.matched.MP.MeanDelta())
		}
		if res.Processed != bl.matched.Processed {
			return fmt.Errorf("processed %d pairs, local %d", res.Processed, bl.matched.Processed)
		}
		return nil
	}
	if !reflect.DeepEqual(res.Est, bl.abs.Est) {
		return fmt.Errorf("estimate not bit-equal to local: %.12f (n=%d) vs %.12f (n=%d)",
			res.Est.Mean(), res.Est.N(), bl.abs.Est.Mean(), bl.abs.Est.N())
	}
	if res.UnknownFetches != bl.abs.UnknownFetches || res.UnknownLoads != bl.abs.UnknownLoads ||
		res.CaptureErrors != bl.abs.CaptureErrors {
		return fmt.Errorf("wrong-path counters diverged: %d/%d/%d vs %d/%d/%d",
			res.UnknownFetches, res.UnknownLoads, res.CaptureErrors,
			bl.abs.UnknownFetches, bl.abs.UnknownLoads, bl.abs.CaptureErrors)
	}
	return nil
}

// settleGoroutines waits for the goroutine count to return to the
// pre-run baseline. Invariant 3: a fault must never strand a goroutine —
// a leaked worker or connection per fault would sink a long-lived fleet.
func settleGoroutines(base int, within time.Duration) error {
	deadline := time.Now().Add(within)
	n := runtime.NumGoroutine()
	for n > base && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	if n > base {
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		return fmt.Errorf("goroutine leak: %d before run, %d after settle:\n%s", base, n, buf)
	}
	return nil
}
