package faultinject

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"time"
)

// Proxy is the server-side injection point: an http.Handler that runs
// the inner handler against a recorder, then mangles the captured
// response per the schedule. Mount it in front of an lpserve mux (e.g.
// httptest.NewServer(&Proxy{Inner: srv.Handler(), Sched: sched})) to
// model a damaged server or an interposed middlebox — the complement of
// Transport, which models the client's side of the wire. Severed
// exchanges use panic(http.ErrAbortHandler), the sanctioned way for a
// handler to break its connection mid-response.
type Proxy struct {
	Inner http.Handler
	// Sched decides the fault per exchange. Nil proxies faithfully.
	Sched *Schedule
}

func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if p.Sched == nil {
		p.Inner.ServeHTTP(w, r)
		return
	}
	f := p.Sched.Next(ClassOf(r.URL.Path))
	switch f.Kind {
	case Drop:
		panic(http.ErrAbortHandler)
	case Err500:
		http.Error(w, "faultinject: injected 503", http.StatusServiceUnavailable)
		return
	}

	// Buffer the request body so Dup can replay the identical request.
	var reqBody []byte
	if f.Kind == Dup && r.Body != nil {
		reqBody, _ = io.ReadAll(r.Body)
		r.Body.Close()
		r.Body = io.NopCloser(bytes.NewReader(reqBody))
	}

	rec := httptest.NewRecorder()
	p.Inner.ServeHTTP(rec, r)

	if f.Kind == Dup {
		r2 := r.Clone(r.Context())
		r2.Body = io.NopCloser(bytes.NewReader(reqBody))
		// The duplicate's outcome is discarded: the first response is
		// what the client sees, the redelivery is the server's problem.
		p.Inner.ServeHTTP(httptest.NewRecorder(), r2)
	}

	body := rec.Body.Bytes()
	switch f.Kind {
	case DropAfter:
		// Inner ran to completion; the reply dies here.
		panic(http.ErrAbortHandler)
	case Delay:
		select {
		case <-r.Context().Done():
			return
		case <-time.After(f.Delay):
		}
	case Truncate:
		// Advertise the full length, send half, sever: the client's
		// transport reports the missing remainder as an unexpected EOF.
		// The explicit flush matters — a panicking handler's buffered,
		// unflushed response is discarded wholesale, which would turn
		// this into a pre-header Drop instead of a mid-body cut.
		copyHeader(w.Header(), rec.Header())
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		w.WriteHeader(rec.Code)
		w.Write(body[:len(body)/2])
		if fl, ok := w.(http.Flusher); ok {
			fl.Flush()
		}
		panic(http.ErrAbortHandler)
	case Corrupt:
		body = CorruptBody(rec.Header().Get("Content-Type"), body, f.Rand)
	}

	copyHeader(w.Header(), rec.Header())
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(rec.Code)
	w.Write(body)
}

func copyHeader(dst, src http.Header) {
	for k, vs := range src {
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}
