//go:build race

package faultinject

// See race_off.go.
const raceEnabled = true
