package faultinject

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"
)

const testBody = "0123456789abcdef0123456789abcdef"

// backend is a counting origin server for injection tests.
func backend(hits *atomic.Int64) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if r.Body != nil {
			io.Copy(io.Discard, r.Body)
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.Itoa(len(testBody)))
		io.WriteString(w, testBody)
	})
}

// always returns a schedule injecting kind on every exchange.
func always(k Kind) *Schedule {
	r := Rates{DelayFor: 50 * time.Millisecond}
	switch k {
	case Drop:
		r.Drop = 1
	case DropAfter:
		r.DropAfter = 1
	case Dup:
		r.Dup = 1
	case Delay:
		r.Delay = 1
	case Err500:
		r.Err500 = 1
	case Truncate:
		r.Truncate = 1
	case Corrupt:
		r.Corrupt = 1
	}
	return NewSchedule(1, map[string]Rates{"": r})
}

// viaTransport issues one POST through a fault-injecting Transport.
func viaTransport(t *testing.T, k Kind) (*http.Response, error, int64) {
	t.Helper()
	var hits atomic.Int64
	ts := httptest.NewServer(backend(&hits))
	t.Cleanup(ts.Close)
	hc := &http.Client{Transport: &Transport{Sched: always(k)}}
	t.Cleanup(hc.CloseIdleConnections)
	resp, err := hc.Post(ts.URL+"/v1/results", "application/json", bytes.NewReader([]byte(`{}`)))
	return resp, err, hits.Load()
}

func TestTransportDrop(t *testing.T) {
	resp, err, hits := viaTransport(t, Drop)
	if err == nil {
		resp.Body.Close()
		t.Fatal("dropped exchange returned a response")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("error does not unwrap to ErrInjected: %v", err)
	}
	if hits != 0 {
		t.Fatalf("Drop reached the server %d times; it must never", hits)
	}
}

func TestTransportDropAfter(t *testing.T) {
	resp, err, hits := viaTransport(t, DropAfter)
	if err == nil {
		resp.Body.Close()
		t.Fatal("severed reply returned a response")
	}
	if hits != 1 {
		t.Fatalf("DropAfter must deliver exactly once, server saw %d", hits)
	}
}

func TestTransportDup(t *testing.T) {
	resp, err, hits := viaTransport(t, Dup)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if hits != 2 {
		t.Fatalf("Dup must deliver exactly twice, server saw %d", hits)
	}
	body, _ := io.ReadAll(resp.Body)
	if string(body) != testBody {
		t.Fatalf("Dup damaged the returned response: %q", body)
	}
}

func TestTransportErr500(t *testing.T) {
	resp, err, hits := viaTransport(t, Err500)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if hits != 0 {
		t.Fatalf("synthesized 503 reached the server %d times", hits)
	}
}

func TestTransportTruncate(t *testing.T) {
	resp, err, _ := viaTransport(t, Truncate)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated body must end in ErrUnexpectedEOF, got %v", err)
	}
	if len(body) != len(testBody)/2 {
		t.Fatalf("got %d bytes before the cut, want %d", len(body), len(testBody)/2)
	}
}

func TestTransportCorrupt(t *testing.T) {
	resp, err, _ := viaTransport(t, Corrupt)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range body {
		if body[i] != testBody[i] {
			diff++
		}
	}
	if len(body) != len(testBody) || diff != 1 {
		t.Fatalf("corruption changed %d bytes of %d, want exactly 1 of %d", diff, len(body), len(testBody))
	}
}

func TestTransportDelay(t *testing.T) {
	t0 := time.Now()
	resp, err, _ := viaTransport(t, Delay)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := time.Since(t0); d < 50*time.Millisecond {
		t.Fatalf("delayed response arrived after %v, want >= 50ms", d)
	}
}

// viaProxy issues one POST against a Proxy-wrapped backend.
func viaProxy(t *testing.T, k Kind) (*http.Response, error, int64) {
	t.Helper()
	var hits atomic.Int64
	ts := httptest.NewServer(&Proxy{Inner: backend(&hits), Sched: always(k)})
	t.Cleanup(ts.Close)
	hc := &http.Client{}
	t.Cleanup(hc.CloseIdleConnections)
	resp, err := hc.Post(ts.URL+"/v1/results", "application/json", bytes.NewReader([]byte(`{}`)))
	return resp, err, hits.Load()
}

func TestProxyDrop(t *testing.T) {
	resp, err, hits := viaProxy(t, Drop)
	if err == nil {
		resp.Body.Close()
		t.Fatal("dropped exchange returned a response")
	}
	if hits != 0 {
		t.Fatalf("Drop reached the inner handler %d times", hits)
	}
}

func TestProxyDropAfter(t *testing.T) {
	resp, err, hits := viaProxy(t, DropAfter)
	if err == nil {
		resp.Body.Close()
		t.Fatal("severed reply returned a response")
	}
	if hits != 1 {
		t.Fatalf("DropAfter must run the inner handler exactly once, saw %d", hits)
	}
}

func TestProxyDup(t *testing.T) {
	resp, err, hits := viaProxy(t, Dup)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if hits != 2 {
		t.Fatalf("Dup must run the inner handler exactly twice, saw %d", hits)
	}
	body, _ := io.ReadAll(resp.Body)
	if string(body) != testBody {
		t.Fatalf("Dup damaged the returned response: %q", body)
	}
}

func TestProxyTruncate(t *testing.T) {
	resp, err, _ := viaProxy(t, Truncate)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated body must end in ErrUnexpectedEOF, got %v (%d bytes)", err, len(body))
	}
	if len(body) != len(testBody)/2 {
		t.Fatalf("got %d bytes before the cut, want %d", len(body), len(testBody)/2)
	}
}

func TestProxyCorrupt(t *testing.T) {
	resp, err, _ := viaProxy(t, Corrupt)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range body {
		if body[i] != testBody[i] {
			diff++
		}
	}
	if len(body) != len(testBody) || diff != 1 {
		t.Fatalf("corruption changed %d bytes of %d, want exactly 1", diff, len(body))
	}
}

func TestProxyErr500(t *testing.T) {
	resp, err, hits := viaProxy(t, Err500)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if hits != 0 {
		t.Fatalf("injected 503 reached the inner handler %d times", hits)
	}
}
