package faultinject

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// ErrInjected is the root of every transport-level failure this package
// fabricates, so tests can tell an injected fault from a real one.
var ErrInjected = errors.New("faultinject: injected fault")

// Transport is a fault-injecting http.RoundTripper. Splice it under an
// lpserve.Client with SetTransport and every exchange consults the
// schedule before (Drop, Err500) or after (everything else) reaching the
// real transport. Faults injected here model the network between a
// worker and the coordinator: the server's state machine runs untouched,
// which is exactly what makes DropAfter and Dup interesting — the server
// has processed a request the client believes failed.
type Transport struct {
	// Base performs real exchanges (http.DefaultTransport when nil).
	Base http.RoundTripper
	// Sched decides the fault per exchange. Nil injects nothing.
	Sched *Schedule
}

func (t *Transport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

// CloseIdleConnections forwards to the base transport so Client.CloseIdle
// keeps working with a Transport spliced in.
func (t *Transport) CloseIdleConnections() {
	type closer interface{ CloseIdleConnections() }
	if c, ok := t.base().(closer); ok {
		c.CloseIdleConnections()
	}
}

// RoundTrip applies one schedule decision to one exchange.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.Sched == nil {
		return t.base().RoundTrip(req)
	}
	f := t.Sched.Next(ClassOf(req.URL.Path))
	switch f.Kind {
	case Drop:
		// The server never sees the request; the body must still be
		// drained so the retry can rebuild it via GetBody.
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		return nil, fmt.Errorf("%w: connection dropped before %s %s", ErrInjected, req.Method, req.URL.Path)
	case Err500:
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		return synth503(req), nil
	}

	resp, err := t.base().RoundTrip(req)
	if err != nil {
		return nil, err
	}

	switch f.Kind {
	case DropAfter:
		// The server processed the request; the client never learns.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("%w: reply severed after %s %s", ErrInjected, req.Method, req.URL.Path)
	case Dup:
		// Redeliver the identical request; the duplicate's outcome is
		// discarded — it is the server's dedup that is under test.
		if req.GetBody != nil || req.Body == nil {
			dup := req.Clone(req.Context())
			if req.GetBody != nil {
				b, err := req.GetBody()
				if err == nil {
					dup.Body = b
				}
			}
			if r2, err := t.base().RoundTrip(dup); err == nil {
				io.Copy(io.Discard, r2.Body)
				r2.Body.Close()
			}
		}
		return resp, nil
	case Delay:
		select {
		case <-req.Context().Done():
			resp.Body.Close()
			return nil, req.Context().Err()
		case <-time.After(f.Delay):
		}
		return resp, nil
	case Truncate:
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		// Half the body, then the error a real severed connection
		// produces once the transport notices Content-Length was not met.
		resp.Body = &truncatedBody{r: bytes.NewReader(body[:len(body)/2])}
		return resp, nil
	case Corrupt:
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		resp.Body = io.NopCloser(bytes.NewReader(CorruptBody(resp.Header.Get("Content-Type"), body, f.Rand)))
		return resp, nil
	}
	return resp, nil
}

// CorruptBody damages one response body in a deterministically chosen
// way: JSON gets a poison first byte (0x00 is never valid JSON, so the
// corruption is always detectable — arbitrary JSON flips could produce a
// different but well-formed document, i.e. Byzantine corruption, which
// is out of scope), anything else gets one byte XOR-flipped at an
// offset chosen by rnd. The input slice is not modified.
func CorruptBody(contentType string, body []byte, rnd uint64) []byte {
	if len(body) == 0 {
		return body
	}
	out := append([]byte(nil), body...)
	if strings.Contains(contentType, "json") {
		out[0] = 0x00
		return out
	}
	out[rnd%uint64(len(out))] ^= 0xFF
	return out
}

// truncatedBody yields its prefix then fails the way net/http surfaces a
// connection lost mid-body.
type truncatedBody struct{ r *bytes.Reader }

func (b *truncatedBody) Read(p []byte) (int, error) {
	n, err := b.r.Read(p)
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *truncatedBody) Close() error { return nil }

// synth503 fabricates a retriable server-error response.
func synth503(req *http.Request) *http.Response {
	body := "faultinject: injected 503"
	return &http.Response{
		Status:        "503 Service Unavailable",
		StatusCode:    http.StatusServiceUnavailable,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"text/plain"}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}
