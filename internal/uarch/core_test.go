package uarch

import (
	"testing"

	"livepoints/internal/bpred"
	"livepoints/internal/cache"
	"livepoints/internal/functional"
	"livepoints/internal/prog"
)

// newTestCore builds a core over a freshly generated program with cold
// structures.
func newTestCore(t *testing.T, name string, scale float64, cfg Config) (*Core, *prog.Program) {
	t.Helper()
	spec, err := prog.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	p := prog.Generate(spec, scale)
	m := p.NewMemory()
	h := cache.NewHier(cfg.Hier)
	bp := bpred.New(cfg.BP)
	core := NewCore(cfg, p, m, functional.State{}, h, bp)
	return core, p
}

// TestHandoffInvariant runs the detailed core for a fixed commit count and
// checks the committed architectural state matches pure functional
// simulation instruction-for-instruction. This is the core correctness
// property the whole sampling methodology rests on.
func TestHandoffInvariant(t *testing.T) {
	for _, name := range []string{"syn.gzip", "syn.mcf", "syn.gcc", "syn.perlbmk", "syn.swim"} {
		name := name
		t.Run(name, func(t *testing.T) {
			const n = 20_000
			core, p := newTestCore(t, name, 0.01, Config8Way())
			got := core.Run(n)
			if got != n {
				t.Fatalf("core committed %d, want %d", got, n)
			}

			ref := functional.New(p, p.NewMemory())
			if _, err := ref.Run(n); err != nil {
				t.Fatalf("functional run: %v", err)
			}

			cs := core.CommittedState()
			if cs.PC != ref.PC {
				t.Fatalf("PC mismatch: core %d, functional %d", cs.PC, ref.PC)
			}
			if cs.Regs != ref.Regs {
				for r := 0; r < 64; r++ {
					if cs.Regs[r] != ref.Regs[r] {
						t.Errorf("r%d mismatch: core %#x, functional %#x", r, cs.Regs[r], ref.Regs[r])
					}
				}
				t.Fatal("register state mismatch")
			}
			if core.Stat.CorrectPathUnknownLoads != 0 || core.Stat.CorrectPathUnknownFetches != 0 {
				t.Fatalf("correct-path unknown events: loads=%d fetches=%d",
					core.Stat.CorrectPathUnknownLoads, core.Stat.CorrectPathUnknownFetches)
			}
		})
	}
}

// TestRunToHaltMatchesFunctional runs a whole tiny benchmark to completion
// in both simulators and compares final state and instruction counts.
func TestRunToHaltMatchesFunctional(t *testing.T) {
	core, p := newTestCore(t, "syn.gzip", 0.002, Config8Way())
	committed := core.Run(1 << 30) // runs to halt
	if !core.Halted() {
		t.Fatal("core did not reach halt")
	}

	ref := functional.New(p, p.NewMemory())
	n, err := ref.RunToHalt(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	// The halt itself commits but does not count as a retired instruction
	// in the functional counter.
	if committed != n+1 {
		t.Fatalf("committed %d, functional executed %d (want committed = n+1)", committed, n)
	}
	if core.CommittedState().Regs != ref.Regs {
		t.Fatal("final register state mismatch")
	}
}

// TestDeterminism checks cycle-exact reproducibility.
func TestDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		core, _ := newTestCore(t, "syn.gcc", 0.005, Config8Way())
		core.Run(30_000)
		return core.Stat.Cycles, core.Stat.Recoveries
	}
	c1, r1 := run()
	c2, r2 := run()
	if c1 != c2 || r1 != r2 {
		t.Fatalf("non-deterministic: cycles %d vs %d, recoveries %d vs %d", c1, c2, r1, r2)
	}
}

// TestCPISanity checks CPI lands in a plausible range for contrasting
// workloads and that the memory-bound workload has distinctly higher CPI.
func TestCPISanity(t *testing.T) {
	cpi := map[string]float64{}
	for _, name := range []string{"syn.gzip", "syn.mcf"} {
		core, _ := newTestCore(t, name, 0.02, Config8Way())
		core.Run(100_000)
		c := core.Stat.CPI()
		if c < 1.0/8 || c > 100 {
			t.Fatalf("%s: implausible CPI %.3f", name, c)
		}
		cpi[name] = c
		t.Logf("%s: CPI %.3f, recoveries %d, wrong-path %d", name, c, core.Stat.Recoveries, core.Stat.WrongPathDisp)
	}
	if cpi["syn.mcf"] < cpi["syn.gzip"]*1.5 {
		t.Errorf("expected pointer-chasing CPI >> compute CPI; got mcf=%.3f gzip=%.3f",
			cpi["syn.mcf"], cpi["syn.gzip"])
	}
}

// TestWrongPathActivity checks the core actually fetches and dispatches
// down wrong paths on a branchy workload (required for the live-state
// wrong-path experiments).
func TestWrongPathActivity(t *testing.T) {
	core, _ := newTestCore(t, "syn.gcc", 0.01, Config8Way())
	core.Run(50_000)
	if core.Stat.Recoveries == 0 {
		t.Fatal("no branch mispredictions on a branchy workload")
	}
	if core.Stat.WrongPathDisp == 0 {
		t.Fatal("no wrong-path instructions dispatched despite mispredictions")
	}
	t.Logf("recoveries=%d wrongPath=%d dispatched=%d",
		core.Stat.Recoveries, core.Stat.WrongPathDisp, core.Stat.Dispatched)
}

// Test16WayRunsAndIsFaster checks the 16-way configuration commits the same
// state and achieves lower CPI on an ILP-rich workload.
func Test16WayRunsAndIsFaster(t *testing.T) {
	const n = 50_000
	c8, _ := newTestCore(t, "syn.gzip", 0.01, Config8Way())
	c8.Run(n)
	c16, p := newTestCore(t, "syn.gzip", 0.01, Config16Way())
	c16.Run(n)

	if c8.CommittedState().Regs != c16.CommittedState().Regs {
		t.Fatal("8-way and 16-way committed different architectural state")
	}
	ref := functional.New(p, p.NewMemory())
	if _, err := ref.Run(n); err != nil {
		t.Fatal(err)
	}
	if c16.CommittedState().PC != ref.PC {
		t.Fatal("16-way PC diverges from functional")
	}
	t.Logf("CPI 8-way %.3f vs 16-way %.3f", c8.Stat.CPI(), c16.Stat.CPI())
	if c16.Stat.CPI() >= c8.Stat.CPI() {
		t.Errorf("16-way should outperform 8-way on ILP-rich code: %.3f vs %.3f",
			c16.Stat.CPI(), c8.Stat.CPI())
	}
}

// TestConfigsValidate checks both Table 1 configurations are well-formed.
func TestConfigsValidate(t *testing.T) {
	for _, cfg := range []Config{Config8Way(), Config16Way()} {
		if err := cfg.Hier.Validate(); err != nil {
			t.Errorf("%s hierarchy: %v", cfg.Name, err)
		}
		if err := cfg.BP.Validate(); err != nil {
			t.Errorf("%s predictor: %v", cfg.Name, err)
		}
		if cfg.WindowLen() != cfg.DetailedWarm+MeasureLen {
			t.Errorf("%s: window length arithmetic broken", cfg.Name)
		}
	}
}
