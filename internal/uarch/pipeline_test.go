package uarch

import (
	"testing"

	"livepoints/internal/bpred"
	"livepoints/internal/cache"
	"livepoints/internal/functional"
	"livepoints/internal/isa"
	"livepoints/internal/mem"
)

// sliceText adapts a raw instruction slice to the text-source interface.
type sliceText []isa.Inst

func (s sliceText) Fetch(pc uint64) (isa.Inst, bool) {
	if pc >= uint64(len(s)) {
		return isa.Inst{}, false
	}
	return s[pc], true
}

// newMicroCore builds a core over a hand-written program with cold
// structures.
func newMicroCore(text []isa.Inst, cfg Config) *Core {
	m := mem.New()
	h := cache.NewHier(cfg.Hier)
	bp := bpred.New(cfg.BP)
	return NewCore(cfg, sliceText(text), m, functional.State{}, h, bp)
}

// TestDependenceChainSlowerThanILP checks the scheduler honours data
// dependences: a serial chain of N adds must take ~N cycles while N
// independent adds finish in ~N/width.
func TestDependenceChainSlowerThanILP(t *testing.T) {
	cfg := Config8Way()
	const n = 64
	// Both bodies loop 200 times so cold instruction fetch amortizes and
	// the schedule, not the front end, dominates.
	mkLoop := func(body func(i int) isa.Inst) []isa.Inst {
		var text []isa.Inst
		text = append(text, isa.Inst{Op: isa.OpLui, Rd: 60, Imm: 200})
		top := int64(len(text))
		for i := 0; i < n; i++ {
			text = append(text, body(i))
		}
		text = append(text, isa.Inst{Op: isa.OpAddI, Rd: 60, Rs1: 60, Imm: -1})
		text = append(text, isa.Inst{Op: isa.OpBne, Rs1: 60, Rs2: 0, Imm: top})
		text = append(text, isa.Inst{Op: isa.OpHalt})
		return text
	}
	serial := mkLoop(func(int) isa.Inst {
		return isa.Inst{Op: isa.OpAddI, Rd: 1, Rs1: 1, Imm: 1}
	})
	parallel := mkLoop(func(i int) isa.Inst {
		r := uint8(1 + i%32)
		return isa.Inst{Op: isa.OpAddI, Rd: r, Rs1: r, Imm: 1}
	})

	cs := newMicroCore(serial, cfg)
	cs.Run(1 << 22)
	cp := newMicroCore(parallel, cfg)
	cp.Run(1 << 22)

	if cs.Stat.Cycles < 200*n {
		t.Fatalf("serial chain took %d cycles for %d dependent adds — dependences ignored", cs.Stat.Cycles, 200*n)
	}
	if cp.Stat.Cycles*2 >= cs.Stat.Cycles {
		t.Fatalf("independent adds (%d cycles) not meaningfully faster than chain (%d cycles)",
			cp.Stat.Cycles, cs.Stat.Cycles)
	}
}

// TestDivUnitStallsAreVisible checks unpipelined long-latency units
// back-pressure the schedule.
func TestDivUnitStallsAreVisible(t *testing.T) {
	cfg := Config8Way()
	const n = 16
	divs := make([]isa.Inst, 0, n+2)
	divs = append(divs, isa.Inst{Op: isa.OpLui, Rd: 1, Imm: 7})
	for i := 0; i < n; i++ {
		// Independent divides: throughput-bound by the unpipelined units.
		divs = append(divs, isa.Inst{Op: isa.OpDiv, Rd: uint8(2 + i%8), Rs1: 1, Rs2: 1})
	}
	divs = append(divs, isa.Inst{Op: isa.OpHalt})
	c := newMicroCore(divs, cfg)
	c.Run(1 << 20)
	// Two IMUL/IDIV units with issue interval 19: n divides need at least
	// n/2 * 19 cycles.
	if want := uint64(n / 2 * 19); c.Stat.Cycles < want {
		t.Fatalf("%d independent divides in %d cycles, want >= %d", n, c.Stat.Cycles, want)
	}
}

// TestStoreLoadForwarding checks a load of a just-stored address completes
// quickly (forwarded) and architecturally correctly.
func TestStoreLoadForwarding(t *testing.T) {
	cfg := Config8Way()
	text := []isa.Inst{
		{Op: isa.OpLui, Rd: 1, Imm: 0x10000},
		{Op: isa.OpLui, Rd: 2, Imm: 1234},
		{Op: isa.OpStore, Rs1: 1, Rs2: 2, Imm: 0},
		{Op: isa.OpLoad, Rd: 3, Rs1: 1, Imm: 0},
		{Op: isa.OpHalt},
	}
	c := newMicroCore(text, cfg)
	c.Run(1 << 20)
	if got := c.CommittedState().Regs[3]; got != 1234 {
		t.Fatalf("forwarded load got %d", got)
	}

	// Control: the same program loading a different cold address pays a
	// full TLB+memory round trip that forwarding avoids.
	control := make([]isa.Inst, len(text))
	copy(control, text)
	control[3] = isa.Inst{Op: isa.OpLoad, Rd: 3, Rs1: 1, Imm: 1 << 20}
	cc := newMicroCore(control, cfg)
	cc.Run(1 << 20)
	if c.Stat.Cycles+100 > cc.Stat.Cycles {
		t.Fatalf("forwarding (%d cycles) not meaningfully faster than cold load (%d cycles)",
			c.Stat.Cycles, cc.Stat.Cycles)
	}
}

// TestRUUBackpressure checks that a long-latency load eventually stalls
// dispatch through RUU occupancy rather than deadlocking.
func TestRUUBackpressure(t *testing.T) {
	cfg := Config8Way()
	cfg.RUUSize = 16
	cfg.LSQSize = 8
	text := []isa.Inst{
		{Op: isa.OpLui, Rd: 1, Imm: 0x400000},
		{Op: isa.OpLoad, Rd: 2, Rs1: 1, Imm: 0}, // cold: TLB+L2+mem miss
	}
	// Dependent chain long enough to fill the shrunken RUU.
	for i := 0; i < 64; i++ {
		text = append(text, isa.Inst{Op: isa.OpAdd, Rd: 3, Rs1: 3, Rs2: 2})
	}
	text = append(text, isa.Inst{Op: isa.OpHalt})
	c := newMicroCore(text, cfg)
	committed := c.Run(1 << 20)
	if !c.Halted() {
		t.Fatal("program did not finish")
	}
	if committed != uint64(len(text)) {
		t.Fatalf("committed %d of %d", committed, len(text))
	}
}

// TestICacheMissesSlowFetch checks a program whose text spans many lines
// pays instruction-fetch misses on first traversal.
func TestICacheMissesSlowFetch(t *testing.T) {
	cfg := Config8Way()
	// Straight-line code long enough to exceed one L1I way but run once:
	// every line is a cold miss.
	var text []isa.Inst
	for i := 0; i < 4096; i++ {
		text = append(text, isa.Inst{Op: isa.OpAddI, Rd: 1, Rs1: 1, Imm: 1})
	}
	text = append(text, isa.Inst{Op: isa.OpHalt})
	c := newMicroCore(text, cfg)
	c.Run(1 << 22)
	if c.hier.L1I.Stat.Misses == 0 {
		t.Fatal("no instruction-cache misses on cold straight-line code")
	}
	// CPI must reflect the cold fetch stream: well above the width bound.
	if cpi := c.Stat.CPI(); cpi < 0.5 {
		t.Fatalf("cold-text CPI %.3f suspiciously low", cpi)
	}
}

// TestMispredictPenaltyVisible compares a perfectly-biased branch loop with
// an LCG-random branch loop: the random one must be slower per instruction.
func TestMispredictPenaltyVisible(t *testing.T) {
	cfg := Config8Way()
	biased := loopProgram(true)
	random := loopProgram(false)

	cb := newMicroCore(biased, cfg)
	cb.Run(1 << 22)
	cr := newMicroCore(random, cfg)
	cr.Run(1 << 22)

	if cr.Stat.Recoveries <= cb.Stat.Recoveries {
		t.Fatalf("random branches recovered %d times, biased %d", cr.Stat.Recoveries, cb.Stat.Recoveries)
	}
	if cr.Stat.CPI() <= cb.Stat.CPI() {
		t.Fatalf("random-branch CPI %.3f not above biased %.3f", cr.Stat.CPI(), cb.Stat.CPI())
	}
}

// loopProgram builds a 2000-iteration loop with a data-dependent hammock;
// biased branches take one side always, random ones follow an LCG bit.
func loopProgram(biased bool) []isa.Inst {
	var a []isa.Inst
	emit := func(in isa.Inst) int { a = append(a, in); return len(a) - 1 }
	emit(isa.Inst{Op: isa.OpLui, Rd: 1, Imm: 2000})  // counter
	emit(isa.Inst{Op: isa.OpLui, Rd: 2, Imm: 12345}) // lcg state
	top := int64(len(a))
	emit(isa.Inst{Op: isa.OpLui, Rd: 5, Imm: 6364136223846793005})
	emit(isa.Inst{Op: isa.OpMul, Rd: 2, Rs1: 2, Rs2: 5})
	emit(isa.Inst{Op: isa.OpAddI, Rd: 2, Rs1: 2, Imm: 1442695040888963407 & 0x7fffffff})
	if biased {
		emit(isa.Inst{Op: isa.OpLui, Rd: 3, Imm: 0}) // always falls through
	} else {
		emit(isa.Inst{Op: isa.OpShrI, Rd: 3, Rs1: 2, Imm: 40})
		emit(isa.Inst{Op: isa.OpAndI, Rd: 3, Rs1: 3, Imm: 1})
	}
	br := emit(isa.Inst{Op: isa.OpBne, Rs1: 3, Rs2: 0, Imm: -1})
	emit(isa.Inst{Op: isa.OpAddI, Rd: 4, Rs1: 4, Imm: 1})
	join := emit(isa.Inst{Op: isa.OpAddI, Rd: 4, Rs1: 4, Imm: 2})
	a[br].Imm = int64(join)
	emit(isa.Inst{Op: isa.OpAddI, Rd: 1, Rs1: 1, Imm: -1})
	emit(isa.Inst{Op: isa.OpBne, Rs1: 1, Rs2: 0, Imm: top})
	emit(isa.Inst{Op: isa.OpHalt})
	return a
}

// TestEventSkipEquivalence checks the cycle-skipping fast path produces the
// same timing as it would without skips, by comparing a memory-stall-heavy
// run against itself (determinism) and checking committed state.
func TestEventSkipEquivalence(t *testing.T) {
	cfg := Config8Way()
	text := []isa.Inst{
		{Op: isa.OpLui, Rd: 1, Imm: 0x2000000},
	}
	// Pointer-chase-like serial loads to fresh pages: maximal stalls.
	for i := 0; i < 32; i++ {
		text = append(text, isa.Inst{Op: isa.OpLoad, Rd: 2, Rs1: 1, Imm: int64(i) * 8192})
		text = append(text, isa.Inst{Op: isa.OpAdd, Rd: 3, Rs1: 3, Rs2: 2})
	}
	text = append(text, isa.Inst{Op: isa.OpHalt})

	c1 := newMicroCore(text, cfg)
	c1.Run(1 << 22)
	c2 := newMicroCore(text, cfg)
	c2.Run(1 << 22)
	if c1.Stat.Cycles != c2.Stat.Cycles {
		t.Fatalf("non-deterministic stall timing: %d vs %d", c1.Stat.Cycles, c2.Stat.Cycles)
	}
	ref := functional.New(sliceText(text), mem.New())
	if _, err := ref.RunToHalt(1 << 20); err != nil {
		t.Fatal(err)
	}
	if c1.CommittedState().Regs != ref.Regs {
		t.Fatal("stall-heavy program committed wrong state")
	}
}
