// Package uarch implements the detailed cycle-level out-of-order
// superscalar timing model — the stand-in for SimpleScalar 3.0
// sim-outorder with the paper's memory-system extensions (store buffer,
// MSHRs, interconnect bottlenecks).
//
// The model follows the classic register-update-unit organization:
// dispatch-time functional execution with a speculative shadow context for
// wrong-path instructions, a unified RUU (reorder buffer + reservation
// stations), a load/store queue with store-to-load forwarding, finite
// functional-unit pools, and fetch driven by the branch predictor,
// including full wrong-path fetch and execution — the behaviour the
// paper's live-state design must approximate when state is missing.
package uarch

import (
	"livepoints/internal/bpred"
	"livepoints/internal/cache"
	"livepoints/internal/isa"
)

// Config describes one microarchitectural configuration (a Table 1 column).
type Config struct {
	Name string

	FetchWidth  int
	DecodeWidth int
	IssueWidth  int
	CommitWidth int
	IFQSize     int

	RUUSize int
	LSQSize int

	// Functional unit counts per class.
	IntALU int
	IntMul int
	FPALU  int
	FPMul  int

	MemPorts int // L1D ports usable per cycle

	// BranchPenalty is the front-end refill penalty applied on
	// misprediction recovery, beyond the natural resolution delay.
	BranchPenalty int
	// PredsPerCycle bounds conditional-branch predictions per fetch cycle.
	PredsPerCycle int

	// DetailedWarm is the number of detailed-warming instructions the
	// sample design prescribes before each 1000-instruction measurement.
	DetailedWarm int

	Hier cache.HierConfig
	BP   bpred.Config
}

// latInfo is the latency/occupancy of one operation.
type latInfo struct {
	class    isa.Class
	latency  int
	interval int // issue interval (== latency for unpipelined units)
}

// opLat maps each op to its functional-unit class and timing, in the
// SimpleScalar tradition (ALU 1 cycle; IMUL 3; IDIV 20 unpipelined; FP add
// 2; FP mul 4; FP div 12 unpipelined).
var opLat = func() [isa.NumOps]latInfo {
	var t [isa.NumOps]latInfo
	for op := 0; op < isa.NumOps; op++ {
		o := isa.Op(op)
		switch o.Class() {
		case isa.ClassIntALU:
			t[op] = latInfo{isa.ClassIntALU, 1, 1}
		case isa.ClassIntMul:
			t[op] = latInfo{isa.ClassIntMul, 3, 1}
		case isa.ClassFPALU:
			t[op] = latInfo{isa.ClassFPALU, 2, 1}
		case isa.ClassFPMul:
			t[op] = latInfo{isa.ClassFPMul, 4, 1}
		case isa.ClassMem:
			// Address generation; cache latency is added separately.
			t[op] = latInfo{isa.ClassMem, 1, 1}
		case isa.ClassBranch:
			// Branches resolve on an integer ALU.
			t[op] = latInfo{isa.ClassIntALU, 1, 1}
		default:
			t[op] = latInfo{isa.ClassNone, 1, 1}
		}
	}
	t[isa.OpDiv] = latInfo{isa.ClassIntMul, 20, 19}
	t[isa.OpRem] = latInfo{isa.ClassIntMul, 20, 19}
	t[isa.OpFDiv] = latInfo{isa.ClassFPMul, 12, 12}
	return t
}()

// Config8Way returns the paper's baseline 8-way out-of-order superscalar
// (Table 1, left column).
func Config8Way() Config {
	return Config{
		Name:        "8-way",
		FetchWidth:  8,
		DecodeWidth: 8,
		IssueWidth:  8,
		CommitWidth: 8,
		IFQSize:     32,
		RUUSize:     128,
		LSQSize:     64,
		IntALU:      4,
		IntMul:      2,
		FPALU:       2,
		FPMul:       1,
		MemPorts:    2,

		BranchPenalty: 7,
		PredsPerCycle: 1,
		DetailedWarm:  2000,

		Hier: cache.HierConfig{
			L1I:          cache.Config{Name: "l1i", SizeBytes: 32 << 10, Assoc: 2, LineBytes: 32, HitLat: 1},
			L1D:          cache.Config{Name: "l1d", SizeBytes: 32 << 10, Assoc: 2, LineBytes: 32, HitLat: 1},
			L2:           cache.Config{Name: "l2", SizeBytes: 1 << 20, Assoc: 4, LineBytes: 128, HitLat: 12},
			ITLB:         cache.Config{Name: "itlb", SizeBytes: 128 * 4096, Assoc: 4, LineBytes: 4096, HitLat: 0},
			DTLB:         cache.Config{Name: "dtlb", SizeBytes: 256 * 4096, Assoc: 4, LineBytes: 4096, HitLat: 0},
			TLBMissLat:   200,
			MemLat:       100,
			DMSHRs:       8,
			StoreBufSize: 16,
			StoreDrain:   2,
			L2BusBusy:    4,
			MemBusBusy:   8,
		},
		BP: bpred.Config{
			Name:      "comb-2k",
			Kind:      bpred.Combined,
			TableSize: 2048,
			HistBits:  11,
			BTBSets:   512,
			BTBAssoc:  4,
			RASSize:   8,
		},
	}
}

// Config16Way returns the paper's aggressive 16-way configuration
// (Table 1, right column).
func Config16Way() Config {
	return Config{
		Name:        "16-way",
		FetchWidth:  16,
		DecodeWidth: 16,
		IssueWidth:  16,
		CommitWidth: 16,
		IFQSize:     64,
		RUUSize:     256,
		LSQSize:     128,
		IntALU:      16,
		IntMul:      8,
		FPALU:       8,
		FPMul:       4,
		MemPorts:    4,

		BranchPenalty: 10,
		PredsPerCycle: 2,
		DetailedWarm:  4000,

		Hier: cache.HierConfig{
			L1I:          cache.Config{Name: "l1i", SizeBytes: 64 << 10, Assoc: 2, LineBytes: 32, HitLat: 2},
			L1D:          cache.Config{Name: "l1d", SizeBytes: 64 << 10, Assoc: 2, LineBytes: 32, HitLat: 2},
			L2:           cache.Config{Name: "l2", SizeBytes: 4 << 20, Assoc: 8, LineBytes: 128, HitLat: 16},
			ITLB:         cache.Config{Name: "itlb", SizeBytes: 128 * 4096, Assoc: 4, LineBytes: 4096, HitLat: 0},
			DTLB:         cache.Config{Name: "dtlb", SizeBytes: 256 * 4096, Assoc: 4, LineBytes: 4096, HitLat: 0},
			TLBMissLat:   200,
			MemLat:       100,
			DMSHRs:       16,
			StoreBufSize: 32,
			StoreDrain:   1,
			L2BusBusy:    2,
			MemBusBusy:   4,
		},
		BP: bpred.Config{
			Name:      "comb-8k",
			Kind:      bpred.Combined,
			TableSize: 8192,
			HistBits:  13,
			BTBSets:   1024,
			BTBAssoc:  4,
			RASSize:   16,
		},
	}
}

// MeasureLen is the paper's measurement-interval length in instructions.
const MeasureLen = 1000

// WindowLen returns detailed warming plus measurement: the instructions a
// live-point must support simulating.
func (c Config) WindowLen() int { return c.DetailedWarm + MeasureLen }
