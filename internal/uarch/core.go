package uarch

import (
	"fmt"

	"livepoints/internal/bpred"
	"livepoints/internal/cache"
	"livepoints/internal/functional"
	"livepoints/internal/isa"
	"livepoints/internal/mem"
)

// Stats accumulates detailed-simulation event counts.
type Stats struct {
	Cycles    uint64
	Committed uint64

	Dispatched    uint64
	WrongPathDisp uint64
	Recoveries    uint64 // correct-path branch mispredictions

	// Live-state approximation events (§5 of the paper): wrong-path
	// fetches from unavailable text and wrong-path loads of unavailable
	// memory words. CorrectPathUnknownLoads must be zero for full
	// live-state; non-zero values indicate capture bugs or, for
	// restricted live-state experiments, the expected approximation.
	UnknownFetches            uint64
	UnknownLoads              uint64
	CorrectPathUnknownLoads   uint64
	CorrectPathUnknownFetches uint64
}

// CPI returns cycles per committed instruction.
func (s Stats) CPI() float64 {
	if s.Committed == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Committed)
}

// entry is one RUU (unified ROB/reservation-station) slot.
type entry struct {
	seq   uint64
	valid bool

	pc           uint64
	inst         isa.Inst
	wrongPath    bool
	unknownFetch bool

	dep  [3]uint64
	nDep int

	issued    bool
	completed bool
	doneAt    uint64

	isLoad   bool
	isStore  bool
	memAddr  uint64
	fwdStore bool

	isBranch  bool
	predNext  uint64 // predicted next pc (sentinel badPC when unknown)
	actTaken  bool
	actNext   uint64
	doRecover bool
	bpSave    bpred.SpecLite

	writesReg bool
	rdVal     uint64
	memVal    uint64
}

// badPC is the sentinel "unknown predicted target".
const badPC = ^uint64(0)

// fetchRec is one fetched instruction waiting in the fetch queue.
type fetchRec struct {
	pc        uint64
	inst      isa.Inst
	unknown   bool
	isBranch  bool
	predNext  uint64
	bpSave    bpred.SpecLite
	fetchedAt uint64
}

// Core is one instantiated detailed out-of-order processor.
//
// The core maintains two architectural contexts. The dispatch context
// executes instructions speculatively, in fetched order (including wrong
// paths), against a copy-on-write memory overlay. The commit context
// re-executes instructions in program order at retirement against the real
// window memory; it is the authoritative architectural state, and must
// match pure functional simulation instruction-for-instruction (the
// handoff invariant tested in internal/warm).
type Core struct {
	cfg  Config
	text functional.TextSource
	hier *cache.Hier
	bp   *bpred.Predictor

	commit    functional.State
	commitMem functional.MemRW

	disp    functional.State
	dispMem *mem.Overlay

	ruu       []entry
	headSeq   uint64
	tailSeq   uint64
	lsqCount  int
	createVec [isa.NumRegs]int64

	fetchPC       uint64
	fetchReadyAt  uint64
	fetchHold     bool
	ifq           []fetchRec
	ifqHead       int
	lastFetchLine uint64
	specMode      bool

	fuBusy [isa.NumClasses][]uint64

	cycle           uint64
	halted          bool
	lastCommitCycle uint64

	Stat Stats
}

// NewCore builds a core over the given text, memory and pre-warmed
// microarchitectural structures. arch is the architectural starting state
// (registers and PC); commitMem receives committed stores. The hierarchy's
// transient cycle-domain state is reset; its cache/TLB contents are kept.
func NewCore(cfg Config, text functional.TextSource, commitMem functional.MemRW,
	arch functional.State, h *cache.Hier, bp *bpred.Predictor) *Core {
	c := &Core{
		cfg:           cfg,
		text:          text,
		hier:          h,
		bp:            bp,
		commit:        arch,
		commitMem:     commitMem,
		disp:          arch,
		dispMem:       mem.NewOverlay(commitMem),
		ruu:           make([]entry, cfg.RUUSize),
		fetchPC:       arch.PC,
		lastFetchLine: badPC,
		ifq:           make([]fetchRec, 0, cfg.IFQSize),
	}
	for i := range c.createVec {
		c.createVec[i] = -1
	}
	c.fuBusy[isa.ClassIntALU] = make([]uint64, cfg.IntALU)
	c.fuBusy[isa.ClassIntMul] = make([]uint64, cfg.IntMul)
	c.fuBusy[isa.ClassFPALU] = make([]uint64, cfg.FPALU)
	c.fuBusy[isa.ClassFPMul] = make([]uint64, cfg.FPMul)
	h.ResetTransients()
	return c
}

// CommittedState returns the committed architectural state.
func (c *Core) CommittedState() functional.State { return c.commit }

// Cycle returns the current cycle count.
func (c *Core) Cycle() uint64 { return c.cycle }

// Halted reports whether a correct-path halt instruction committed.
func (c *Core) Halted() bool { return c.halted }

func (c *Core) slot(seq uint64) *entry { return &c.ruu[seq%uint64(len(c.ruu))] }

// live reports whether the producer identified by seq is still in flight
// and incomplete.
func (c *Core) depPending(seq uint64) bool {
	e := c.slot(seq)
	return e.valid && e.seq == seq && !e.completed
}

// Run simulates until n more instructions commit or the program halts,
// returning the number committed during this call. The cycle counter and
// all pipeline state carry over across calls, so warming and measurement
// phases observe a continuously live pipeline.
//
// Cycles in which no pipeline stage can make progress (long memory stalls)
// are skipped to the next scheduled event; the resulting timing is
// identical to stepping cycle by cycle because every wake-up in the model
// is time-driven.
func (c *Core) Run(n uint64) uint64 {
	target := c.Stat.Committed + n
	for c.Stat.Committed < target && !c.halted {
		c.cycle++
		active := 0
		before := c.Stat.Committed
		c.stageCommit(target)
		active += int(c.Stat.Committed - before)
		active += c.stageWriteback()
		active += c.stageIssue()
		active += c.stageDispatch()
		active += c.stageFetch()
		if active == 0 {
			c.skipToNextEvent()
		}
		if c.cycle-c.lastCommitCycle > 1<<21 {
			panic(fmt.Sprintf("uarch: no commit progress for %d cycles at cycle %d (pc=%d, head=%d tail=%d)",
				c.cycle-c.lastCommitCycle, c.cycle, c.commit.PC, c.headSeq, c.tailSeq))
		}
	}
	c.Stat.Cycles = c.cycle
	return c.Stat.Committed - (target - n)
}

// skipToNextEvent advances the cycle counter to just before the earliest
// time-driven wake-up: an in-flight completion, the fetch restart time, or
// a functional unit becoming free. Panics if the pipeline is provably
// deadlocked (no pending event at all).
func (c *Core) skipToNextEvent() {
	next := badPC
	for s := c.headSeq; s != c.tailSeq; s++ {
		e := c.slot(s)
		if e.valid && e.issued && !e.completed && e.doneAt < next {
			next = e.doneAt
		}
	}
	if !c.fetchHold && c.fetchReadyAt > c.cycle && c.fetchReadyAt < next {
		next = c.fetchReadyAt
	}
	for cl := range c.fuBusy {
		for _, busy := range c.fuBusy[cl] {
			if busy > c.cycle && busy < next {
				next = busy
			}
		}
	}
	if next == badPC {
		panic(fmt.Sprintf("uarch: pipeline deadlock at cycle %d (pc=%d, head=%d tail=%d, ifq=%d, hold=%v)",
			c.cycle, c.commit.PC, c.headSeq, c.tailSeq, len(c.ifq)-c.ifqHead, c.fetchHold))
	}
	if next > c.cycle+1 {
		c.cycle = next - 1
	}
}

// --- Commit ---------------------------------------------------------------

func (c *Core) stageCommit(target uint64) {
	for commits := 0; commits < c.cfg.CommitWidth && c.Stat.Committed < target; commits++ {
		if c.headSeq == c.tailSeq {
			return
		}
		e := c.slot(c.headSeq)
		if !e.valid || !e.completed {
			return
		}
		if e.wrongPath {
			// Wrong-path entries are squashed at recovery before the
			// mispredicted branch can commit; reaching here is a bug.
			panic(fmt.Sprintf("uarch: wrong-path entry at commit (seq %d, pc %d)", e.seq, e.pc))
		}
		if c.commit.PC != e.pc {
			panic(fmt.Sprintf("uarch: commit pc skew: committed state at %d, entry at %d", c.commit.PC, e.pc))
		}
		if e.unknownFetch {
			// A committed placeholder means correct-path text was missing
			// from the image — a live-state capture bug, surfaced as a
			// counter so experiments can assert on it.
			c.Stat.CorrectPathUnknownFetches++
		}
		res := functional.Exec(&c.commit, e.inst, c.commitMem)
		if res.Halt {
			c.halted = true
			c.retireHead(e)
			c.Stat.Committed++
			c.lastCommitCycle = c.cycle
			return
		}
		c.commit.PC = res.NextPC
		c.commit.InstRet++
		if e.isStore {
			stall := c.hier.CommitStore(e.memAddr, c.cycle)
			c.retireHead(e)
			c.Stat.Committed++
			c.lastCommitCycle = c.cycle
			if stall > 0 {
				return // store buffer full: commit stops this cycle
			}
			continue
		}
		if e.isBranch {
			c.bp.Update(isa.PCToAddr(e.pc), e.inst, e.actTaken, isa.PCToAddr(e.actNext))
		}
		c.retireHead(e)
		c.Stat.Committed++
		c.lastCommitCycle = c.cycle
	}
}

func (c *Core) retireHead(e *entry) {
	if e.isLoad || e.isStore {
		c.lsqCount--
	}
	e.valid = false
	c.headSeq++
	// Periodically compact the dispatch overlay so long correct-path runs
	// (golden full-benchmark simulations) do not accumulate an unbounded
	// shadow of committed stores.
	if c.Stat.Committed&0xffff == 0xffff {
		c.rebuildDispatchMemory()
	}
}

// --- Writeback / recovery ---------------------------------------------------

func (c *Core) stageWriteback() int {
	done := 0
	for s := c.headSeq; s != c.tailSeq; s++ {
		e := c.slot(s)
		if !e.valid || !e.issued || e.completed {
			continue
		}
		if e.doneAt > c.cycle {
			continue
		}
		e.completed = true
		done++
		if e.doRecover {
			c.recover(e)
			return done // everything younger is gone
		}
	}
	return done
}

// recover squashes all entries younger than the mispredicted branch e,
// restores the dispatch context and predictor speculative state, and
// redirects fetch to the branch's actual target.
func (c *Core) recover(e *entry) {
	c.Stat.Recoveries++
	for s := e.seq + 1; s != c.tailSeq; s++ {
		y := c.slot(s)
		if y.valid {
			if y.isLoad || y.isStore {
				c.lsqCount--
			}
			y.valid = false
		}
	}
	c.tailSeq = e.seq + 1

	// Rebuild the register rename view from surviving entries.
	for i := range c.createVec {
		c.createVec[i] = -1
	}
	for s := c.headSeq; s != c.tailSeq; s++ {
		y := c.slot(s)
		if y.valid && y.writesReg {
			c.createVec[y.inst.Rd] = int64(y.seq)
		}
	}

	// Rebuild the dispatch context: committed state plus the effects of
	// surviving in-flight instructions.
	c.disp.Regs = c.commit.Regs
	c.rebuildDispatchMemory()
	for s := c.headSeq; s != c.tailSeq; s++ {
		y := c.slot(s)
		if y.valid && y.writesReg {
			c.disp.SetReg(y.inst.Rd, y.rdVal)
		}
	}

	c.bp.RestoreLite(e.bpSave)
	c.bp.ApplyOutcome(isa.PCToAddr(e.pc), e.inst, e.actTaken)

	c.fetchPC = e.actNext
	c.fetchReadyAt = c.cycle + uint64(c.cfg.BranchPenalty)
	c.fetchHold = false
	c.ifq = c.ifq[:0]
	c.ifqHead = 0
	c.lastFetchLine = badPC
	c.specMode = false
	e.doRecover = false
}

// rebuildDispatchMemory resets the dispatch overlay to the committed memory
// plus all surviving in-flight stores.
func (c *Core) rebuildDispatchMemory() {
	c.dispMem.Reset()
	for s := c.headSeq; s != c.tailSeq; s++ {
		y := c.slot(s)
		if y.valid && y.isStore {
			c.dispMem.WriteWord(y.memAddr, y.memVal)
		}
	}
}

// --- Issue ------------------------------------------------------------------

func (c *Core) stageIssue() int {
	issued := 0
	portsUsed := 0
	for s := c.headSeq; s != c.tailSeq && issued < c.cfg.IssueWidth; s++ {
		e := c.slot(s)
		if !e.valid || e.issued {
			continue
		}
		ready := true
		for i := 0; i < e.nDep; i++ {
			if c.depPending(e.dep[i]) {
				ready = false
				break
			}
		}
		if !ready {
			continue
		}
		li := opLat[e.inst.Op]
		switch {
		case e.isLoad && e.fwdStore:
			// Store-to-load forwarding: one cycle after data is ready.
			e.issued = true
			e.doneAt = c.cycle + 1
		case e.isLoad:
			if portsUsed >= c.cfg.MemPorts {
				continue
			}
			portsUsed++
			e.issued = true
			e.doneAt = c.hier.Load(e.memAddr, c.cycle)
		case e.isStore:
			if portsUsed >= c.cfg.MemPorts {
				continue
			}
			portsUsed++
			e.issued = true
			e.doneAt = c.hier.StoreAddr(e.memAddr, c.cycle)
		case li.class == isa.ClassNone:
			e.issued = true
			e.doneAt = c.cycle + 1
		default:
			fu := c.fuBusy[li.class]
			slot := -1
			for i := range fu {
				if fu[i] <= c.cycle {
					slot = i
					break
				}
			}
			if slot < 0 {
				continue
			}
			fu[slot] = c.cycle + uint64(li.interval)
			e.issued = true
			e.doneAt = c.cycle + uint64(li.latency)
		}
		issued++
	}
	return issued
}

// --- Dispatch ----------------------------------------------------------------

func (c *Core) stageDispatch() int {
	dispatched := 0
	for n := 0; n < c.cfg.DecodeWidth; n++ {
		if c.ifqHead >= len(c.ifq) {
			return dispatched
		}
		rec := &c.ifq[c.ifqHead]
		if rec.fetchedAt >= c.cycle {
			return dispatched // 1-cycle fetch-to-dispatch latency
		}
		if c.tailSeq-c.headSeq >= uint64(c.cfg.RUUSize) {
			return dispatched // RUU full
		}
		isMem := rec.inst.Op.IsMem()
		if isMem && c.lsqCount >= c.cfg.LSQSize {
			return dispatched // LSQ full
		}
		dispatched++

		seq := c.tailSeq
		c.tailSeq++
		e := c.slot(seq)
		*e = entry{
			seq:          seq,
			valid:        true,
			pc:           rec.pc,
			inst:         rec.inst,
			wrongPath:    c.specMode,
			unknownFetch: rec.unknown,
			isBranch:     rec.isBranch,
			predNext:     rec.predNext,
			bpSave:       rec.bpSave,
		}
		c.ifqHead++
		c.Stat.Dispatched++
		if c.specMode {
			c.Stat.WrongPathDisp++
		}

		// Register dependences.
		var srcs [2]uint8
		for _, r := range rec.inst.SrcRegs(srcs[:0]) {
			if r == isa.RegZero {
				continue
			}
			if ps := c.createVec[r]; ps >= 0 && c.depPending(uint64(ps)) {
				e.dep[e.nDep] = uint64(ps)
				e.nDep++
			}
		}

		// Dispatch-time functional execution against the speculative
		// context.
		c.disp.PC = rec.pc
		res := functional.Exec(&c.disp, rec.inst, c.dispMem)

		if isMem {
			c.lsqCount++
			e.memAddr = res.MemAddr
			e.isLoad = res.IsLoad
			e.isStore = res.IsStore
			if e.isStore {
				e.memVal = c.disp.Reg(rec.inst.Rs2)
			}
			if e.isLoad {
				if !res.LoadOK {
					c.Stat.UnknownLoads++
					if !c.specMode {
						c.Stat.CorrectPathUnknownLoads++
					}
				}
				// Store-to-load forwarding from the youngest older
				// matching in-flight store.
				for s := seq; s != c.headSeq; {
					s--
					y := c.slot(s)
					if y.valid && y.isStore && y.memAddr == e.memAddr {
						if !y.completed {
							e.dep[e.nDep] = y.seq
							e.nDep++
						}
						e.fwdStore = true
						break
					}
				}
			}
		}

		if e.writesReg = rec.inst.WritesReg(); e.writesReg {
			e.rdVal = c.disp.Reg(rec.inst.Rd)
			c.createVec[rec.inst.Rd] = int64(seq)
		}

		if rec.isBranch {
			e.actTaken = res.Taken
			e.actNext = res.NextPC
			if rec.predNext != res.NextPC && !c.specMode {
				e.doRecover = true
				c.specMode = true
			}
		}
	}
	return dispatched
}

// --- Fetch --------------------------------------------------------------------

func (c *Core) stageFetch() int {
	fetched := 0
	if c.fetchHold || c.cycle < c.fetchReadyAt {
		return 0
	}
	// Compact the fetch queue storage so it cannot grow without bound.
	if c.ifqHead > 0 && (c.ifqHead == len(c.ifq) || c.ifqHead >= 2*c.cfg.IFQSize) {
		c.ifq = append(c.ifq[:0], c.ifq[c.ifqHead:]...)
		c.ifqHead = 0
	}
	condPreds := 0
	lineBytes := uint64(c.cfg.Hier.L1I.LineBytes)
	for n := 0; n < c.cfg.FetchWidth && len(c.ifq)-c.ifqHead < c.cfg.IFQSize; n++ {
		addr := isa.PCToAddr(c.fetchPC)
		line := addr / lineBytes
		if line != c.lastFetchLine {
			done := c.hier.IFetch(addr, c.cycle)
			c.lastFetchLine = line
			if done > c.cycle+uint64(c.cfg.Hier.L1I.HitLat) {
				// I-cache miss: fetch resumes when the line arrives.
				c.fetchReadyAt = done
				return fetched + 1 // the access itself is progress
			}
		}
		in, ok := c.text.Fetch(c.fetchPC)
		rec := fetchRec{pc: c.fetchPC, inst: in, fetchedAt: c.cycle}
		if !ok {
			// Wrong-path fetch into unavailable text: the paper's
			// approximation treats it as a nop-like filler.
			rec.unknown = true
			rec.inst = isa.Inst{Op: isa.OpNop}
			c.Stat.UnknownFetches++
			c.ifq = append(c.ifq, rec)
			fetched++
			c.fetchPC++
			continue
		}
		if in.Op == isa.OpHalt {
			c.ifq = append(c.ifq, rec)
			c.fetchHold = true
			return fetched + 1
		}
		if in.Op.IsBranch() {
			if in.Op.IsCondBranch() {
				if condPreds >= c.cfg.PredsPerCycle {
					return fetched // prediction bandwidth exhausted this cycle
				}
				condPreds++
			}
			rec.isBranch = true
			rec.bpSave = c.bp.SaveLite()
			taken, tgtAddr, known := c.bp.Lookup(isa.PCToAddr(c.fetchPC), in)
			if taken {
				if !known {
					// No predicted target: fetch stalls until the branch
					// resolves and recovery redirects.
					rec.predNext = badPC
					c.ifq = append(c.ifq, rec)
					c.fetchHold = true
					return fetched + 1
				}
				rec.predNext = isa.AddrToPC(tgtAddr)
				c.ifq = append(c.ifq, rec)
				c.fetchPC = rec.predNext
				return fetched + 1 // taken-branch fetch break
			}
			rec.predNext = c.fetchPC + 1
			c.ifq = append(c.ifq, rec)
			fetched++
			c.fetchPC++
			continue
		}
		c.ifq = append(c.ifq, rec)
		fetched++
		c.fetchPC++
	}
	return fetched
}
