package mem

import (
	"testing"
	"testing/quick"
)

func TestMemoryZeroFill(t *testing.T) {
	m := New()
	v, ok := m.ReadWord(0x1234_5678 &^ 7)
	if !ok || v != 0 {
		t.Fatalf("unmapped read: %d %v", v, ok)
	}
	if m.Pages() != 0 {
		t.Fatal("read should not allocate")
	}
}

func TestMemoryReadWrite(t *testing.T) {
	m := New()
	m.WriteWord(0x1000, 42)
	m.WriteWord(0x1008, 43)
	if v, _ := m.ReadWord(0x1000); v != 42 {
		t.Fatalf("got %d", v)
	}
	if v, _ := m.ReadWord(0x1008); v != 43 {
		t.Fatalf("got %d", v)
	}
	if m.Pages() != 1 {
		t.Fatalf("pages=%d, want 1 (same page)", m.Pages())
	}
	m.WriteWord(0x1000+PageBytes, 1)
	if m.Pages() != 2 {
		t.Fatalf("pages=%d, want 2", m.Pages())
	}
	if m.FootprintBytes() != 2*PageBytes {
		t.Fatalf("footprint=%d", m.FootprintBytes())
	}
}

func TestMemoryQuickReadBack(t *testing.T) {
	m := New()
	shadow := map[uint64]uint64{}
	f := func(addr, val uint64) bool {
		a := WordAlign(addr % (1 << 32))
		m.WriteWord(a, val)
		shadow[a] = val
		for k, want := range shadow {
			if got, _ := m.ReadWord(k); got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestClone(t *testing.T) {
	m := New()
	m.WriteWord(0x2000, 7)
	c := m.Clone()
	c.WriteWord(0x2000, 8)
	if v, _ := m.ReadWord(0x2000); v != 7 {
		t.Fatal("clone aliases original")
	}
	if v, _ := c.ReadWord(0x2000); v != 8 {
		t.Fatal("clone write lost")
	}
}

func TestOverlayCopyOnWrite(t *testing.T) {
	base := New()
	base.WriteWord(0x100, 1)
	o := NewOverlay(base)
	if v, ok := o.ReadWord(0x100); !ok || v != 1 {
		t.Fatal("overlay should read through")
	}
	o.WriteWord(0x100, 2)
	if v, _ := o.ReadWord(0x100); v != 2 {
		t.Fatal("overlay write invisible")
	}
	if v, _ := base.ReadWord(0x100); v != 1 {
		t.Fatal("overlay write leaked to base")
	}
	if o.Dirty() != 1 {
		t.Fatalf("dirty=%d", o.Dirty())
	}
	o.Reset()
	if v, _ := o.ReadWord(0x100); v != 1 {
		t.Fatal("reset did not discard writes")
	}
}

func TestOverlayObserverFirstReadOnly(t *testing.T) {
	base := New()
	base.WriteWord(0x100, 11)
	base.WriteWord(0x108, 22)
	o := NewOverlay(base)
	got := map[uint64]uint64{}
	o.Observe(func(addr, val uint64, ok bool) {
		if !ok {
			t.Fatalf("full memory reported unavailable word %#x", addr)
		}
		if _, dup := got[addr]; dup {
			t.Fatalf("observer fired twice for %#x", addr)
		}
		got[addr] = val
	})
	o.ReadWord(0x100)
	o.ReadWord(0x100) // repeated: no second callback
	o.ReadWord(0x108)
	o.WriteWord(0x110, 5)
	o.ReadWord(0x110) // overlay hit: no base read, no callback
	if len(got) != 2 || got[0x100] != 11 || got[0x108] != 22 {
		t.Fatalf("observed %v", got)
	}
}

func TestOverlayObserverSeesPreWriteValue(t *testing.T) {
	// The observer must capture the value BEFORE any overlay write: this
	// is what makes live-state capture correct for read-then-write words.
	base := New()
	base.WriteWord(0x200, 99)
	o := NewOverlay(base)
	var captured uint64
	o.Observe(func(addr, val uint64, ok bool) { captured = val })
	o.ReadWord(0x200)
	o.WriteWord(0x200, 1)
	o.ReadWord(0x200)
	if captured != 99 {
		t.Fatalf("captured %d, want pre-write 99", captured)
	}
}

func TestImageUnavailable(t *testing.T) {
	im := NewImage(map[uint64]uint64{0x100: 5})
	if v, ok := im.ReadWord(0x100); !ok || v != 5 {
		t.Fatal("captured word unavailable")
	}
	if _, ok := im.ReadWord(0x108); ok {
		t.Fatal("uncaptured word reported available")
	}
	if im.Len() != 1 {
		t.Fatalf("len=%d", im.Len())
	}
	// Overlay over an image: writes make words available.
	o := NewOverlay(im)
	o.WriteWord(0x108, 7)
	if v, ok := o.ReadWord(0x108); !ok || v != 7 {
		t.Fatal("overlay write over image not visible")
	}
	if _, ok := o.ReadWord(0x110); ok {
		t.Fatal("unavailable word leaked through overlay")
	}
}

func TestWordAlign(t *testing.T) {
	if WordAlign(0x107) != 0x100 {
		t.Fatal("alignment broken")
	}
	if WordAlign(0x100) != 0x100 {
		t.Fatal("aligned address changed")
	}
}
