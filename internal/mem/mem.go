// Package mem provides the sparse simulated data memory shared by the
// functional and detailed simulators, plus copy-on-write overlays used for
// speculative execution and live-state capture.
//
// Memory is word-addressed internally: all architectural accesses are
// 8-byte aligned 64-bit words, which is all the synthetic ISA issues. Pages
// are allocated lazily; a read of a never-written word returns zero, exactly
// like zero-fill-on-demand in a real OS. The Reader/Writer interfaces let
// live-points substitute a sparse captured image for the full benchmark
// memory, with explicit visibility of "unavailable" words so the detailed
// simulator can implement the paper's wrong-path approximation.
package mem

// PageWords is the number of 64-bit words per page (4 KB pages).
const PageWords = 512

// PageBytes is the page size in bytes.
const PageBytes = PageWords * 8

// WordAlign masks a byte address down to its containing word.
func WordAlign(addr uint64) uint64 { return addr &^ 7 }

// PageOf returns the page number containing the byte address.
func PageOf(addr uint64) uint64 { return addr / PageBytes }

// Reader is the read side of a simulated memory. ReadWord reports ok=false
// when the word is not available in this image (possible only for sparse
// live-state images; full memories always report ok=true).
type Reader interface {
	ReadWord(addr uint64) (val uint64, ok bool)
}

// Writer is the write side of a simulated memory.
type Writer interface {
	WriteWord(addr uint64, val uint64)
}

// Memory is a full sparse memory: every address is readable (zero-filled).
type Memory struct {
	pages map[uint64]*[PageWords]uint64
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{pages: make(map[uint64]*[PageWords]uint64)}
}

// ReadWord returns the word at the (word-aligned) byte address. Reads of
// unmapped pages return zero. ok is always true.
func (m *Memory) ReadWord(addr uint64) (uint64, bool) {
	p := m.pages[PageOf(addr)]
	if p == nil {
		return 0, true
	}
	return p[(addr/8)%PageWords], true
}

// WriteWord stores the word at the (word-aligned) byte address, allocating
// the page on demand.
func (m *Memory) WriteWord(addr uint64, val uint64) {
	pn := PageOf(addr)
	p := m.pages[pn]
	if p == nil {
		p = new([PageWords]uint64)
		m.pages[pn] = p
	}
	p[(addr/8)%PageWords] = val
}

// Pages returns the number of allocated pages (the touched footprint).
func (m *Memory) Pages() int { return len(m.pages) }

// FootprintBytes returns the allocated footprint in bytes.
func (m *Memory) FootprintBytes() int64 { return int64(len(m.pages)) * PageBytes }

// Clone returns a deep copy of the memory. Used to snapshot architectural
// state for golden runs and checkpoint verification.
func (m *Memory) Clone() *Memory {
	c := New()
	for pn, p := range m.pages {
		cp := *p
		c.pages[pn] = &cp
	}
	return c
}

// Overlay is a copy-on-write view over a base Reader. Writes land in the
// overlay; reads prefer the overlay and fall back to the base. The detailed
// simulator runs every window on an overlay so that speculative and
// committed window execution never perturbs the base image, and the
// live-point creator uses an overlay to observe the set of words a window
// reads before writing (the live-state).
type Overlay struct {
	base   Reader
	writes map[uint64]uint64

	// observer, when non-nil, is invoked for the first read of each base
	// word (before any overlay write to it), with the value obtained and
	// whether the base had it. Live-state capture hooks in here.
	observer func(addr, val uint64, ok bool)
	seen     map[uint64]struct{}
}

// NewOverlay returns a copy-on-write view over base.
func NewOverlay(base Reader) *Overlay {
	return &Overlay{base: base, writes: make(map[uint64]uint64)}
}

// Observe registers fn to be called once per distinct word address on the
// first base read of that word. Passing nil disables observation.
func (o *Overlay) Observe(fn func(addr, val uint64, ok bool)) {
	o.observer = fn
	if fn != nil && o.seen == nil {
		o.seen = make(map[uint64]struct{})
	}
}

// ReadWord reads through the overlay. ok reflects the base's availability
// when the word has not been written locally.
func (o *Overlay) ReadWord(addr uint64) (uint64, bool) {
	a := WordAlign(addr)
	if v, hit := o.writes[a]; hit {
		return v, true
	}
	v, ok := o.base.ReadWord(a)
	if o.observer != nil {
		if _, dup := o.seen[a]; !dup {
			o.seen[a] = struct{}{}
			o.observer(a, v, ok)
		}
	}
	return v, ok
}

// WriteWord writes into the overlay only.
func (o *Overlay) WriteWord(addr uint64, val uint64) {
	o.writes[WordAlign(addr)] = val
}

// Dirty returns the number of locally written words.
func (o *Overlay) Dirty() int { return len(o.writes) }

// Reset discards all overlay writes and observation state, keeping the base.
func (o *Overlay) Reset() {
	clear(o.writes)
	if o.seen != nil {
		clear(o.seen)
	}
}

// Rebind resets the overlay and points it at a new base. Reusing one
// overlay (and its write/seen buckets) across many simulation windows
// keeps per-window setup allocation-free.
func (o *Overlay) Rebind(base Reader) {
	o.Reset()
	o.base = base
}

// Image is a sparse read-only memory image: exactly the words captured in a
// live-point. Reads of uncaptured words report ok=false; the detailed
// simulator substitutes zero and counts the event (the paper's
// "unavailable memory value" case).
type Image struct {
	words map[uint64]uint64
}

// NewImage returns an image over the given word map. The map is retained,
// not copied.
func NewImage(words map[uint64]uint64) *Image {
	if words == nil {
		words = make(map[uint64]uint64)
	}
	return &Image{words: words}
}

// ReadWord returns the captured word, or ok=false when absent.
func (im *Image) ReadWord(addr uint64) (uint64, bool) {
	v, ok := im.words[WordAlign(addr)]
	return v, ok
}

// Len returns the number of captured words.
func (im *Image) Len() int { return len(im.words) }

// Words exposes the underlying map (read-only by convention); used by the
// live-point encoder.
func (im *Image) Words() map[uint64]uint64 { return im.words }
