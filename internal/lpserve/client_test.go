package lpserve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fastRetry keeps the error-path tests quick without changing semantics.
var fastRetry = RetryPolicy{Max: 2, Base: time.Millisecond, Cap: 4 * time.Millisecond}

func testClient(t *testing.T, h http.HandlerFunc) *Client {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	c := New(ts.URL)
	c.Retry = fastRetry
	return c
}

// A persistent 5xx is retried Max times, then surfaces as a StatusError.
func TestClientRetriesServerErrors(t *testing.T) {
	var hits atomic.Int32
	c := testClient(t, func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "shard cache on fire", http.StatusInternalServerError)
	})
	err := c.Refresh(context.Background())
	if !IsStatus(err, http.StatusInternalServerError) {
		t.Fatalf("got %v, want wrapped 500", err)
	}
	if got, want := hits.Load(), int32(fastRetry.Max+1); got != want {
		t.Fatalf("server saw %d attempts, want %d", got, want)
	}
	if !strings.Contains(err.Error(), "shard cache on fire") {
		t.Fatalf("server message lost: %v", err)
	}
}

// A transient 5xx burst shorter than the retry budget is invisible to the
// caller.
func TestClientRetrySucceeds(t *testing.T) {
	var hits atomic.Int32
	c := testClient(t, func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"benchmark":"syn.gzip","points":7}`))
	})
	if err := c.Refresh(context.Background()); err != nil {
		t.Fatalf("refresh after transient 503s: %v", err)
	}
	if c.Stat().Points != 7 {
		t.Fatalf("stat not refreshed: %+v", c.Stat())
	}
	if hits.Load() != 3 {
		t.Fatalf("server saw %d attempts, want 3", hits.Load())
	}
}

// 4xx means the request itself is wrong; retrying would only repeat it.
func TestClientDoesNotRetryClientErrors(t *testing.T) {
	var hits atomic.Int32
	c := testClient(t, func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "no such shard", http.StatusNotFound)
	})
	_, err := c.ShardBlobs(context.Background(), 99)
	if !IsStatus(err, http.StatusNotFound) {
		t.Fatalf("got %v, want wrapped 404", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("server saw %d attempts for a 404, want 1", hits.Load())
	}
}

// A body that ends mid-element (server died while streaming) must be an
// error, not a short batch.
func TestClientTruncatedBody(t *testing.T) {
	c := testClient(t, func(w http.ResponseWriter, r *http.Request) {
		// A DER header promising 0x1000 content bytes, then nothing.
		w.Write([]byte{0x30, 0x82, 0x10, 0x00})
	})
	if _, err := c.FetchBatch(context.Background(), 0, 2); err == nil {
		t.Fatal("truncated batch body accepted")
	}
}

// Garbage JSON from a confused proxy must fail decode, not poison Stat.
func TestClientMalformedJSON(t *testing.T) {
	c := testClient(t, func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("<html>502 Bad Gateway</html>"))
	})
	err := c.Refresh(context.Background())
	if err == nil || !strings.Contains(err.Error(), "decoding response") {
		t.Fatalf("got %v, want a decode error", err)
	}
}

// Nothing listening: transport errors are retried, then reported.
func TestClientUnreachableHost(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler())
	url := ts.URL
	ts.Close() // the port is now dead
	c := New(url)
	c.Retry = fastRetry
	if err := c.Refresh(context.Background()); err == nil {
		t.Fatal("refresh against a dead port succeeded")
	}
	if _, err := Dial(url); err == nil {
		t.Fatal("dial against a dead port succeeded")
	}
}

// A cancelled context stops the retry loop immediately.
func TestClientContextCancel(t *testing.T) {
	c := testClient(t, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "busy", http.StatusServiceUnavailable)
	})
	c.Retry = RetryPolicy{Max: 50, Base: 10 * time.Millisecond, Cap: 10 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	err := c.Refresh(ctx)
	if err == nil {
		t.Fatal("refresh survived a cancelled context")
	}
	if elapsed := time.Since(t0); elapsed > 2*time.Second {
		t.Fatalf("retry loop ignored cancellation for %v", elapsed)
	}
}
