package lpserve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"livepoints/internal/livepoint"
	"livepoints/internal/lpstore"
	"livepoints/internal/obs"
)

// DefaultBatchPoints is the sequential client's ranged-fetch size.
const DefaultBatchPoints = 64

// DefaultTimeout bounds one request attempt (connect + headers + body)
// when Client.Timeout is unset.
const DefaultTimeout = 30 * time.Second

// RetryPolicy is a capped-exponential backoff schedule: a failed request
// is retried up to Max times, sleeping Base, 2·Base, 4·Base, ... between
// attempts, never more than Cap. Transport errors and 5xx statuses are
// retried; 4xx statuses are terminal (the request itself is wrong).
type RetryPolicy struct {
	Max  int
	Base time.Duration
	Cap  time.Duration
}

// DefaultRetry is the retry schedule clients start with.
var DefaultRetry = RetryPolicy{Max: 3, Base: 50 * time.Millisecond, Cap: 2 * time.Second}

// backoff returns the sleep before retry attempt i (0-based).
func (p RetryPolicy) backoff(i int) time.Duration {
	d := p.Base << uint(i)
	if p.Cap > 0 && d > p.Cap {
		d = p.Cap
	}
	return d
}

// StatusError is a non-2xx response from the server, preserved so callers
// can branch on the status code (e.g. a coordinator's 409/410 lease
// verdicts) with errors.As.
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("%d %s: %s", e.Code, http.StatusText(e.Code), e.Msg)
}

// retryable reports whether the failure may be transient: every 5xx is,
// anything else the server said is not.
func (e *StatusError) retryable() bool { return e.Code >= 500 }

// TransportError marks a failure that happened while moving bytes —
// connection refused or reset, DNS, per-attempt timeouts, a response
// severed mid-body — after the client's retry budget was exhausted.
// The server may never have seen the request, or may have processed it
// without the answer arriving; either way the outage is worth outwaiting,
// and cluster workers do (in contrast to a *ProtocolError, which is not).
type TransportError struct{ Err error }

func (e *TransportError) Error() string { return e.Err.Error() }
func (e *TransportError) Unwrap() error { return e.Err }

// ProtocolError marks a delivered but malformed response: the HTTP
// exchange succeeded with a 2xx status, yet the body did not hold what
// the protocol promised (garbage or truncated JSON, a DER stream that
// does not split, a checksum mismatch that survived retries). Retrying
// blindly risks spinning forever against a systematically corrupt peer,
// so callers treat it as fatal rather than as an outage.
type ProtocolError struct{ Err error }

func (e *ProtocolError) Error() string { return e.Err.Error() }
func (e *ProtocolError) Unwrap() error { return e.Err }

// Client talks to one lpserved instance. Its sources implement
// livepoint.Source and livepoint.ShardedSource, so remote libraries plug
// into the same runners as local files: serial runs pull ranged batches,
// parallel runs pull whole shards (stored gzip bytes, decompressed
// client-side).
//
// Every request runs under a context with a per-attempt timeout and is
// retried on transient failures with capped exponential backoff; tune
// Timeout and Retry before the first request. A Client is safe for
// concurrent use.
type Client struct {
	base string
	hc   *http.Client
	stat lpstore.Stat
	ctx  context.Context // base context for Source operations

	// BatchPoints is the number of points per ranged /v1/points request
	// (default DefaultBatchPoints).
	BatchPoints int
	// Timeout bounds each request attempt (default DefaultTimeout).
	Timeout time.Duration
	// Retry is the backoff schedule for transient failures.
	Retry RetryPolicy
	// Metrics receives the client's attempt/retry/outcome counters
	// (default obs.Default).
	Metrics *obs.Registry
}

// New returns a client without contacting the server; the first request
// (or Refresh) will. Sources created before Refresh see a zero Stat.
func New(baseURL string) *Client {
	return &Client{
		base:  strings.TrimRight(baseURL, "/"),
		hc:    &http.Client{},
		ctx:   context.Background(),
		Retry: DefaultRetry,
	}
}

// Dial checks the server is reachable and caches its /v1/stat.
func Dial(baseURL string) (*Client, error) {
	return DialContext(context.Background(), baseURL)
}

// DialContext is Dial with a caller context, which also becomes the base
// context for the client's Source streams.
func DialContext(ctx context.Context, baseURL string) (*Client, error) {
	c := New(baseURL)
	c.ctx = ctx
	if err := c.Refresh(ctx); err != nil {
		return nil, fmt.Errorf("lpserve: dialing %s: %w", baseURL, err)
	}
	return c, nil
}

// Refresh re-fetches and caches the server's /v1/stat.
func (c *Client) Refresh(ctx context.Context) error {
	return c.getJSON(ctx, "/v1/stat", &c.stat)
}

// Stat returns the served library's metadata.
func (c *Client) Stat() lpstore.Stat { return c.stat }

// Meta returns the served library's metadata as a livepoint.Meta.
func (c *Client) Meta() livepoint.Meta {
	return livepoint.Meta{
		Benchmark: c.stat.Benchmark,
		Count:     c.stat.Points,
		UnitLen:   c.stat.UnitLen,
		WarmLen:   c.stat.WarmLen,
		Shuffled:  c.stat.Shuffled,
	}
}

// Shards fetches the per-shard listing.
func (c *Client) Shards() ([]ShardStat, error) {
	var out []ShardStat
	if err := c.getJSON(c.ctx, "/v1/shards", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Source returns a fresh source over the remote library in read order.
func (c *Client) Source() livepoint.Source { return &remoteSource{c: c} }

// SetTransport replaces the client's underlying HTTP transport (nil
// restores the default). This is the hook internal/faultinject uses to
// splice a fault-injecting RoundTripper beneath the retry loop; call it
// before the first request.
func (c *Client) SetTransport(rt http.RoundTripper) { c.hc.Transport = rt }

// CloseIdle closes idle keep-alive connections. Harness code that cycles
// many clients against short-lived servers calls this at teardown so no
// connection goroutines outlive the run.
func (c *Client) CloseIdle() { c.hc.CloseIdleConnections() }

// timeout returns the per-attempt deadline.
func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return DefaultTimeout
}

// metrics returns the registry client counters land in.
func (c *Client) metrics() *obs.Registry {
	if c.Metrics != nil {
		return c.Metrics
	}
	return obs.Default
}

// cancelBody ties a per-attempt context's cancel to the response body's
// lifetime, so the timeout also bounds body reads.
type cancelBody struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelBody) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}

// do issues one request with per-attempt timeouts and capped-exponential
// retry. A 2xx response is returned with its body open (Close releases the
// attempt's context); any other outcome becomes an error, wrapping a
// *StatusError when the server answered.
func (c *Client) do(ctx context.Context, method, path string, body []byte, contentType string) (*http.Response, error) {
	reg := c.metrics()
	var lastErr error
	for attempt := 0; ; attempt++ {
		reg.Counter("lpserve_client_attempts_total", "Request attempts, including retries.").Inc()
		rctx, cancel := context.WithTimeout(ctx, c.timeout())
		req, err := http.NewRequestWithContext(rctx, method, c.base+path, bytes.NewReader(body))
		if err != nil {
			cancel()
			return nil, fmt.Errorf("lpserve: %s %s: %w", method, path, err)
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := c.hc.Do(req)
		switch {
		case err != nil:
			cancel()
			reg.Counter("lpserve_client_transport_errors_total", "Attempts that failed before an HTTP status arrived.").Inc()
			if errors.Is(err, context.DeadlineExceeded) {
				reg.Counter("lpserve_client_timeouts_total", "Attempts that hit the per-attempt timeout.").Inc()
			}
			lastErr = err
		case resp.StatusCode/100 == 2:
			reg.Counter("lpserve_client_responses_total", "Server responses by status code.",
				"code", strconv.Itoa(resp.StatusCode)).Inc()
			resp.Body = &cancelBody{ReadCloser: resp.Body, cancel: cancel}
			return resp, nil
		default:
			reg.Counter("lpserve_client_responses_total", "Server responses by status code.",
				"code", strconv.Itoa(resp.StatusCode)).Inc()
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			cancel()
			se := &StatusError{Code: resp.StatusCode, Msg: string(bytes.TrimSpace(msg))}
			lastErr = se
			if !se.retryable() {
				return nil, fmt.Errorf("lpserve: %s %s: %w", method, path, se)
			}
		}
		if attempt >= c.Retry.Max {
			var se *StatusError
			if !errors.As(lastErr, &se) {
				// Only transport-level failures reach here untyped; tag
				// them so callers can tell an outage from a protocol fault.
				lastErr = &TransportError{Err: lastErr}
			}
			return nil, fmt.Errorf("lpserve: %s %s (after %d attempts): %w", method, path, attempt+1, lastErr)
		}
		reg.Counter("lpserve_client_retries_total", "Attempts re-issued after a transient failure.").Inc()
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("lpserve: %s %s: %w", method, path, ctx.Err())
		case <-time.After(c.Retry.backoff(attempt)):
		}
	}
}

func (c *Client) get(ctx context.Context, path string) (*http.Response, error) {
	return c.do(ctx, http.MethodGet, path, nil, "")
}

func (c *Client) getJSON(ctx context.Context, path string, v any) error {
	resp, err := c.get(ctx, path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return fmt.Errorf("lpserve: GET %s: decoding response: %w", path, &ProtocolError{Err: err})
	}
	return nil
}

// DoJSON issues a JSON request under the client's timeout and retry
// policy and decodes the JSON response into out (out == nil discards the
// body). Cluster workers drive their coordinator through this.
func (c *Client) DoJSON(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("lpserve: %s %s: encoding request: %w", method, path, err)
		}
	}
	resp, err := c.do(ctx, method, path, body, "application/json")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("lpserve: %s %s: decoding response: %w", method, path, &ProtocolError{Err: err})
	}
	return nil
}

func (c *Client) batchPoints() int {
	if c.BatchPoints <= 0 {
		return DefaultBatchPoints
	}
	if c.BatchPoints > MaxBatchPoints {
		// The server clamps responses to MaxBatchPoints; asking for more
		// would desynchronize the batch walk.
		return MaxBatchPoints
	}
	return c.BatchPoints
}

// FetchBatch pulls the blobs at read-order positions [start, start+count)
// and splits the concatenated DER response. The body is verified against
// the server's integrity checksum (PointsCRCHeader) when present, and a
// failure after the headers arrived — truncation, corruption, a DER
// stream that does not split — is refetched under the client's retry
// policy: the connection-level retry in do only covers failures up to the
// status line, so without this loop one flipped bit in a response body
// would either kill the caller or, worse, fold silently wrong data.
func (c *Client) FetchBatch(ctx context.Context, start, count int) ([][]byte, error) {
	reg := c.metrics()
	var lastErr error
	for attempt := 0; ; attempt++ {
		blobs, err := c.fetchBatchOnce(ctx, start, count)
		if err == nil {
			return blobs, nil
		}
		var se *StatusError
		if errors.As(err, &se) {
			return nil, err // a server verdict; do already retried 5xx
		}
		lastErr = err
		if attempt >= c.Retry.Max {
			var pe *ProtocolError
			if !errors.As(lastErr, &pe) {
				lastErr = &TransportError{Err: lastErr}
			}
			return nil, fmt.Errorf("lpserve: batch [%d,%d) (after %d attempts): %w",
				start, start+count, attempt+1, lastErr)
		}
		reg.Counter("lpserve_client_body_retries_total", "Responses refetched after a mid-body failure (truncation, corruption, checksum mismatch).").Inc()
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("lpserve: batch [%d,%d): %w", start, start+count, ctx.Err())
		case <-time.After(c.Retry.backoff(attempt)):
		}
	}
}

// fetchBatchOnce is one attempt at a ranged fetch: download, checksum,
// split.
func (c *Client) fetchBatchOnce(ctx context.Context, start, count int) ([][]byte, error) {
	resp, err := c.get(ctx, fmt.Sprintf("/v1/points?start=%d&count=%d", start, count))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(bufio.NewReaderSize(resp.Body, 1<<20))
	if err != nil {
		return nil, fmt.Errorf("lpserve: batch [%d,%d): reading body: %w", start, start+count, err)
	}
	if h := resp.Header.Get(PointsCRCHeader); h != "" {
		want, err := strconv.ParseUint(h, 16, 32)
		if err != nil {
			return nil, fmt.Errorf("lpserve: batch [%d,%d): bad %s header %q: %w",
				start, start+count, PointsCRCHeader, h, &ProtocolError{Err: err})
		}
		if got := crc32.ChecksumIEEE(body); got != uint32(want) {
			c.metrics().Counter("lpserve_client_integrity_failures_total", "Response bodies whose integrity checksum did not match.").Inc()
			return nil, fmt.Errorf("lpserve: batch [%d,%d): %w", start, start+count,
				&ProtocolError{Err: fmt.Errorf("body crc %08x, server sent %08x", got, want)})
		}
	}
	br := bufio.NewReader(bytes.NewReader(body))
	blobs := make([][]byte, 0, count)
	for i := 0; i < count; i++ {
		b, err := livepoint.ReadElement(br)
		if err != nil {
			return nil, fmt.Errorf("lpserve: batch [%d,%d): point %d: %w", start, start+count, i, err)
		}
		blobs = append(blobs, b)
	}
	return blobs, nil
}

// FetchRange pulls the blobs at read-order positions [start, start+count)
// with no upper bound on count: the range is fetched in server-acceptable
// chunks (MaxBatchPoints, or BatchPoints when set lower). FetchBatch
// callers must keep count within MaxBatchPoints — the server silently
// clamps larger requests, truncating the batch — so ranges that may
// exceed the cap (e.g. cluster range leases) go through here.
func (c *Client) FetchRange(ctx context.Context, start, count int) ([][]byte, error) {
	chunk := c.BatchPoints
	if chunk <= 0 || chunk > MaxBatchPoints {
		chunk = MaxBatchPoints
	}
	blobs := make([][]byte, 0, count)
	for off := 0; off < count; {
		n := count - off
		if n > chunk {
			n = chunk
		}
		part, err := c.FetchBatch(ctx, start+off, n)
		if err != nil {
			return nil, err
		}
		blobs = append(blobs, part...)
		off += n
	}
	return blobs, nil
}

// ShardBlobs fetches one shard — its read-order index, then its stored
// gzip bytes (the server does byte copies only) — inflates it locally,
// and returns the shard's point blobs in read order. The gzip CRC trailer
// verifies the shard bytes end to end; a body that fails to inflate or
// checksum (connection lost mid-stream, bytes damaged en route) is
// refetched under the client's retry policy rather than surfaced from a
// single unlucky attempt.
func (c *Client) ShardBlobs(ctx context.Context, sh int) ([][]byte, error) {
	reg := c.metrics()
	var lastErr error
	for attempt := 0; ; attempt++ {
		blobs, err := c.shardBlobsOnce(ctx, sh)
		if err == nil {
			return blobs, nil
		}
		var se *StatusError
		if errors.As(err, &se) {
			return nil, err
		}
		lastErr = err
		if attempt >= c.Retry.Max {
			var pe *ProtocolError
			if !errors.As(lastErr, &pe) {
				lastErr = &TransportError{Err: lastErr}
			}
			return nil, fmt.Errorf("lpserve: shard %d (after %d attempts): %w", sh, attempt+1, lastErr)
		}
		reg.Counter("lpserve_client_body_retries_total", "Responses refetched after a mid-body failure (truncation, corruption, checksum mismatch).").Inc()
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("lpserve: shard %d: %w", sh, ctx.Err())
		case <-time.After(c.Retry.backoff(attempt)):
		}
	}
}

// shardBlobsOnce is one attempt at a whole-shard fetch.
func (c *Client) shardBlobsOnce(ctx context.Context, sh int) ([][]byte, error) {
	var spans []lpstore.Span
	if err := c.getJSON(ctx, fmt.Sprintf("/v1/shards/%d/index", sh), &spans); err != nil {
		return nil, err
	}
	resp, err := c.get(ctx, fmt.Sprintf("/v1/shards/%d", sh))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	gz, err := livepoint.AcquireGzipReader(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("lpserve: shard %d: %w", sh, err)
	}
	defer livepoint.ReleaseGzipReader(gz)
	data, err := io.ReadAll(gz)
	if err != nil {
		return nil, fmt.Errorf("lpserve: shard %d: inflating: %w", sh, err)
	}
	blobs := make([][]byte, len(spans))
	for i, sp := range spans {
		if sp.Off < 0 || sp.Off+int64(sp.Len) > int64(len(data)) {
			return nil, fmt.Errorf("lpserve: shard %d: %w", sh, &ProtocolError{
				Err: fmt.Errorf("span [%d,%d) exceeds shard length %d", sp.Off, sp.Off+int64(sp.Len), len(data))})
		}
		blobs[i] = data[sp.Off : sp.Off+int64(sp.Len)]
	}
	return blobs, nil
}

// remoteSource streams the library sequentially through ranged batches and
// exposes shards for parallel pulls.
type remoteSource struct {
	c   *Client
	pos int // next read-order position to fetch
	buf [][]byte
}

func (s *remoteSource) Meta() livepoint.Meta { return s.c.Meta() }

func (s *remoteSource) NextBlob() ([]byte, error) {
	if len(s.buf) == 0 {
		if s.pos >= s.c.stat.Points {
			return nil, io.EOF
		}
		n := s.c.batchPoints()
		if s.pos+n > s.c.stat.Points {
			n = s.c.stat.Points - s.pos
		}
		blobs, err := s.c.FetchBatch(s.c.ctx, s.pos, n)
		if err != nil {
			return nil, err
		}
		s.buf = blobs
		s.pos += n
	}
	b := s.buf[0]
	s.buf = s.buf[1:]
	return b, nil
}

func (s *remoteSource) Close() error {
	s.buf = nil
	s.c.hc.CloseIdleConnections()
	return nil
}

func (s *remoteSource) NumShards() int { return s.c.stat.Shards }

// OpenShard fetches one shard through the raw-gzip passthrough fast path
// and yields its points in read order.
func (s *remoteSource) OpenShard(sh int) (livepoint.Source, error) {
	blobs, err := s.c.ShardBlobs(s.c.ctx, sh)
	if err != nil {
		return nil, err
	}
	return &blobSource{meta: s.c.Meta(), blobs: blobs}, nil
}

// blobSource yields an already-fetched slice of blobs in order.
type blobSource struct {
	meta  livepoint.Meta
	blobs [][]byte
	pos   int
}

func (s *blobSource) Meta() livepoint.Meta { return s.meta }

func (s *blobSource) NextBlob() ([]byte, error) {
	if s.pos >= len(s.blobs) {
		return nil, io.EOF
	}
	b := s.blobs[s.pos]
	s.pos++
	return b, nil
}

func (s *blobSource) Close() error {
	s.blobs = nil
	return nil
}

// IsStatus reports whether err wraps a *StatusError with the given code.
func IsStatus(err error, code int) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Code == code
}
