package lpserve

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"livepoints/internal/livepoint"
	"livepoints/internal/lpstore"
)

// DefaultBatchPoints is the sequential client's ranged-fetch size.
const DefaultBatchPoints = 64

// Client talks to one lpserved instance. Its sources implement
// livepoint.Source and livepoint.ShardedSource, so remote libraries plug
// into the same runners as local files: serial runs pull ranged batches,
// parallel runs pull whole shards (stored gzip bytes, decompressed
// client-side).
type Client struct {
	base string
	hc   *http.Client
	stat lpstore.Stat

	// BatchPoints is the number of points per ranged /v1/points request
	// (default DefaultBatchPoints).
	BatchPoints int
}

// Dial checks the server is reachable and caches its /v1/stat.
func Dial(baseURL string) (*Client, error) {
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: &http.Client{}}
	if err := c.getJSON("/v1/stat", &c.stat); err != nil {
		return nil, fmt.Errorf("lpserve: dialing %s: %w", baseURL, err)
	}
	return c, nil
}

// Stat returns the served library's metadata.
func (c *Client) Stat() lpstore.Stat { return c.stat }

// Meta returns the served library's metadata as a livepoint.Meta.
func (c *Client) Meta() livepoint.Meta {
	return livepoint.Meta{
		Benchmark: c.stat.Benchmark,
		Count:     c.stat.Points,
		UnitLen:   c.stat.UnitLen,
		WarmLen:   c.stat.WarmLen,
		Shuffled:  c.stat.Shuffled,
	}
}

// Shards fetches the per-shard listing.
func (c *Client) Shards() ([]ShardStat, error) {
	var out []ShardStat
	if err := c.getJSON("/v1/shards", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Source returns a fresh source over the remote library in read order.
func (c *Client) Source() livepoint.Source { return &remoteSource{c: c} }

func (c *Client) get(path string) (*http.Response, error) {
	resp, err := c.hc.Get(c.base + path)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		return nil, fmt.Errorf("lpserve: GET %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	return resp, nil
}

func (c *Client) getJSON(path string, v any) error {
	resp, err := c.get(path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

func (c *Client) batchPoints() int {
	if c.BatchPoints <= 0 {
		return DefaultBatchPoints
	}
	if c.BatchPoints > MaxBatchPoints {
		// The server clamps responses to MaxBatchPoints; asking for more
		// would desynchronize the batch walk.
		return MaxBatchPoints
	}
	return c.BatchPoints
}

// fetchBatch pulls the blobs at read-order positions [start, start+count)
// and splits the concatenated DER response.
func (c *Client) fetchBatch(start, count int) ([][]byte, error) {
	resp, err := c.get(fmt.Sprintf("/v1/points?start=%d&count=%d", start, count))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	br := bufio.NewReaderSize(resp.Body, 1<<20)
	blobs := make([][]byte, 0, count)
	for i := 0; i < count; i++ {
		b, err := livepoint.ReadElement(br)
		if err != nil {
			return nil, fmt.Errorf("lpserve: batch [%d,%d): point %d: %w", start, start+count, i, err)
		}
		blobs = append(blobs, b)
	}
	return blobs, nil
}

// remoteSource streams the library sequentially through ranged batches and
// exposes shards for parallel pulls.
type remoteSource struct {
	c   *Client
	pos int // next read-order position to fetch
	buf [][]byte
}

func (s *remoteSource) Meta() livepoint.Meta { return s.c.Meta() }

func (s *remoteSource) NextBlob() ([]byte, error) {
	if len(s.buf) == 0 {
		if s.pos >= s.c.stat.Points {
			return nil, io.EOF
		}
		n := s.c.batchPoints()
		if s.pos+n > s.c.stat.Points {
			n = s.c.stat.Points - s.pos
		}
		blobs, err := s.c.fetchBatch(s.pos, n)
		if err != nil {
			return nil, err
		}
		s.buf = blobs
		s.pos += n
	}
	b := s.buf[0]
	s.buf = s.buf[1:]
	return b, nil
}

func (s *remoteSource) Close() error {
	s.buf = nil
	s.c.hc.CloseIdleConnections()
	return nil
}

func (s *remoteSource) NumShards() int { return s.c.stat.Shards }

// OpenShard fetches one shard's read-order index and its stored gzip
// bytes, inflates them locally, and yields the points — the passthrough
// fast path: the server does byte copies only.
func (s *remoteSource) OpenShard(sh int) (livepoint.Source, error) {
	var spans []lpstore.Span
	if err := s.c.getJSON(fmt.Sprintf("/v1/shards/%d/index", sh), &spans); err != nil {
		return nil, err
	}
	resp, err := s.c.get(fmt.Sprintf("/v1/shards/%d", sh))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	gz, err := gzip.NewReader(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("lpserve: shard %d: %w", sh, err)
	}
	defer gz.Close()
	data, err := io.ReadAll(gz)
	if err != nil {
		return nil, fmt.Errorf("lpserve: shard %d: inflating: %w", sh, err)
	}
	return &remoteShardSource{meta: s.c.Meta(), data: data, spans: spans}, nil
}

// remoteShardSource yields one fetched shard's points in read order.
type remoteShardSource struct {
	meta  livepoint.Meta
	data  []byte
	spans []lpstore.Span
	pos   int
}

func (s *remoteShardSource) Meta() livepoint.Meta { return s.meta }

func (s *remoteShardSource) NextBlob() ([]byte, error) {
	if s.pos >= len(s.spans) {
		return nil, io.EOF
	}
	sp := s.spans[s.pos]
	if sp.Off < 0 || sp.Off+int64(sp.Len) > int64(len(s.data)) {
		return nil, fmt.Errorf("lpserve: shard span [%d,%d) exceeds shard length %d", sp.Off, sp.Off+int64(sp.Len), len(s.data))
	}
	s.pos++
	return s.data[sp.Off : sp.Off+int64(sp.Len)], nil
}

func (s *remoteShardSource) Close() error {
	s.data = nil
	return nil
}
