package lpserve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"livepoints/internal/asn1der"
	"livepoints/internal/bpred"
	"livepoints/internal/livepoint"
	"livepoints/internal/lpstore"
	"livepoints/internal/obs"
	"livepoints/internal/prog"
	"livepoints/internal/sampling"
	"livepoints/internal/uarch"
	"livepoints/internal/warm"
)

// buildRealLibrary creates a small real live-point library and returns the
// encoded blobs in creation order.
func buildRealLibrary(t *testing.T, name string, scale float64, stride int) (livepoint.Meta, [][]byte) {
	t.Helper()
	cfg := uarch.Config8Way()
	spec, err := prog.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	p := prog.Generate(spec, scale)
	benchLen, err := warm.BenchLength(p, p.TargetLen*4+1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	design, err := sampling.NewSystematic(benchLen, uarch.MeasureLen, uint64(cfg.DetailedWarm), stride, 1)
	if err != nil {
		t.Fatal(err)
	}
	opts := livepoint.CreateOpts{MaxHier: cfg.Hier, Preds: []bpred.Config{cfg.BP}}
	var blobs [][]byte
	err = livepoint.Create(p, design, opts, func(lp *livepoint.LivePoint) error {
		b, _ := livepoint.Encode(lp)
		blobs = append(blobs, b)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	meta := livepoint.Meta{Benchmark: name, UnitLen: design.UnitLen, WarmLen: design.WarmLen}
	return meta, blobs
}

// TestServeParity is the subsystem's acceptance check: the same library
// must produce a bit-equal Estimate whether simulated from the v1 file,
// the migrated v2 store, or over lpserve on localhost.
func TestServeParity(t *testing.T) {
	cfg := uarch.Config8Way()
	meta, blobs := buildRealLibrary(t, "syn.gzip", 0.01, 20)

	dir := t.TempDir()
	v1raw := filepath.Join(dir, "raw.lplib")
	v1 := filepath.Join(dir, "v1.lplib")
	v2 := filepath.Join(dir, "v2.lplib")
	if _, err := livepoint.WriteLibrary(v1raw, meta, blobs); err != nil {
		t.Fatal(err)
	}
	if err := livepoint.ShuffleFile(v1raw, v1, 0x11E9); err != nil {
		t.Fatal(err)
	}
	if _, err := lpstore.Migrate(v1, v2, lpstore.WriteOpts{ShardPoints: 5}); err != nil {
		t.Fatal(err)
	}

	opts := livepoint.RunOpts{Cfg: cfg}
	fromV1, err := livepoint.RunFile(v1, opts)
	if err != nil {
		t.Fatal(err)
	}
	fromV2, err := livepoint.RunFile(v2, opts)
	if err != nil {
		t.Fatal(err)
	}

	st, err := lpstore.Open(v2)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ts := httptest.NewServer(NewServer(st).Handler())
	defer ts.Close()
	client, err := Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	client.BatchPoints = 7 // force several ranged fetches
	fromRemote, err := livepoint.RunSource(client.Source(), opts)
	if err != nil {
		t.Fatal(err)
	}

	if fromV1.Processed != fromV2.Processed || fromV1.Processed != fromRemote.Processed {
		t.Fatalf("processed: v1 %d, v2 %d, remote %d",
			fromV1.Processed, fromV2.Processed, fromRemote.Processed)
	}
	if !reflect.DeepEqual(fromV1.Est, fromV2.Est) {
		t.Fatalf("v2 estimate not bit-equal to v1: %.9f vs %.9f", fromV2.Est.Mean(), fromV1.Est.Mean())
	}
	if !reflect.DeepEqual(fromV1.Est, fromRemote.Est) {
		t.Fatalf("remote estimate not bit-equal to v1: %.9f vs %.9f", fromRemote.Est.Mean(), fromV1.Est.Mean())
	}

	// Parallel runs fold in completion order: same set of points, mean
	// equal to rounding.
	parV2, err := livepoint.RunFile(v2, livepoint.RunOpts{Cfg: cfg, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	parRemote, err := livepoint.RunSource(client.Source(), livepoint.RunOpts{Cfg: cfg, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []*livepoint.RunResult{parV2, parRemote} {
		if par.Processed != fromV1.Processed {
			t.Fatalf("parallel processed %d, want %d", par.Processed, fromV1.Processed)
		}
		if math.Abs(par.Est.Mean()-fromV1.Est.Mean()) > 1e-12 {
			t.Fatalf("parallel mean %.12f differs from serial %.12f", par.Est.Mean(), fromV1.Est.Mean())
		}
	}

	// Matched-pair over the remote source.
	exp := cfg
	exp.Name = "slow-mem"
	exp.Hier.MemLat = 200
	mrLocal, err := livepoint.RunMatchedFile(v2, livepoint.MatchedOpts{Base: cfg, Exp: exp, Z: sampling.Z997})
	if err != nil {
		t.Fatal(err)
	}
	mrRemote, err := livepoint.RunMatchedSource(client.Source(), livepoint.MatchedOpts{Base: cfg, Exp: exp, Z: sampling.Z997})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mrLocal.MP, mrRemote.MP) {
		t.Fatalf("remote matched pair differs: Δ %.9f vs %.9f", mrRemote.MP.MeanDelta(), mrLocal.MP.MeanDelta())
	}
}

// synthStore builds a store of synthetic DER blobs for protocol tests.
func synthStore(t *testing.T, n, shardPoints int) (*lpstore.Store, [][]byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	blobs := make([][]byte, n)
	for i := range blobs {
		payload := make([]byte, 50+rng.Intn(200))
		rng.Read(payload)
		b := asn1der.NewBuilder()
		b.OctetString(payload)
		blobs[i] = b.Bytes()
	}
	path := filepath.Join(t.TempDir(), "synth.lplib")
	meta := livepoint.Meta{Benchmark: "syn.protocol", UnitLen: 10, WarmLen: 20, Shuffled: true}
	if _, err := lpstore.Write(path, meta, blobs, lpstore.WriteOpts{ShardPoints: shardPoints}); err != nil {
		t.Fatal(err)
	}
	st, err := lpstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st, blobs
}

func TestEndpoints(t *testing.T) {
	st, blobs := synthStore(t, 23, 4)
	ts := httptest.NewServer(NewServer(st).Handler())
	defer ts.Close()

	// Stat.
	var stat lpstore.Stat
	resp, err := http.Get(ts.URL + "/v1/stat")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stat); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stat.Points != 23 || stat.Shards != 6 || !stat.Shuffled || stat.Benchmark != "syn.protocol" {
		t.Fatalf("stat %+v", stat)
	}

	// Shard listing.
	client, err := Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	shards, err := client.Shards()
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 6 {
		t.Fatalf("%d shards, want 6", len(shards))
	}
	var totalPoints int
	for _, sh := range shards {
		totalPoints += sh.Points
	}
	if totalPoints != 23 {
		t.Fatalf("shards list %d points, want 23", totalPoints)
	}

	// Ranged fetch with clamping.
	resp, err = http.Get(ts.URL + "/v1/points?start=20&count=50")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Lplib-Points"); got != "3" {
		t.Fatalf("clamped batch returned %s points, want 3", got)
	}
	if want := bytes.Join(blobs[20:23], nil); !bytes.Equal(body, want) {
		t.Fatal("ranged fetch body mismatch")
	}

	// Error statuses.
	for path, want := range map[string]int{
		"/v1/points?start=-1&count=5": http.StatusBadRequest,
		"/v1/points?start=0&count=0":  http.StatusBadRequest,
		"/v1/points?start=99&count=1": http.StatusNotFound,
		"/v1/shards/99":               http.StatusNotFound,
		"/v1/shards/x":                http.StatusBadRequest,
		"/v1/shards/99/index":         http.StatusNotFound,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s: status %d, want %d", path, resp.StatusCode, want)
		}
	}

	// Shard passthrough bytes must equal the stored raw bytes.
	raw, n, err := st.ShardRaw(2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := io.ReadAll(raw)
	if err != nil || int64(len(want)) != n {
		t.Fatalf("raw shard read: %d bytes, %v", len(want), err)
	}
	resp, err = http.Get(ts.URL + "/v1/shards/2")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(got, want) {
		t.Fatal("shard endpoint did not pass stored gzip bytes through verbatim")
	}

	// Client shard source covers all points exactly once, in read order.
	src := client.Source().(livepoint.ShardedSource)
	var count int
	for s := 0; s < src.NumShards(); s++ {
		sub, err := src.OpenShard(s)
		if err != nil {
			t.Fatal(err)
		}
		for {
			b, err := sub.NextBlob()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(b) == 0 {
				t.Fatal("empty blob from shard source")
			}
			count++
		}
		sub.Close()
	}
	if count != 23 {
		t.Fatalf("shard sources yielded %d points, want 23", count)
	}
}

// TestFetchRangeBeyondBatchCap covers ranges larger than one /v1/points
// response may carry: the server silently clamps a single batch at
// MaxBatchPoints (so FetchBatch desynchronizes), while FetchRange walks
// the range in server-acceptable chunks and returns every blob.
func TestFetchRangeBeyondBatchCap(t *testing.T) {
	const n = MaxBatchPoints + 150
	st, blobs := synthStore(t, n, 512)
	ts := httptest.NewServer(NewServer(st).Handler())
	defer ts.Close()
	cl, err := Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	if _, err := cl.FetchBatch(ctx, 0, n); err == nil {
		t.Fatal("FetchBatch beyond MaxBatchPoints succeeded; the server clamp should have truncated it")
	}

	got, err := cl.FetchRange(ctx, 0, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("FetchRange returned %d blobs, want %d", len(got), n)
	}
	for i := range got {
		if !bytes.Equal(got[i], blobs[i]) {
			t.Fatalf("blob %d mismatch", i)
		}
	}

	// An offset sub-range crossing a chunk boundary (small BatchPoints
	// forces several chunks).
	cl.BatchPoints = 100
	got, err = cl.FetchRange(ctx, 37, 333)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 333 {
		t.Fatalf("offset FetchRange returned %d blobs, want 333", len(got))
	}
	for i := range got {
		if !bytes.Equal(got[i], blobs[37+i]) {
			t.Fatalf("offset blob %d mismatch", i)
		}
	}
}

// TestMetricsEndpoint scrapes /metrics after a few requests and checks
// the per-endpoint series and the exposition format headers.
func TestMetricsEndpoint(t *testing.T) {
	st, _ := synthStore(t, 12, 4)
	reg := obs.NewRegistry()
	ts := httptest.NewServer(NewServerWithMetrics(st, reg).Handler())
	defer ts.Close()

	for _, p := range []string{
		"/v1/stat",
		"/v1/points?start=0&count=5",
		"/v1/points?start=-1&count=2", // 400: error statuses get their own series
		"/v1/shards/0",
	} {
		resp, err := http.Get(ts.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type %q lacks exposition version", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE lpserve_http_requests_total counter",
		`lpserve_http_requests_total{endpoint="GET /v1/stat",code="200"} 1`,
		`lpserve_http_requests_total{endpoint="GET /v1/points",code="200"} 1`,
		`lpserve_http_requests_total{endpoint="GET /v1/points",code="400"} 1`,
		`lpserve_http_requests_total{endpoint="GET /v1/shards/{id}",code="200"} 1`,
		"# TYPE lpserve_http_request_seconds histogram",
		`lpserve_http_request_seconds_bucket{endpoint="GET /v1/stat",le="+Inf"} 1`,
		`lpserve_http_request_seconds_count{endpoint="GET /v1/stat"} 1`,
		`lpserve_http_response_bytes_total{endpoint="GET /v1/points"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestClientRetryMetrics checks the client's outcome counters: a 503
// retried into a 200 counts two attempts, one retry, and one response per
// status; a 4xx is terminal and not retried.
func TestClientRetryMetrics(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/missing" {
			http.Error(w, "no", http.StatusNotFound)
			return
		}
		if calls.Add(1) == 1 {
			http.Error(w, "busy", http.StatusServiceUnavailable)
			return
		}
		writeJSON(w, map[string]bool{"ok": true})
	}))
	defer ts.Close()

	reg := obs.NewRegistry()
	cl := New(ts.URL)
	cl.Metrics = reg
	cl.Retry = RetryPolicy{Max: 3, Base: time.Millisecond, Cap: time.Millisecond}

	ctx := context.Background()
	var out map[string]bool
	if err := cl.DoJSON(ctx, http.MethodGet, "/flaky", nil, &out); err != nil {
		t.Fatal(err)
	}
	if !out["ok"] {
		t.Fatalf("unexpected body: %+v", out)
	}
	if err := cl.DoJSON(ctx, http.MethodGet, "/missing", nil, nil); !IsStatus(err, http.StatusNotFound) {
		t.Fatalf("GET /missing: %v, want 404", err)
	}

	checks := map[*obs.Counter]uint64{
		reg.Counter("lpserve_client_attempts_total", ""):                 3, // 503, 200, 404
		reg.Counter("lpserve_client_retries_total", ""):                  1,
		reg.Counter("lpserve_client_responses_total", "", "code", "503"): 1,
		reg.Counter("lpserve_client_responses_total", "", "code", "200"): 1,
		reg.Counter("lpserve_client_responses_total", "", "code", "404"): 1,
		reg.Counter("lpserve_client_transport_errors_total", ""):         0,
	}
	for c, want := range checks {
		if got := c.Value(); got != want {
			t.Errorf("counter value %d, want %d", got, want)
		}
	}
}

// TestConcurrentServeShutdown races Serve against Shutdown (run under
// -race): whichever wins, both must return cleanly.
func TestConcurrentServeShutdown(t *testing.T) {
	st, _ := synthStore(t, 8, 4)
	for i := 0; i < 25; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServerWithMetrics(st, obs.NewRegistry())
		served := make(chan error, 1)
		shut := make(chan error, 1)
		go func() { served <- srv.Serve(l) }()
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			shut <- srv.Shutdown(ctx)
		}()
		if err := <-served; err != nil {
			t.Fatalf("iteration %d: Serve: %v", i, err)
		}
		if err := <-shut; err != nil {
			t.Fatalf("iteration %d: Shutdown: %v", i, err)
		}
		l.Close()
	}
}

// TestGracefulShutdown starts a real listener, serves one request, and
// checks Shutdown drains cleanly.
func TestGracefulShutdown(t *testing.T) {
	st, _ := synthStore(t, 8, 4)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(st)
	served := make(chan error, 1)
	go func() { served <- srv.Serve(l) }()

	client, err := Dial("http://" + l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if client.Stat().Points != 8 {
		t.Fatalf("stat over real listener: %+v", client.Stat())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v after graceful shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
}
