// Package lpserve streams live-points from a sharded v2 store
// (internal/lpstore) to remote simulation workers over HTTP — the serving
// half of the scale-out story: one lpserved process owns the library file;
// fleets of lpsim workers pull points or whole shards on demand.
//
// Wire surface (all under /v1):
//
//	GET /v1/stat              library metadata (JSON lpstore.Stat)
//	GET /v1/shards            per-shard listing (JSON []ShardStat)
//	GET /v1/shards/{id}       one shard's stored gzip bytes, verbatim —
//	                          the store's compression passes straight
//	                          through; the server never recompresses
//	GET /v1/shards/{id}/index the shard's read order as (off,len) spans
//	                          into its uncompressed stream (JSON []Span)
//	GET /v1/points?start=&count=
//	                          ranged batch fetch: concatenated DER blobs
//	                          at read-order positions [start,start+count)
//	GET /metrics              Prometheus text-format metrics (internal/obs)
//
// Point blobs are self-delimiting DER elements, so batch responses need no
// framing; clients split them with livepoint.ReadElement.
//
// Every /v1 endpoint — including those a cluster coordinator mounts via
// Extend — is instrumented: request counts by status, latency histograms,
// and response bytes, all labeled by route pattern and exposed on
// GET /metrics.
package lpserve

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"net"
	"net/http"
	"strconv"
	"time"

	"livepoints/internal/lpstore"
	"livepoints/internal/obs"
)

// ShardStat describes one shard in the /v1/shards listing.
type ShardStat struct {
	ID                int   `json:"id"`
	Points            int   `json:"points"`
	CompressedBytes   int64 `json:"compressedBytes"`
	UncompressedBytes int64 `json:"uncompressedBytes"`
}

// MaxBatchPoints caps a single /v1/points response.
const MaxBatchPoints = 4096

// PointsCRCHeader carries the IEEE CRC32 (lowercase hex) of a /v1/points
// response body. Shard downloads are already covered end to end by the
// gzip stream checksum, but ranged batches are raw DER concatenations
// with no integrity layer of their own — a bit flipped between the store
// and a worker would otherwise decode into a plausible live-point and
// fold silently wrong data into the estimate. Clients verify when the
// header is present (older servers simply omit it).
const PointsCRCHeader = "X-Lplib-Crc32"

// Server serves one live-point store over HTTP.
type Server struct {
	st  *lpstore.Store
	mux *http.ServeMux
	hs  *http.Server
	reg *obs.Registry
}

// NewServer builds a server over an open store, registering metrics in
// the process-wide obs.Default registry. The store must outlive the
// server.
func NewServer(st *lpstore.Store) *Server {
	return NewServerWithMetrics(st, obs.Default)
}

// NewServerWithMetrics is NewServer with a caller-owned metrics registry
// (tests isolate their series this way).
func NewServerWithMetrics(st *lpstore.Store, reg *obs.Registry) *Server {
	s := &Server{st: st, mux: http.NewServeMux(), reg: reg}
	// The http.Server is built here, not in Serve, so a concurrent
	// Serve/Shutdown pair never races on the field.
	s.hs = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	s.Extend("GET /v1/stat", s.handleStat)
	s.Extend("GET /v1/shards", s.handleShards)
	s.Extend("GET /v1/shards/{id}", s.handleShardData)
	s.Extend("GET /v1/shards/{id}/index", s.handleShardIndex)
	s.Extend("GET /v1/points", s.handlePoints)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the routing handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Extend registers an additional handler on the server's mux, wrapped in
// the same per-endpoint instrumentation as the built-in routes — the hook
// a cluster coordinator (internal/lpcluster) uses to mount its lease and
// result endpoints beside the store's. Call before Serve.
func (s *Server) Extend(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, s.instrument(pattern, h))
}

// statusWriter captures the status code and body size a handler produced.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// instrument wraps a handler with per-endpoint request, latency, and byte
// accounting, labeled by the route pattern (stable cardinality — path
// wildcards and query strings never become label values).
func (s *Server) instrument(pattern string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		s.reg.Counter("lpserve_http_requests_total", "HTTP requests by endpoint and status code.",
			"endpoint", pattern, "code", strconv.Itoa(sw.status)).Inc()
		s.reg.Histogram("lpserve_http_request_seconds", "HTTP request latency by endpoint.",
			obs.DefSeconds, "endpoint", pattern).Observe(time.Since(t0).Seconds())
		s.reg.Counter("lpserve_http_response_bytes_total", "HTTP response body bytes by endpoint.",
			"endpoint", pattern).Add(uint64(sw.bytes))
	}
}

// Serve accepts connections on l until Shutdown. It returns nil after a
// graceful shutdown. The server bounds header reads and idle keep-alive
// connections so slow or abandoned clients cannot pin goroutines forever.
func (s *Server) Serve(l net.Listener) error {
	if err := s.hs.Serve(l); err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}

// Shutdown drains in-flight requests and stops the server. Safe to call
// concurrently with Serve: a shutdown that wins the race makes Serve
// return immediately.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.hs.Shutdown(ctx)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleStat(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.st.Stat())
}

func (s *Server) handleShards(w http.ResponseWriter, r *http.Request) {
	out := make([]ShardStat, s.st.NumShards())
	for i := range out {
		points, comp, uncomp, err := s.st.ShardStat(i)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		out[i] = ShardStat{ID: i, Points: points, CompressedBytes: comp, UncompressedBytes: uncomp}
	}
	writeJSON(w, out)
}

// shardID parses and range-checks the {id} path value.
func (s *Server) shardID(w http.ResponseWriter, r *http.Request) (int, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		http.Error(w, "bad shard id", http.StatusBadRequest)
		return 0, false
	}
	if id < 0 || id >= s.st.NumShards() {
		http.Error(w, fmt.Sprintf("shard %d out of range [0,%d)", id, s.st.NumShards()), http.StatusNotFound)
		return 0, false
	}
	return id, true
}

func (s *Server) handleShardData(w http.ResponseWriter, r *http.Request) {
	id, ok := s.shardID(w, r)
	if !ok {
		return
	}
	raw, n, err := s.st.ShardRaw(id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	points, _, uncomp, err := s.st.ShardStat(id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/gzip")
	w.Header().Set("Content-Length", strconv.FormatInt(n, 10))
	w.Header().Set("X-Lplib-Shard-Points", strconv.Itoa(points))
	w.Header().Set("X-Lplib-Shard-Uncompressed", strconv.FormatInt(uncomp, 10))
	io.Copy(w, raw)
}

func (s *Server) handleShardIndex(w http.ResponseWriter, r *http.Request) {
	id, ok := s.shardID(w, r)
	if !ok {
		return
	}
	spans, err := s.st.ShardReadOrder(id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, spans)
}

func (s *Server) handlePoints(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	start, err := strconv.Atoi(q.Get("start"))
	if err != nil || start < 0 {
		http.Error(w, "bad start", http.StatusBadRequest)
		return
	}
	count, err := strconv.Atoi(q.Get("count"))
	if err != nil || count <= 0 {
		http.Error(w, "bad count", http.StatusBadRequest)
		return
	}
	if start > math.MaxInt-count {
		// Rejected explicitly: a wrapped start+count must never reach the
		// range arithmetic below or the store's slice checks.
		http.Error(w, "start+count overflows", http.StatusBadRequest)
		return
	}
	if count > MaxBatchPoints {
		count = MaxBatchPoints
	}
	total := s.st.Count()
	if start >= total {
		http.Error(w, fmt.Sprintf("start %d beyond library end %d", start, total), http.StatusNotFound)
		return
	}
	if start+count > total {
		count = total - start
	}
	blobs, err := s.st.Blobs(start, count)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	var n int
	crc := crc32.NewIEEE()
	for _, b := range blobs {
		n += len(b)
		crc.Write(b)
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(n))
	w.Header().Set("X-Lplib-Points", strconv.Itoa(count))
	w.Header().Set(PointsCRCHeader, fmt.Sprintf("%08x", crc.Sum32()))
	for _, b := range blobs {
		if _, err := w.Write(b); err != nil {
			return
		}
	}
}
