// Package lpserve streams live-points from a sharded v2 store
// (internal/lpstore) to remote simulation workers over HTTP — the serving
// half of the scale-out story: one lpserved process owns the library file;
// fleets of lpsim workers pull points or whole shards on demand.
//
// Wire surface (all under /v1):
//
//	GET /v1/stat              library metadata (JSON lpstore.Stat)
//	GET /v1/shards            per-shard listing (JSON []ShardStat)
//	GET /v1/shards/{id}       one shard's stored gzip bytes, verbatim —
//	                          the store's compression passes straight
//	                          through; the server never recompresses
//	GET /v1/shards/{id}/index the shard's read order as (off,len) spans
//	                          into its uncompressed stream (JSON []Span)
//	GET /v1/points?start=&count=
//	                          ranged batch fetch: concatenated DER blobs
//	                          at read-order positions [start,start+count)
//
// Point blobs are self-delimiting DER elements, so batch responses need no
// framing; clients split them with livepoint.ReadElement.
package lpserve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"

	"livepoints/internal/lpstore"
)

// ShardStat describes one shard in the /v1/shards listing.
type ShardStat struct {
	ID                int   `json:"id"`
	Points            int   `json:"points"`
	CompressedBytes   int64 `json:"compressedBytes"`
	UncompressedBytes int64 `json:"uncompressedBytes"`
}

// MaxBatchPoints caps a single /v1/points response.
const MaxBatchPoints = 4096

// Server serves one live-point store over HTTP.
type Server struct {
	st  *lpstore.Store
	mux *http.ServeMux
	hs  *http.Server
}

// NewServer builds a server over an open store. The store must outlive the
// server.
func NewServer(st *lpstore.Store) *Server {
	s := &Server{st: st, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /v1/stat", s.handleStat)
	s.mux.HandleFunc("GET /v1/shards", s.handleShards)
	s.mux.HandleFunc("GET /v1/shards/{id}", s.handleShardData)
	s.mux.HandleFunc("GET /v1/shards/{id}/index", s.handleShardIndex)
	s.mux.HandleFunc("GET /v1/points", s.handlePoints)
	return s
}

// Handler returns the routing handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Extend registers an additional handler on the server's mux — the hook a
// cluster coordinator (internal/lpcluster) uses to mount its lease and
// result endpoints beside the store's. Call before Serve.
func (s *Server) Extend(pattern string, h http.HandlerFunc) { s.mux.HandleFunc(pattern, h) }

// Serve accepts connections on l until Shutdown. It returns nil after a
// graceful shutdown. The server bounds header reads and idle keep-alive
// connections so slow or abandoned clients cannot pin goroutines forever.
func (s *Server) Serve(l net.Listener) error {
	s.hs = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	if err := s.hs.Serve(l); err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}

// Shutdown drains in-flight requests and stops the server.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.hs == nil {
		return nil
	}
	return s.hs.Shutdown(ctx)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleStat(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.st.Stat())
}

func (s *Server) handleShards(w http.ResponseWriter, r *http.Request) {
	out := make([]ShardStat, s.st.NumShards())
	for i := range out {
		points, comp, uncomp, err := s.st.ShardStat(i)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		out[i] = ShardStat{ID: i, Points: points, CompressedBytes: comp, UncompressedBytes: uncomp}
	}
	writeJSON(w, out)
}

// shardID parses and range-checks the {id} path value.
func (s *Server) shardID(w http.ResponseWriter, r *http.Request) (int, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		http.Error(w, "bad shard id", http.StatusBadRequest)
		return 0, false
	}
	if id < 0 || id >= s.st.NumShards() {
		http.Error(w, fmt.Sprintf("shard %d out of range [0,%d)", id, s.st.NumShards()), http.StatusNotFound)
		return 0, false
	}
	return id, true
}

func (s *Server) handleShardData(w http.ResponseWriter, r *http.Request) {
	id, ok := s.shardID(w, r)
	if !ok {
		return
	}
	raw, n, err := s.st.ShardRaw(id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	points, _, uncomp, _ := s.st.ShardStat(id)
	w.Header().Set("Content-Type", "application/gzip")
	w.Header().Set("Content-Length", strconv.FormatInt(n, 10))
	w.Header().Set("X-Lplib-Shard-Points", strconv.Itoa(points))
	w.Header().Set("X-Lplib-Shard-Uncompressed", strconv.FormatInt(uncomp, 10))
	io.Copy(w, raw)
}

func (s *Server) handleShardIndex(w http.ResponseWriter, r *http.Request) {
	id, ok := s.shardID(w, r)
	if !ok {
		return
	}
	spans, err := s.st.ShardReadOrder(id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, spans)
}

func (s *Server) handlePoints(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	start, err := strconv.Atoi(q.Get("start"))
	if err != nil || start < 0 {
		http.Error(w, "bad start", http.StatusBadRequest)
		return
	}
	count, err := strconv.Atoi(q.Get("count"))
	if err != nil || count <= 0 {
		http.Error(w, "bad count", http.StatusBadRequest)
		return
	}
	if count > MaxBatchPoints {
		count = MaxBatchPoints
	}
	total := s.st.Count()
	if start >= total {
		http.Error(w, fmt.Sprintf("start %d beyond library end %d", start, total), http.StatusNotFound)
		return
	}
	if start+count > total {
		count = total - start
	}
	blobs, err := s.st.Blobs(start, count)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	var n int
	for _, b := range blobs {
		n += len(b)
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(n))
	w.Header().Set("X-Lplib-Points", strconv.Itoa(count))
	for _, b := range blobs {
		if _, err := w.Write(b); err != nil {
			return
		}
	}
}
