package lpserve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"

	"livepoints/internal/asn1der"
	"livepoints/internal/obs"
)

// derBlobs builds n self-delimiting DER elements for protocol tests.
func derBlobs(n int) [][]byte {
	blobs := make([][]byte, n)
	for i := range blobs {
		b := asn1der.NewBuilder()
		b.OctetString(bytes.Repeat([]byte{byte(i + 1)}, 30+i))
		blobs[i] = b.Bytes()
	}
	return blobs
}

// TestPointsCRCHeader: every /v1/points response must carry the IEEE
// CRC32 of its body — ranged batches are raw DER concatenations with no
// other integrity layer, and a flipped bit would decode into a plausible
// point and fold silently wrong data.
func TestPointsCRCHeader(t *testing.T) {
	st, blobs := synthStore(t, 23, 4)
	ts := httptest.NewServer(NewServer(st).Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/points?start=0&count=23")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	h := resp.Header.Get(PointsCRCHeader)
	if h == "" {
		t.Fatalf("no %s header on /v1/points", PointsCRCHeader)
	}
	want, err := strconv.ParseUint(h, 16, 32)
	if err != nil {
		t.Fatalf("unparseable %s header %q: %v", PointsCRCHeader, h, err)
	}
	if got := crc32.ChecksumIEEE(body); got != uint32(want) {
		t.Fatalf("header crc %08x does not cover the body (crc %08x)", want, got)
	}
	if wantBody := bytes.Join(blobs[:23], nil); !bytes.Equal(body, wantBody) {
		t.Fatal("body mismatch")
	}
}

// TestPointsQueryHardening: negative and overflowing ranges must be 400
// verdicts, not downstream slice arithmetic.
func TestPointsQueryHardening(t *testing.T) {
	st, _ := synthStore(t, 23, 4)
	ts := httptest.NewServer(NewServer(st).Handler())
	defer ts.Close()

	maxInt := strconv.Itoa(int(^uint(0) >> 1))
	for _, q := range []string{
		"start=-1&count=5",
		"start=0&count=-3",
		"start=0&count=0",
		"start=" + maxInt + "&count=2", // start+count wraps negative
		"start=5&count=" + maxInt,      // symmetric overflow
		"start=x&count=1",
		"start=0&count=x",
	} {
		resp, err := http.Get(ts.URL + "/v1/points?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET /v1/points?%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestFetchBatchCRCMismatchRefetched: a corrupted batch body (header CRC
// does not match) must be refetched, not surfaced — and certainly not
// folded. One clean retry later the fetch succeeds.
func TestFetchBatchCRCMismatchRefetched(t *testing.T) {
	blobs := derBlobs(3)
	clean := bytes.Join(blobs, nil)
	var hits atomic.Int32
	c := testClient(t, func(w http.ResponseWriter, r *http.Request) {
		body := clean
		if hits.Add(1) == 1 {
			body = append([]byte(nil), clean...)
			body[5] ^= 0xFF // damaged in flight; header still covers the clean body
		}
		w.Header().Set(PointsCRCHeader, fmt.Sprintf("%08x", crc32.ChecksumIEEE(clean)))
		w.Write(body)
	})
	c.Metrics = obs.NewRegistry()

	got, err := c.FetchBatch(context.Background(), 0, 3)
	if err != nil {
		t.Fatalf("corrupted-then-clean batch not recovered: %v", err)
	}
	for i := range got {
		if !bytes.Equal(got[i], blobs[i]) {
			t.Fatalf("blob %d mismatch after refetch", i)
		}
	}
	if hits.Load() != 2 {
		t.Fatalf("server saw %d attempts, want 2", hits.Load())
	}
	if v := c.Metrics.Counter("lpserve_client_integrity_failures_total", "").Value(); v != 1 {
		t.Fatalf("integrity failure counter %d, want 1", v)
	}
	if v := c.Metrics.Counter("lpserve_client_body_retries_total", "").Value(); v != 1 {
		t.Fatalf("body retry counter %d, want 1", v)
	}
}

// TestFetchBatchPersistentCorruption: corruption that survives every
// retry must surface as a ProtocolError (fatal to cluster workers — a
// systematically corrupt peer is not an outage to outwait).
func TestFetchBatchPersistentCorruption(t *testing.T) {
	blobs := derBlobs(2)
	clean := bytes.Join(blobs, nil)
	c := testClient(t, func(w http.ResponseWriter, r *http.Request) {
		body := append([]byte(nil), clean...)
		body[3] ^= 0xFF
		w.Header().Set(PointsCRCHeader, fmt.Sprintf("%08x", crc32.ChecksumIEEE(clean)))
		w.Write(body)
	})
	c.Metrics = obs.NewRegistry()
	_, err := c.FetchBatch(context.Background(), 0, 2)
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("persistent corruption surfaced as %v, want ProtocolError", err)
	}
	if v := c.Metrics.Counter("lpserve_client_integrity_failures_total", "").Value(); v != uint64(fastRetry.Max+1) {
		t.Fatalf("integrity failure counter %d, want %d", v, fastRetry.Max+1)
	}
}

// TestFetchBatchWithoutCRCHeader: older servers omit the header; the
// client must still fetch (verification is opportunistic).
func TestFetchBatchWithoutCRCHeader(t *testing.T) {
	blobs := derBlobs(2)
	c := testClient(t, func(w http.ResponseWriter, r *http.Request) {
		w.Write(bytes.Join(blobs, nil))
	})
	got, err := c.FetchBatch(context.Background(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("%d blobs, want 2", len(got))
	}
}

// TestErrorClassification pins the taxonomy cluster workers branch on:
// moving-bytes failures are TransportError (outage, outwait), delivered
// 2xx garbage is ProtocolError (fatal), server verdicts are StatusError.
func TestErrorClassification(t *testing.T) {
	// Dead port: transport.
	ts := httptest.NewServer(http.NotFoundHandler())
	url := ts.URL
	ts.Close()
	c := New(url)
	c.Retry = fastRetry
	err := c.Refresh(context.Background())
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("dead port surfaced as %v, want TransportError", err)
	}
	var pe *ProtocolError
	if errors.As(err, &pe) {
		t.Fatal("dead port also classified as ProtocolError")
	}

	// Delivered garbage: protocol.
	c2 := testClient(t, func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "<html>hello</html>")
	})
	err = c2.Refresh(context.Background())
	if !errors.As(err, &pe) {
		t.Fatalf("garbage 2xx surfaced as %v, want ProtocolError", err)
	}
	if errors.As(err, &te) {
		t.Fatal("garbage 2xx also classified as TransportError")
	}

	// Server verdict: status.
	c3 := testClient(t, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusBadRequest)
	})
	err = c3.Refresh(context.Background())
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("400 surfaced as %v, want StatusError{400}", err)
	}
}

// TestShardBlobsCorruptGzipRefetched: shard bytes damaged mid-flight
// fail the gzip CRC and are refetched; one clean retry recovers.
func TestShardBlobsCorruptGzipRefetched(t *testing.T) {
	st, _ := synthStore(t, 23, 4)
	inner := NewServerWithMetrics(st, obs.NewRegistry()).Handler()
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/shards/1" && hits.Add(1) == 1 {
			rec := httptest.NewRecorder()
			inner.ServeHTTP(rec, r)
			body := rec.Body.Bytes()
			body[len(body)/2] ^= 0xFF
			w.Header().Set("Content-Length", strconv.Itoa(len(body)))
			w.Write(body)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()
	c := New(ts.URL)
	c.Retry = fastRetry
	c.Metrics = obs.NewRegistry()

	want, err := st.DecompressShard(1)
	if err != nil {
		t.Fatal(err)
	}
	blobs, err := c.ShardBlobs(context.Background(), 1)
	if err != nil {
		t.Fatalf("corrupted-then-clean shard not recovered: %v", err)
	}
	var n int
	for _, b := range blobs {
		n += len(b)
	}
	if n != len(want) {
		t.Fatalf("shard blobs cover %d bytes, want %d", n, len(want))
	}
	if v := c.Metrics.Counter("lpserve_client_body_retries_total", "").Value(); v < 1 {
		t.Fatal("shard corruption did not take the body-retry path")
	}
}
