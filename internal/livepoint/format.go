package livepoint

import (
	"encoding/binary"
	"fmt"
	"sort"

	"livepoints/internal/asn1der"
	"livepoints/internal/bpred"
	"livepoints/internal/cache"
	"livepoints/internal/csr"
	"livepoints/internal/isa"
)

// SizeBreakdown reports the encoded byte size of each live-point section —
// the data behind Figure 7.
type SizeBreakdown struct {
	Header int // identity, position, window geometry
	Arch   int // registers and PC ("register files, system state")
	Mem    int // memory data (live-state values)
	Text   int // instruction text
	L1I    int
	L1D    int
	L2     int
	TLB    int
	Bpred  int
}

// Total returns the whole encoded size.
func (b SizeBreakdown) Total() int {
	return b.Header + b.Arch + b.Mem + b.Text + b.L1I + b.L1D + b.L2 + b.TLB + b.Bpred
}

// Encode serializes a live-point to ASN.1 DER (§3), returning the bytes and
// the per-section size breakdown.
func Encode(lp *LivePoint) ([]byte, SizeBreakdown) {
	var bd SizeBreakdown
	b := asn1der.NewBuilder()
	b.Sequence(func(b *asn1der.Builder) {
		mark := b.Len()
		b.UTF8String(lp.Benchmark)
		b.Uint64(uint64(lp.Index))
		b.Uint64(lp.Position)
		b.Uint64(lp.WarmLen)
		b.Uint64(lp.UnitLen)
		b.Uint64(lp.FuncWarm)
		b.Bool(lp.Restricted)
		bd.Header = b.Len() - mark

		mark = b.Len()
		b.Context(0, func(b *asn1der.Builder) {
			b.Uint64(lp.Arch.PC)
			regs := make([]byte, 8*isa.NumRegs)
			for i, v := range lp.Arch.Regs {
				binary.LittleEndian.PutUint64(regs[i*8:], v)
			}
			b.OctetString(regs)
		})
		bd.Arch = b.Len() - mark

		mark = b.Len()
		b.Context(1, func(b *asn1der.Builder) {
			b.OctetString(packMem(lp.Mem))
		})
		bd.Mem = b.Len() - mark

		mark = b.Len()
		b.Context(2, func(b *asn1der.Builder) {
			for _, r := range lp.Text {
				b.Sequence(func(b *asn1der.Builder) {
					b.Uint64(r.StartPC)
					b.OctetString(isa.EncodeText(r.Insts))
				})
			}
		})
		bd.Text = b.Len() - mark

		for i, sr := range lp.Caches {
			mark = b.Len()
			b.Context(3, func(b *asn1der.Builder) { encodeSetRecord(b, sr) })
			switch i {
			case 0:
				bd.L1I = b.Len() - mark
			case 1:
				bd.L1D = b.Len() - mark
			default:
				bd.L2 = b.Len() - mark
			}
		}
		mark = b.Len()
		for _, sr := range lp.TLBs {
			b.Context(4, func(b *asn1der.Builder) { encodeSetRecord(b, sr) })
		}
		bd.TLB = b.Len() - mark

		mark = b.Len()
		for _, ps := range lp.Preds {
			b.Context(5, func(b *asn1der.Builder) {
				encodePredConfig(b, ps.Cfg)
				b.OctetString(ps.Data)
			})
		}
		bd.Bpred = b.Len() - mark
	})
	// The outer SEQUENCE envelope (tag and length octets) counts toward
	// the header.
	bd.Header += b.Len() - bd.Total()
	return b.Bytes(), bd
}

// Decode parses a live-point from its DER encoding.
func Decode(buf []byte) (*LivePoint, error) {
	d, err := asn1der.NewDecoder(buf).Sequence()
	if err != nil {
		return nil, fmt.Errorf("livepoint: decode: %w", err)
	}
	lp := &LivePoint{}
	if lp.Benchmark, err = d.UTF8String(); err != nil {
		return nil, err
	}
	idx, err := d.Uint64()
	if err != nil {
		return nil, err
	}
	lp.Index = int(idx)
	if lp.Position, err = d.Uint64(); err != nil {
		return nil, err
	}
	if lp.WarmLen, err = d.Uint64(); err != nil {
		return nil, err
	}
	if lp.UnitLen, err = d.Uint64(); err != nil {
		return nil, err
	}
	if lp.FuncWarm, err = d.Uint64(); err != nil {
		return nil, err
	}
	if lp.Restricted, err = d.Bool(); err != nil {
		return nil, err
	}

	ad, err := d.Context(0)
	if err != nil {
		return nil, err
	}
	if lp.Arch.PC, err = ad.Uint64(); err != nil {
		return nil, err
	}
	regs, err := ad.OctetString()
	if err != nil {
		return nil, err
	}
	if len(regs) != 8*isa.NumRegs {
		return nil, fmt.Errorf("livepoint: register block is %d bytes, want %d", len(regs), 8*isa.NumRegs)
	}
	for i := range lp.Arch.Regs {
		lp.Arch.Regs[i] = binary.LittleEndian.Uint64(regs[i*8:])
	}

	md, err := d.Context(1)
	if err != nil {
		return nil, err
	}
	memBytes, err := md.OctetString()
	if err != nil {
		return nil, err
	}
	if lp.Mem, err = unpackMem(memBytes); err != nil {
		return nil, err
	}

	td, err := d.Context(2)
	if err != nil {
		return nil, err
	}
	for td.More() {
		rd, err := td.Sequence()
		if err != nil {
			return nil, err
		}
		var r TextRange
		if r.StartPC, err = rd.Uint64(); err != nil {
			return nil, err
		}
		enc, err := rd.OctetString()
		if err != nil {
			return nil, err
		}
		if r.Insts, err = isa.DecodeText(enc); err != nil {
			return nil, err
		}
		lp.Text = append(lp.Text, r)
	}

	for d.More() {
		tag, err := d.PeekTag()
		if err != nil {
			return nil, err
		}
		switch tag {
		case asn1der.ContextTag(3):
			cd, err := d.Context(3)
			if err != nil {
				return nil, err
			}
			sr, err := decodeSetRecord(cd)
			if err != nil {
				return nil, err
			}
			lp.Caches = append(lp.Caches, sr)
		case asn1der.ContextTag(4):
			cd, err := d.Context(4)
			if err != nil {
				return nil, err
			}
			sr, err := decodeSetRecord(cd)
			if err != nil {
				return nil, err
			}
			lp.TLBs = append(lp.TLBs, sr)
		case asn1der.ContextTag(5):
			pd, err := d.Context(5)
			if err != nil {
				return nil, err
			}
			cfg, err := decodePredConfig(pd)
			if err != nil {
				return nil, err
			}
			data, err := pd.OctetString()
			if err != nil {
				return nil, err
			}
			snap := make([]byte, len(data))
			copy(snap, data)
			lp.Preds = append(lp.Preds, PredSnapshot{Cfg: cfg, Data: snap})
		default:
			return nil, fmt.Errorf("livepoint: unexpected section tag %#02x", tag)
		}
	}
	return lp, nil
}

// packMem serializes the live-state words as sorted (addr, value) pairs.
// Sorting makes encoding deterministic and helps gzip find structure.
func packMem(m map[uint64]uint64) []byte {
	addrs := make([]uint64, 0, len(m))
	for a := range m {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	out := make([]byte, 16*len(addrs))
	for i, a := range addrs {
		binary.LittleEndian.PutUint64(out[i*16:], a)
		binary.LittleEndian.PutUint64(out[i*16+8:], m[a])
	}
	return out
}

func unpackMem(b []byte) (map[uint64]uint64, error) {
	if len(b)%16 != 0 {
		return nil, fmt.Errorf("livepoint: memory block length %d not a multiple of 16", len(b))
	}
	m := make(map[uint64]uint64, len(b)/16)
	for i := 0; i+16 <= len(b); i += 16 {
		m[binary.LittleEndian.Uint64(b[i:])] = binary.LittleEndian.Uint64(b[i+8:])
	}
	return m, nil
}

func encodeSetRecord(b *asn1der.Builder, sr *csr.SetRecord) {
	b.UTF8String(sr.Cfg.Name)
	b.Uint64(uint64(sr.Cfg.SizeBytes))
	b.Uint64(uint64(sr.Cfg.Assoc))
	b.Uint64(uint64(sr.Cfg.LineBytes))
	b.Uint64(uint64(sr.Cfg.HitLat))
	payload := make([]byte, 17*len(sr.Entries))
	for i, e := range sr.Entries {
		binary.LittleEndian.PutUint64(payload[i*17:], e.Block)
		binary.LittleEndian.PutUint64(payload[i*17+8:], e.Last)
		if e.Dirty {
			payload[i*17+16] = 1
		}
	}
	b.OctetString(payload)
}

func decodeSetRecord(d *asn1der.Decoder) (*csr.SetRecord, error) {
	sr := &csr.SetRecord{}
	var err error
	if sr.Cfg.Name, err = d.UTF8String(); err != nil {
		return nil, err
	}
	vals := make([]uint64, 4)
	for i := range vals {
		if vals[i], err = d.Uint64(); err != nil {
			return nil, err
		}
	}
	sr.Cfg.SizeBytes = int64(vals[0])
	sr.Cfg.Assoc = int(vals[1])
	sr.Cfg.LineBytes = int64(vals[2])
	sr.Cfg.HitLat = int(vals[3])
	payload, err := d.OctetString()
	if err != nil {
		return nil, err
	}
	if len(payload)%17 != 0 {
		return nil, fmt.Errorf("livepoint: set record payload %d not a multiple of 17", len(payload))
	}
	sr.Entries = make([]csr.Entry, len(payload)/17)
	for i := range sr.Entries {
		sr.Entries[i] = csr.Entry{
			Block: binary.LittleEndian.Uint64(payload[i*17:]),
			Last:  binary.LittleEndian.Uint64(payload[i*17+8:]),
			Dirty: payload[i*17+16] == 1,
		}
	}
	return sr, nil
}

func encodePredConfig(b *asn1der.Builder, cfg bpred.Config) {
	b.UTF8String(cfg.Name)
	b.Uint64(uint64(cfg.Kind))
	b.Uint64(uint64(cfg.TableSize))
	b.Uint64(uint64(cfg.HistBits))
	b.Uint64(uint64(cfg.BTBSets))
	b.Uint64(uint64(cfg.BTBAssoc))
	b.Uint64(uint64(cfg.RASSize))
}

func decodePredConfig(d *asn1der.Decoder) (bpred.Config, error) {
	var cfg bpred.Config
	var err error
	if cfg.Name, err = d.UTF8String(); err != nil {
		return cfg, err
	}
	vals := make([]uint64, 6)
	for i := range vals {
		if vals[i], err = d.Uint64(); err != nil {
			return cfg, err
		}
	}
	cfg.Kind = bpred.Kind(vals[0])
	cfg.TableSize = int(vals[1])
	cfg.HistBits = int(vals[2])
	cfg.BTBSets = int(vals[3])
	cfg.BTBAssoc = int(vals[4])
	cfg.RASSize = int(vals[5])
	return cfg, nil
}

// interface check: SetRecord round-trips preserve the cache.Config needed
// for reconstruction bounds.
var _ = cache.Config{}
