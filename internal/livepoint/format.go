package livepoint

import (
	"encoding/binary"
	"fmt"

	"livepoints/internal/asn1der"
	"livepoints/internal/bpred"
	"livepoints/internal/cache"
	"livepoints/internal/csr"
	"livepoints/internal/isa"
)

// SizeBreakdown reports the encoded byte size of each live-point section —
// the data behind Figure 7.
type SizeBreakdown struct {
	Header int // identity, position, window geometry
	Arch   int // registers and PC ("register files, system state")
	Mem    int // memory data (live-state values)
	Text   int // instruction text
	L1I    int
	L1D    int
	L2     int
	TLB    int
	Bpred  int
}

// Total returns the whole encoded size.
func (b SizeBreakdown) Total() int {
	return b.Header + b.Arch + b.Mem + b.Text + b.L1I + b.L1D + b.L2 + b.TLB + b.Bpred
}

// Encode serializes a live-point to ASN.1 DER (§3), returning the bytes and
// the per-section size breakdown.
func Encode(lp *LivePoint) ([]byte, SizeBreakdown) {
	var bd SizeBreakdown
	b := asn1der.NewBuilder()
	b.Sequence(func(b *asn1der.Builder) {
		mark := b.Len()
		b.UTF8String(lp.Benchmark)
		b.Uint64(uint64(lp.Index))
		b.Uint64(lp.Position)
		b.Uint64(lp.WarmLen)
		b.Uint64(lp.UnitLen)
		b.Uint64(lp.FuncWarm)
		b.Bool(lp.Restricted)
		bd.Header = b.Len() - mark

		mark = b.Len()
		b.Context(0, func(b *asn1der.Builder) {
			b.Uint64(lp.Arch.PC)
			regs := make([]byte, 8*isa.NumRegs)
			for i, v := range lp.Arch.Regs {
				binary.LittleEndian.PutUint64(regs[i*8:], v)
			}
			b.OctetString(regs)
		})
		bd.Arch = b.Len() - mark

		mark = b.Len()
		b.Context(1, func(b *asn1der.Builder) {
			b.OctetString(packMem(&lp.Mem))
		})
		bd.Mem = b.Len() - mark

		mark = b.Len()
		b.Context(2, func(b *asn1der.Builder) {
			for _, r := range lp.Text {
				b.Sequence(func(b *asn1der.Builder) {
					b.Uint64(r.StartPC)
					b.OctetString(isa.EncodeText(r.Insts))
				})
			}
		})
		bd.Text = b.Len() - mark

		for i, sr := range lp.Caches {
			mark = b.Len()
			b.Context(3, func(b *asn1der.Builder) { encodeSetRecord(b, sr) })
			switch i {
			case 0:
				bd.L1I = b.Len() - mark
			case 1:
				bd.L1D = b.Len() - mark
			default:
				bd.L2 = b.Len() - mark
			}
		}
		mark = b.Len()
		for _, sr := range lp.TLBs {
			b.Context(4, func(b *asn1der.Builder) { encodeSetRecord(b, sr) })
		}
		bd.TLB = b.Len() - mark

		mark = b.Len()
		for _, ps := range lp.Preds {
			b.Context(5, func(b *asn1der.Builder) {
				encodePredConfig(b, ps.Cfg)
				b.OctetString(ps.Data)
			})
		}
		bd.Bpred = b.Len() - mark
	})
	// The outer SEQUENCE envelope (tag and length octets) counts toward
	// the header.
	bd.Header += b.Len() - bd.Total()
	return b.Bytes(), bd
}

// Decode parses a live-point from its DER encoding into a fresh LivePoint.
func Decode(buf []byte) (*LivePoint, error) {
	lp := &LivePoint{}
	if err := DecodeInto(lp, buf); err != nil {
		return nil, err
	}
	return lp, nil
}

// DecodeInto parses a live-point from its DER encoding into lp, reusing the
// receiver's backing storage (memory table, text ranges, set-record entry
// slices, predictor snapshots) wherever capacities allow. After the first
// few points of a stream the call performs no heap allocation, which is
// what keeps the load path's fixed cost near zero (§5, Table 2).
//
// The decoded live-point does not alias buf: every variable-length section
// is parsed into, or copied to, lp-owned storage, so callers may recycle
// the blob buffer immediately. On error lp is left partially overwritten
// and must not be used. Strings (benchmark and structure names) are only
// reallocated when their value actually changes between points.
func DecodeInto(lp *LivePoint, buf []byte) error {
	top := asn1der.Over(buf)
	d, err := top.ReadSequence()
	if err != nil {
		return fmt.Errorf("livepoint: decode: %w", err)
	}
	name, err := d.UTF8Bytes()
	if err != nil {
		return err
	}
	internString(&lp.Benchmark, name)
	idx, err := d.Uint64()
	if err != nil {
		return err
	}
	lp.Index = int(idx)
	if lp.Position, err = d.Uint64(); err != nil {
		return err
	}
	if lp.WarmLen, err = d.Uint64(); err != nil {
		return err
	}
	if lp.UnitLen, err = d.Uint64(); err != nil {
		return err
	}
	if lp.FuncWarm, err = d.Uint64(); err != nil {
		return err
	}
	if lp.Restricted, err = d.Bool(); err != nil {
		return err
	}

	ad, err := d.ReadContext(0)
	if err != nil {
		return err
	}
	if lp.Arch.PC, err = ad.Uint64(); err != nil {
		return err
	}
	regs, err := ad.OctetString()
	if err != nil {
		return err
	}
	if len(regs) != 8*isa.NumRegs {
		return fmt.Errorf("livepoint: register block is %d bytes, want %d", len(regs), 8*isa.NumRegs)
	}
	for i := range lp.Arch.Regs {
		lp.Arch.Regs[i] = binary.LittleEndian.Uint64(regs[i*8:])
	}

	md, err := d.ReadContext(1)
	if err != nil {
		return err
	}
	memBytes, err := md.OctetString()
	if err != nil {
		return err
	}
	if len(memBytes)%16 != 0 {
		return fmt.Errorf("livepoint: memory block length %d not a multiple of 16", len(memBytes))
	}
	lp.Mem.setPacked(memBytes)

	td, err := d.ReadContext(2)
	if err != nil {
		return err
	}
	// lp.Text is rebuilt in place: entries in the backing array donate their
	// Insts capacity. The reslice runs to capacity, not the previous length,
	// so a short point between two long ones doesn't orphan the tail slots'
	// storage. Reads of oldText[i] happen before the append that overwrites
	// the shared backing slot, so the aliasing is safe.
	oldText := lp.Text[:cap(lp.Text)]
	lp.Text = lp.Text[:0]
	for td.More() {
		rd, err := td.ReadSequence()
		if err != nil {
			return err
		}
		var r TextRange
		if len(lp.Text) < len(oldText) {
			r = oldText[len(lp.Text)]
		}
		if r.StartPC, err = rd.Uint64(); err != nil {
			return err
		}
		enc, err := rd.OctetString()
		if err != nil {
			return err
		}
		if r.Insts, err = isa.AppendText(r.Insts[:0], enc); err != nil {
			return err
		}
		lp.Text = append(lp.Text, r)
	}

	oldCaches, oldTLBs := lp.Caches[:cap(lp.Caches)], lp.TLBs[:cap(lp.TLBs)]
	oldPreds := lp.Preds[:cap(lp.Preds)]
	lp.Caches, lp.TLBs, lp.Preds = lp.Caches[:0], lp.TLBs[:0], lp.Preds[:0]
	for d.More() {
		tag, err := d.PeekTag()
		if err != nil {
			return err
		}
		switch tag {
		case asn1der.ContextTag(3):
			cd, err := d.ReadContext(3)
			if err != nil {
				return err
			}
			sr := reuseRecord(oldCaches, len(lp.Caches))
			if err := decodeSetRecordInto(sr, &cd); err != nil {
				return err
			}
			lp.Caches = append(lp.Caches, sr)
		case asn1der.ContextTag(4):
			cd, err := d.ReadContext(4)
			if err != nil {
				return err
			}
			sr := reuseRecord(oldTLBs, len(lp.TLBs))
			if err := decodeSetRecordInto(sr, &cd); err != nil {
				return err
			}
			lp.TLBs = append(lp.TLBs, sr)
		case asn1der.ContextTag(5):
			pd, err := d.ReadContext(5)
			if err != nil {
				return err
			}
			var ps PredSnapshot
			if len(lp.Preds) < len(oldPreds) {
				ps = oldPreds[len(lp.Preds)]
			}
			if err := decodePredConfigInto(&ps.Cfg, &pd); err != nil {
				return err
			}
			data, err := pd.OctetString()
			if err != nil {
				return err
			}
			ps.Data = append(ps.Data[:0], data...)
			lp.Preds = append(lp.Preds, ps)
		default:
			return fmt.Errorf("livepoint: unexpected section tag %#02x", tag)
		}
	}
	return nil
}

// internString assigns the byte contents to *s, allocating only when the
// value differs: the string([]byte) on the comparison side of != does not
// escape, so repeated decodes of the same name cost nothing.
func internString(s *string, b []byte) {
	if *s != string(b) {
		*s = string(b)
	}
}

// reuseRecord returns the i'th record of a previous decode for in-place
// reuse, or a fresh one past the previous length.
func reuseRecord(old []*csr.SetRecord, i int) *csr.SetRecord {
	if i < len(old) && old[i] != nil {
		return old[i]
	}
	return &csr.SetRecord{}
}

// packMem serializes the live-state words as sorted (addr, value) pairs.
// Sorting makes encoding deterministic and helps gzip find structure.
func packMem(t *MemTable) []byte {
	es := t.Entries()
	out := make([]byte, 16*len(es))
	for i, e := range es {
		binary.LittleEndian.PutUint64(out[i*16:], e.Addr)
		binary.LittleEndian.PutUint64(out[i*16+8:], e.Val)
	}
	return out
}

func encodeSetRecord(b *asn1der.Builder, sr *csr.SetRecord) {
	b.UTF8String(sr.Cfg.Name)
	b.Uint64(uint64(sr.Cfg.SizeBytes))
	b.Uint64(uint64(sr.Cfg.Assoc))
	b.Uint64(uint64(sr.Cfg.LineBytes))
	b.Uint64(uint64(sr.Cfg.HitLat))
	payload := make([]byte, 17*len(sr.Entries))
	for i, e := range sr.Entries {
		binary.LittleEndian.PutUint64(payload[i*17:], e.Block)
		binary.LittleEndian.PutUint64(payload[i*17+8:], e.Last)
		if e.Dirty {
			payload[i*17+16] = 1
		}
	}
	b.OctetString(payload)
}

func decodeSetRecordInto(sr *csr.SetRecord, d *asn1der.Decoder) error {
	name, err := d.UTF8Bytes()
	if err != nil {
		return err
	}
	internString(&sr.Cfg.Name, name)
	var vals [4]uint64
	for i := range vals {
		if vals[i], err = d.Uint64(); err != nil {
			return err
		}
	}
	sr.Cfg.SizeBytes = int64(vals[0])
	sr.Cfg.Assoc = int(vals[1])
	sr.Cfg.LineBytes = int64(vals[2])
	sr.Cfg.HitLat = int(vals[3])
	payload, err := d.OctetString()
	if err != nil {
		return err
	}
	if len(payload)%17 != 0 {
		return fmt.Errorf("livepoint: set record payload %d not a multiple of 17", len(payload))
	}
	n := len(payload) / 17
	if cap(sr.Entries) < n {
		sr.Entries = make([]csr.Entry, n)
	} else {
		sr.Entries = sr.Entries[:n]
	}
	for i := range sr.Entries {
		sr.Entries[i] = csr.Entry{
			Block: binary.LittleEndian.Uint64(payload[i*17:]),
			Last:  binary.LittleEndian.Uint64(payload[i*17+8:]),
			Dirty: payload[i*17+16] == 1,
		}
	}
	return nil
}

func encodePredConfig(b *asn1der.Builder, cfg bpred.Config) {
	b.UTF8String(cfg.Name)
	b.Uint64(uint64(cfg.Kind))
	b.Uint64(uint64(cfg.TableSize))
	b.Uint64(uint64(cfg.HistBits))
	b.Uint64(uint64(cfg.BTBSets))
	b.Uint64(uint64(cfg.BTBAssoc))
	b.Uint64(uint64(cfg.RASSize))
}

func decodePredConfigInto(cfg *bpred.Config, d *asn1der.Decoder) error {
	name, err := d.UTF8Bytes()
	if err != nil {
		return err
	}
	internString(&cfg.Name, name)
	var vals [6]uint64
	for i := range vals {
		if vals[i], err = d.Uint64(); err != nil {
			return err
		}
	}
	cfg.Kind = bpred.Kind(vals[0])
	cfg.TableSize = int(vals[1])
	cfg.HistBits = int(vals[2])
	cfg.BTBSets = int(vals[3])
	cfg.BTBAssoc = int(vals[4])
	cfg.RASSize = int(vals[5])
	return nil
}

// interface check: SetRecord round-trips preserve the cache.Config needed
// for reconstruction bounds.
var _ = cache.Config{}
