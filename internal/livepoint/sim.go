package livepoint

import (
	"fmt"

	"livepoints/internal/bpred"
	"livepoints/internal/cache"
	"livepoints/internal/functional"
	"livepoints/internal/isa"
	"livepoints/internal/mem"
	"livepoints/internal/uarch"
	"livepoints/internal/warm"
)

// Reconstruct builds warmed simulation structures for the target
// configuration from the live-point's checkpointed state. Cache and TLB
// geometries must be reconstructible from the stored maxima (§4.3); the
// branch-predictor configuration must be one of the stored snapshots.
func (lp *LivePoint) Reconstruct(cfg uarch.Config) (*cache.Hier, *bpred.Predictor, error) {
	if len(lp.Caches) == 0 {
		// Architectural-only (AW-MRRL) checkpoints carry no
		// microarchitectural state: cold start, warmed functionally after
		// load for lp.FuncWarm instructions.
		return cache.NewHier(cfg.Hier), bpred.New(cfg.BP), nil
	}
	hier := cache.NewHier(cfg.Hier)
	assign := []struct {
		dst    **cache.Cache
		target cache.Config
	}{
		{&hier.L1I, cfg.Hier.L1I},
		{&hier.L1D, cfg.Hier.L1D},
		{&hier.L2, cfg.Hier.L2},
		{&hier.ITLB, cfg.Hier.ITLB},
		{&hier.DTLB, cfg.Hier.DTLB},
	}
	for i, a := range assign {
		sr, err := lp.FindCache(a.target.Name)
		if err != nil {
			return nil, nil, err
		}
		c, err := sr.Reconstruct(a.target)
		if err != nil {
			return nil, nil, fmt.Errorf("livepoint: %s: %w", a.target.Name, err)
		}
		if lp.Restricted {
			// Restricted live-state dropped everything the correct path
			// does not touch; the paper leaves that state "uninitialized
			// (effectively random)". Materialize it as garbage lines so
			// ways stay occupied but never hit.
			c.FillInvalid(uint64(lp.Position)*31 + uint64(i) + 1)
		}
		*a.dst = c
	}

	ps, err := lp.FindPred(cfg.BP.Name)
	if err != nil {
		return nil, nil, err
	}
	if ps.Cfg != cfg.BP {
		return nil, nil, fmt.Errorf("livepoint: stored predictor %q has different parameters than requested", cfg.BP.Name)
	}
	bp := bpred.New(cfg.BP)
	if err := bp.Restore(ps.Data); err != nil {
		return nil, nil, err
	}
	return hier, bp, nil
}

// Simulate runs the live-point's detailed window under the given
// configuration and returns the measurement-interval CPI with the core's
// statistics (including the wrong-path unknown-state counters of §5).
//
// For AW-MRRL checkpoints (FuncWarm > 0) the prescribed functional warming
// runs first against the stored live-state, then the detailed window.
func Simulate(lp *LivePoint, cfg uarch.Config) (warm.WindowResult, error) {
	text := lp.TextSource()
	overlay := mem.NewOverlay(&lp.Mem)

	hier, bp, err := lp.Reconstruct(cfg)
	if err != nil {
		return warm.WindowResult{}, err
	}

	arch := functional.State{PC: lp.Arch.PC, Regs: lp.Arch.Regs}
	if lp.FuncWarm > 0 {
		cpu := functional.New(text, overlay)
		cpu.State = arch
		cpu.Warm = &warm.Warmer{H: hier, BP: bp}
		if n, err := cpu.Run(lp.FuncWarm); err != nil || n != lp.FuncWarm {
			return warm.WindowResult{}, fmt.Errorf("livepoint: functional warming from checkpoint failed: %v", err)
		}
		arch = cpu.State
	}

	core := uarch.NewCore(cfg, text, overlay, arch, hier, bp)
	return warm.RunWindow(core, lp.WarmLen, lp.UnitLen)
}

// SimArena holds the reusable per-worker simulation state: a memory
// hierarchy, a branch predictor, a text map, a copy-on-write overlay, and
// a functional CPU. Reconstructing and simulating through an arena
// produces bit-identical results to the allocating Reconstruct/Simulate
// path — a structure reset to a configuration is indistinguishable from a
// freshly built one — while reusing every backing array across points.
//
// An arena serves one goroutine; runners keep one per worker. The zero
// value is ready to use.
type SimArena struct {
	hier    *cache.Hier
	bp      *bpred.Predictor
	text    *textSource
	overlay *mem.Overlay
	cpu     *functional.CPU
	warmer  warm.Warmer
}

// Reconstruct is LivePoint.Reconstruct into the arena's hierarchy and
// predictor. The returned structures are owned by the arena and valid
// until its next Reconstruct or Simulate call.
func (a *SimArena) Reconstruct(lp *LivePoint, cfg uarch.Config) (*cache.Hier, *bpred.Predictor, error) {
	if a.hier == nil {
		a.hier = cache.NewHier(cfg.Hier)
	}
	if err := a.hier.ResetTo(cfg.Hier); err != nil {
		return nil, nil, err
	}
	if a.bp == nil {
		a.bp = bpred.New(cfg.BP)
	}
	if err := a.bp.ResetTo(cfg.BP); err != nil {
		return nil, nil, err
	}
	if len(lp.Caches) == 0 {
		// AW-MRRL checkpoint: cold structures, warmed functionally after
		// load — exactly what ResetTo just produced.
		return a.hier, a.bp, nil
	}
	install := []struct {
		dst    *cache.Cache
		target cache.Config
	}{
		{a.hier.L1I, cfg.Hier.L1I},
		{a.hier.L1D, cfg.Hier.L1D},
		{a.hier.L2, cfg.Hier.L2},
		{a.hier.ITLB, cfg.Hier.ITLB},
		{a.hier.DTLB, cfg.Hier.DTLB},
	}
	for i, t := range install {
		sr, err := lp.FindCache(t.target.Name)
		if err != nil {
			return nil, nil, err
		}
		if err := sr.ReconstructInto(t.dst, t.target); err != nil {
			return nil, nil, fmt.Errorf("livepoint: %s: %w", t.target.Name, err)
		}
		if lp.Restricted {
			// Same garbage-line materialization (and seed) as the
			// allocating path, so restricted runs stay bit-equal.
			t.dst.FillInvalid(uint64(lp.Position)*31 + uint64(i) + 1)
		}
	}

	ps, err := lp.FindPred(cfg.BP.Name)
	if err != nil {
		return nil, nil, err
	}
	if ps.Cfg != cfg.BP {
		return nil, nil, fmt.Errorf("livepoint: stored predictor %q has different parameters than requested", cfg.BP.Name)
	}
	if err := a.bp.Restore(ps.Data); err != nil {
		return nil, nil, err
	}
	return a.hier, a.bp, nil
}

// Simulate is the arena-backed Simulate: identical semantics and
// bit-identical results, with the per-point fixed allocations (text map,
// overlay, hierarchy, predictor, functional CPU) reused across calls.
func (a *SimArena) Simulate(lp *LivePoint, cfg uarch.Config) (warm.WindowResult, error) {
	if a.text == nil {
		a.text = &textSource{insts: make(map[uint64]isa.Inst, 256)}
	}
	a.text.fill(lp)
	if a.overlay == nil {
		a.overlay = mem.NewOverlay(&lp.Mem)
	} else {
		a.overlay.Rebind(&lp.Mem)
	}

	hier, bp, err := a.Reconstruct(lp, cfg)
	if err != nil {
		return warm.WindowResult{}, err
	}

	arch := functional.State{PC: lp.Arch.PC, Regs: lp.Arch.Regs}
	if lp.FuncWarm > 0 {
		if a.cpu == nil {
			a.cpu = functional.New(a.text, a.overlay)
		}
		a.cpu.Reset(a.text, a.overlay, arch)
		a.warmer = warm.Warmer{H: hier, BP: bp}
		a.cpu.Warm = &a.warmer
		if n, err := a.cpu.Run(lp.FuncWarm); err != nil || n != lp.FuncWarm {
			return warm.WindowResult{}, fmt.Errorf("livepoint: functional warming from checkpoint failed: %v", err)
		}
		arch = a.cpu.State
	}

	core := uarch.NewCore(cfg, a.text, a.overlay, arch, hier, bp)
	return warm.RunWindow(core, lp.WarmLen, lp.UnitLen)
}
