package livepoint

import (
	"fmt"

	"livepoints/internal/bpred"
	"livepoints/internal/cache"
	"livepoints/internal/functional"
	"livepoints/internal/mem"
	"livepoints/internal/uarch"
	"livepoints/internal/warm"
)

// Reconstruct builds warmed simulation structures for the target
// configuration from the live-point's checkpointed state. Cache and TLB
// geometries must be reconstructible from the stored maxima (§4.3); the
// branch-predictor configuration must be one of the stored snapshots.
func (lp *LivePoint) Reconstruct(cfg uarch.Config) (*cache.Hier, *bpred.Predictor, error) {
	if len(lp.Caches) == 0 {
		// Architectural-only (AW-MRRL) checkpoints carry no
		// microarchitectural state: cold start, warmed functionally after
		// load for lp.FuncWarm instructions.
		return cache.NewHier(cfg.Hier), bpred.New(cfg.BP), nil
	}
	hier := cache.NewHier(cfg.Hier)
	assign := []struct {
		dst    **cache.Cache
		target cache.Config
	}{
		{&hier.L1I, cfg.Hier.L1I},
		{&hier.L1D, cfg.Hier.L1D},
		{&hier.L2, cfg.Hier.L2},
		{&hier.ITLB, cfg.Hier.ITLB},
		{&hier.DTLB, cfg.Hier.DTLB},
	}
	for i, a := range assign {
		sr, err := lp.FindCache(a.target.Name)
		if err != nil {
			return nil, nil, err
		}
		c, err := sr.Reconstruct(a.target)
		if err != nil {
			return nil, nil, fmt.Errorf("livepoint: %s: %w", a.target.Name, err)
		}
		if lp.Restricted {
			// Restricted live-state dropped everything the correct path
			// does not touch; the paper leaves that state "uninitialized
			// (effectively random)". Materialize it as garbage lines so
			// ways stay occupied but never hit.
			c.FillInvalid(uint64(lp.Position)*31 + uint64(i) + 1)
		}
		*a.dst = c
	}

	ps, err := lp.FindPred(cfg.BP.Name)
	if err != nil {
		return nil, nil, err
	}
	if ps.Cfg != cfg.BP {
		return nil, nil, fmt.Errorf("livepoint: stored predictor %q has different parameters than requested", cfg.BP.Name)
	}
	bp := bpred.New(cfg.BP)
	if err := bp.Restore(ps.Data); err != nil {
		return nil, nil, err
	}
	return hier, bp, nil
}

// Simulate runs the live-point's detailed window under the given
// configuration and returns the measurement-interval CPI with the core's
// statistics (including the wrong-path unknown-state counters of §5).
//
// For AW-MRRL checkpoints (FuncWarm > 0) the prescribed functional warming
// runs first against the stored live-state, then the detailed window.
func Simulate(lp *LivePoint, cfg uarch.Config) (warm.WindowResult, error) {
	text := lp.TextSource()
	img := mem.NewImage(lp.Mem)
	overlay := mem.NewOverlay(img)

	hier, bp, err := lp.Reconstruct(cfg)
	if err != nil {
		return warm.WindowResult{}, err
	}

	arch := functional.State{PC: lp.Arch.PC, Regs: lp.Arch.Regs}
	if lp.FuncWarm > 0 {
		cpu := functional.New(text, overlay)
		cpu.State = arch
		cpu.Warm = &warm.Warmer{H: hier, BP: bp}
		if n, err := cpu.Run(lp.FuncWarm); err != nil || n != lp.FuncWarm {
			return warm.WindowResult{}, fmt.Errorf("livepoint: functional warming from checkpoint failed: %v", err)
		}
		arch = cpu.State
	}

	core := uarch.NewCore(cfg, text, overlay, arch, hier, bp)
	return warm.RunWindow(core, lp.WarmLen, lp.UnitLen)
}
