package livepoint

import (
	"math"
	"path/filepath"
	"testing"

	"livepoints/internal/bpred"
	"livepoints/internal/prog"
	"livepoints/internal/sampling"
	"livepoints/internal/uarch"
	"livepoints/internal/warm"
)

// buildTestLibrary creates a small live-point library for one benchmark and
// returns the design used plus the collected points (program order).
func buildTestLibrary(t *testing.T, name string, scale float64, cfg uarch.Config, stride int, restricted bool) (*prog.Program, sampling.Design, []*LivePoint) {
	t.Helper()
	spec, err := prog.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	p := prog.Generate(spec, scale)
	benchLen, err := warm.BenchLength(p, p.TargetLen*4+1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	design, err := sampling.NewSystematic(benchLen, uarch.MeasureLen, uint64(cfg.DetailedWarm), stride, 1)
	if err != nil {
		t.Fatal(err)
	}
	opts := CreateOpts{
		MaxHier:    cfg.Hier,
		Preds:      []bpred.Config{cfg.BP},
		Restricted: restricted,
	}
	var points []*LivePoint
	err = Create(p, design, opts, func(lp *LivePoint) error {
		points = append(points, lp)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != design.Units() {
		t.Fatalf("created %d points, want %d", len(points), design.Units())
	}
	return p, design, points
}

// TestLivePointMatchesSMARTS is the paper's headline accuracy claim:
// checkpointed warming matches full warming. Per-unit CPIs from live-point
// simulation must track the SMARTS unit CPIs for the same sample design.
func TestLivePointMatchesSMARTS(t *testing.T) {
	for _, name := range []string{"syn.gzip", "syn.mcf"} {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := uarch.Config8Way()
			p, design, points := buildTestLibrary(t, name, 0.02, cfg, 30, false)

			sm, err := warm.RunSMARTS(cfg, p, design, warm.SMARTSOpts{})
			if err != nil {
				t.Fatal(err)
			}

			var lpEst sampling.Estimate
			var maxUnitErr float64
			for i, lp := range points {
				wr, err := Simulate(lp, cfg)
				if err != nil {
					t.Fatalf("point %d: %v", i, err)
				}
				if wr.Stats.CorrectPathUnknownLoads > 0 || wr.Stats.CorrectPathUnknownFetches > 0 {
					t.Fatalf("point %d: correct-path state missing (loads=%d fetches=%d)",
						i, wr.Stats.CorrectPathUnknownLoads, wr.Stats.CorrectPathUnknownFetches)
				}
				lpEst.Add(wr.UnitCPI)
				ue := math.Abs(wr.UnitCPI-sm.UnitCPIs[i]) / sm.UnitCPIs[i]
				if ue > maxUnitErr {
					maxUnitErr = ue
				}
			}
			bias := math.Abs(lpEst.Mean()-sm.Est.Mean()) / sm.Est.Mean()
			t.Logf("%s: SMARTS %.4f vs live-points %.4f over %d units: bias %.2f%%, worst unit %.2f%%",
				name, sm.Est.Mean(), lpEst.Mean(), lpEst.N(), 100*bias, 100*maxUnitErr)
			if bias > 0.02 {
				t.Errorf("live-point bias vs SMARTS %.2f%% exceeds 2%%", 100*bias)
			}
		})
	}
}

// TestEncodeDecodeRoundTrip checks the DER format preserves every field.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	cfg := uarch.Config8Way()
	_, _, points := buildTestLibrary(t, "syn.gcc", 0.005, cfg, 40, false)
	lp := points[0]

	blob, bd := Encode(lp)
	if bd.Total() != len(blob) {
		t.Fatalf("size breakdown %d != encoded length %d", bd.Total(), len(blob))
	}
	got, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Benchmark != lp.Benchmark || got.Index != lp.Index || got.Position != lp.Position ||
		got.WarmLen != lp.WarmLen || got.UnitLen != lp.UnitLen || got.FuncWarm != lp.FuncWarm ||
		got.Restricted != lp.Restricted {
		t.Fatal("header fields did not round-trip")
	}
	if got.Arch != lp.Arch {
		t.Fatal("architectural state did not round-trip")
	}
	if got.Mem.Len() != lp.Mem.Len() {
		t.Fatalf("memory words: %d vs %d", got.Mem.Len(), lp.Mem.Len())
	}
	for a, v := range lp.Mem.Map() {
		if gv, ok := got.Mem.Get(a); !ok || gv != v {
			t.Fatalf("memory word %#x: %#x vs %#x", a, gv, v)
		}
	}
	if got.TextInsts() != lp.TextInsts() {
		t.Fatalf("text instructions: %d vs %d", got.TextInsts(), lp.TextInsts())
	}
	if len(got.Caches) != len(lp.Caches) || len(got.TLBs) != len(lp.TLBs) || len(got.Preds) != len(lp.Preds) {
		t.Fatal("section counts did not round-trip")
	}
	for i := range lp.Caches {
		if got.Caches[i].Cfg != lp.Caches[i].Cfg || got.Caches[i].Len() != lp.Caches[i].Len() {
			t.Fatalf("cache record %d did not round-trip", i)
		}
		for j := range lp.Caches[i].Entries {
			if got.Caches[i].Entries[j] != lp.Caches[i].Entries[j] {
				t.Fatalf("cache record %d entry %d did not round-trip", i, j)
			}
		}
	}
	for i := range lp.Preds {
		if got.Preds[i].Cfg != lp.Preds[i].Cfg {
			t.Fatalf("predictor %d config did not round-trip", i)
		}
		if string(got.Preds[i].Data) != string(lp.Preds[i].Data) {
			t.Fatalf("predictor %d snapshot did not round-trip", i)
		}
	}

	// Decoded points must simulate identically to the originals.
	w1, err := Simulate(lp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Simulate(got, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w1.UnitCPI != w2.UnitCPI {
		t.Fatalf("decoded point simulates differently: %.6f vs %.6f", w1.UnitCPI, w2.UnitCPI)
	}
}

// TestLibraryWriteReadShuffle checks the gzip library container and
// shuffling.
func TestLibraryWriteReadShuffle(t *testing.T) {
	cfg := uarch.Config8Way()
	_, design, points := buildTestLibrary(t, "syn.gzip", 0.01, cfg, 20, false)

	dir := t.TempDir()
	raw := filepath.Join(dir, "raw.lplib")
	shuffled := filepath.Join(dir, "shuffled.lplib")

	blobs := make([][]byte, len(points))
	for i, lp := range points {
		blobs[i], _ = Encode(lp)
	}
	meta := Meta{Benchmark: "syn.gzip", UnitLen: design.UnitLen, WarmLen: design.WarmLen}
	if _, err := WriteLibrary(raw, meta, blobs); err != nil {
		t.Fatal(err)
	}
	if err := ShuffleFile(raw, shuffled, 42); err != nil {
		t.Fatal(err)
	}

	gotMeta, gotBlobs, err := ReadAllBlobs(shuffled)
	if err != nil {
		t.Fatal(err)
	}
	if !gotMeta.Shuffled {
		t.Fatal("shuffled library not marked shuffled")
	}
	if len(gotBlobs) != len(blobs) {
		t.Fatalf("read %d blobs, want %d", len(gotBlobs), len(blobs))
	}
	// Same multiset of points, different order (with overwhelming
	// probability for >10 points).
	seen := map[int]bool{}
	order := make([]int, 0, len(gotBlobs))
	for _, b := range gotBlobs {
		lp, err := Decode(b)
		if err != nil {
			t.Fatal(err)
		}
		if seen[lp.Index] {
			t.Fatalf("duplicate point index %d after shuffle", lp.Index)
		}
		seen[lp.Index] = true
		order = append(order, lp.Index)
	}
	inOrder := true
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			inOrder = false
		}
	}
	if inOrder && len(order) > 10 {
		t.Fatal("shuffle left the library in program order")
	}
}

// TestRunFileOnlineStopsEarly checks random-order online estimation stops
// once confidence is reached and refuses unshuffled libraries.
func TestRunFileOnlineStopsEarly(t *testing.T) {
	cfg := uarch.Config8Way()
	_, design, points := buildTestLibrary(t, "syn.swim", 0.02, cfg, 10, false)

	dir := t.TempDir()
	raw := filepath.Join(dir, "raw.lplib")
	shuffled := filepath.Join(dir, "shuffled.lplib")
	blobs := make([][]byte, len(points))
	for i, lp := range points {
		blobs[i], _ = Encode(lp)
	}
	meta := Meta{Benchmark: "syn.swim", UnitLen: design.UnitLen, WarmLen: design.WarmLen}
	if _, err := WriteLibrary(raw, meta, blobs); err != nil {
		t.Fatal(err)
	}
	if err := ShuffleFile(raw, shuffled, 7); err != nil {
		t.Fatal(err)
	}

	// Early stopping on the unshuffled library must be refused.
	if _, err := RunFile(raw, RunOpts{Cfg: cfg, Z: sampling.Z997, RelErr: 0.10}); err == nil {
		t.Fatal("early stopping on unshuffled library should be rejected")
	}

	res, err := RunFile(shuffled, RunOpts{Cfg: cfg, Z: sampling.Z997, RelErr: 0.10, RecordHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Processed < sampling.MinSampleSize {
		t.Fatalf("processed %d points, below the CLT minimum", res.Processed)
	}
	if res.Processed == len(points) && res.Est.RelCI(sampling.Z997) > 0.10 {
		t.Fatalf("library exhausted without reaching confidence: ±%.1f%%", 100*res.Est.RelCI(sampling.Z997))
	}
	if len(res.History) != res.Processed {
		t.Fatalf("history has %d snapshots, want %d", len(res.History), res.Processed)
	}
	t.Logf("stopped after %d of %d points at ±%.2f%%", res.Processed, len(points), 100*res.Est.RelCI(sampling.Z997))
}

// TestParallelMatchesSerialEstimate checks the parallel runner converges to
// the same mean over a full library pass.
func TestParallelMatchesSerialEstimate(t *testing.T) {
	cfg := uarch.Config8Way()
	_, design, points := buildTestLibrary(t, "syn.gzip", 0.01, cfg, 20, false)
	dir := t.TempDir()
	path := filepath.Join(dir, "lib.lplib")
	blobs := make([][]byte, len(points))
	for i, lp := range points {
		blobs[i], _ = Encode(lp)
	}
	meta := Meta{Benchmark: "syn.gzip", UnitLen: design.UnitLen, WarmLen: design.WarmLen, Shuffled: true}
	if _, err := WriteLibrary(path, meta, blobs); err != nil {
		t.Fatal(err)
	}
	serial, err := RunFile(path, RunOpts{Cfg: cfg})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunFile(path, RunOpts{Cfg: cfg, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Processed != par.Processed {
		t.Fatalf("serial processed %d, parallel %d", serial.Processed, par.Processed)
	}
	if math.Abs(serial.Est.Mean()-par.Est.Mean()) > 1e-12 {
		t.Fatalf("parallel mean %.9f differs from serial %.9f", par.Est.Mean(), serial.Est.Mean())
	}
}

// TestRestrictedLiveStateHasMoreBias reproduces the Figure 5 direction:
// restricted live-state (correct-path-only microarchitectural state) must
// show at least as much bias as full live-state on a branchy workload, and
// its live-points must be smaller.
func TestRestrictedLiveStateHasMoreBias(t *testing.T) {
	cfg := uarch.Config8Way()
	p, design, full := buildTestLibrary(t, "syn.gcc", 0.02, cfg, 30, false)
	_, _, restricted := buildTestLibrary(t, "syn.gcc", 0.02, cfg, 30, true)

	sm, err := warm.RunSMARTS(cfg, p, design, warm.SMARTSOpts{})
	if err != nil {
		t.Fatal(err)
	}

	var fullErr, restErr float64
	var fullBytes, restBytes int
	for i := range full {
		wf, err := Simulate(full[i], cfg)
		if err != nil {
			t.Fatal(err)
		}
		wrr, err := Simulate(restricted[i], cfg)
		if err != nil {
			t.Fatal(err)
		}
		fullErr += math.Abs(wf.UnitCPI - sm.UnitCPIs[i])
		restErr += math.Abs(wrr.UnitCPI - sm.UnitCPIs[i])
		bf, _ := Encode(full[i])
		br, _ := Encode(restricted[i])
		fullBytes += len(bf)
		restBytes += len(br)
	}
	t.Logf("avg |unit error|: full %.4f vs restricted %.4f; bytes full %d vs restricted %d",
		fullErr/float64(len(full)), restErr/float64(len(full)), fullBytes, restBytes)
	if restBytes >= fullBytes {
		t.Errorf("restricted live-points should be smaller: %d vs %d", restBytes, fullBytes)
	}
	if restErr < fullErr {
		t.Logf("note: restricted error below full on this sample (both should be small)")
	}
}

// TestReconstructSmallerConfig checks a library captured at the 16-way
// maximum simulates the 8-way configuration (cache reusability, §4.3).
func TestReconstructSmallerConfig(t *testing.T) {
	cfg16 := uarch.Config16Way()
	cfg8 := uarch.Config8Way()

	spec, err := prog.ByName("syn.gzip")
	if err != nil {
		t.Fatal(err)
	}
	p := prog.Generate(spec, 0.01)
	benchLen, err := warm.BenchLength(p, p.TargetLen*4+1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	design, err := sampling.NewSystematic(benchLen, uarch.MeasureLen, uint64(cfg8.DetailedWarm), 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	opts := CreateOpts{
		MaxHier: cfg16.Hier,
		Preds:   []bpred.Config{cfg16.BP, cfg8.BP}, // store both predictors
	}
	var points []*LivePoint
	if err := Create(p, design, opts, func(lp *LivePoint) error {
		points = append(points, lp)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	wr, err := Simulate(points[0], cfg8)
	if err != nil {
		t.Fatalf("simulating 8-way from 16-way-max library: %v", err)
	}
	if wr.UnitCPI <= 0 {
		t.Fatal("bad CPI")
	}
}
