package livepoint

import (
	"os"
)

// Source supplies encoded live-point blobs to experiment runners, one blob
// per point in the library's read order. Implementations include the
// sequential v1 single-stream file (this package), the random-access
// sharded v2 store (internal/lpstore), and the remote streaming client
// (internal/lpserve).
type Source interface {
	// Meta describes the library behind the source.
	Meta() Meta
	// NextBlob returns the next encoded live-point, or io.EOF after the
	// last.
	//
	// Ownership: the returned slice is only guaranteed valid until the
	// next NextBlob call on the same source — implementations may reuse
	// the buffer. Callers that retain a blob (or hand it to another
	// goroutine) must copy it first. DecodeInto never retains the blob,
	// so decode-then-recycle needs no copy.
	NextBlob() ([]byte, error)
	// Close releases the source's resources. A source need not be drained
	// before closing.
	Close() error
}

// ShardedSource is a Source whose points live in independently decodable
// shards. Parallel runners pull from per-shard sub-sources so workers
// decompress concurrently instead of funnelling through one stream.
type ShardedSource interface {
	Source
	// NumShards returns the number of shards.
	NumShards() int
	// OpenShard returns an independent source over shard s's points, in
	// the library's read order restricted to that shard. Shard sources
	// from the same parent are safe to drive from different goroutines.
	OpenShard(s int) (Source, error)
}

// OpenerFunc inspects a library file. When it recognizes the format it
// returns an open Source with ok=true; ok=false declines the file and
// lets the next opener (ultimately the sequential v1 reader) try.
type OpenerFunc func(path string) (src Source, ok bool, err error)

// formatOpeners is consulted by OpenSource in registration order. All
// registration happens from package init functions, so reads need no lock.
var formatOpeners []OpenerFunc

// RegisterFormat adds a library-format opener. It is intended to be called
// from an init function, the way image formats self-register: importing
// internal/lpstore teaches OpenSource the sharded v2 format without this
// package depending on it.
func RegisterFormat(fn OpenerFunc) { formatOpeners = append(formatOpeners, fn) }

// OpenSource opens a library file as a Source, auto-detecting the format:
// registered openers first, then the sequential v1 stream.
func OpenSource(path string) (Source, error) {
	for _, fn := range formatOpeners {
		src, ok, err := fn(path)
		if err != nil {
			return nil, err
		}
		if ok {
			return src, nil
		}
	}
	return openFileSource(path)
}

// fileSource adapts the sequential v1 single-stream Reader to Source.
type fileSource struct {
	f *os.File
	r *Reader
}

func openFileSource(path string) (*fileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r, err := NewReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &fileSource{f: f, r: r}, nil
}

func (s *fileSource) Meta() Meta                { return s.r.Meta }
func (s *fileSource) NextBlob() ([]byte, error) { return s.r.NextBlob() }

// Close closes the decompressor before the file: on a fully drained
// stream the reader's Close verifies the gzip CRC trailer, so corruption
// there fails the run instead of vanishing with the file handle.
func (s *fileSource) Close() error {
	rerr := s.r.Close()
	ferr := s.f.Close()
	if rerr != nil {
		return rerr
	}
	return ferr
}
