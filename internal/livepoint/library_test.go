package livepoint

import (
	"bytes"
	"compress/gzip"
	"strings"
	"testing"

	"livepoints/internal/asn1der"
)

// gzipped compresses raw into a single gzip stream.
func gzipped(t *testing.T, raw []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	if _, err := gz.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// validLibrary builds an in-memory v1 library with the given declared
// count and actual blobs.
func validLibrary(t *testing.T, declared int, blobs [][]byte) []byte {
	t.Helper()
	b := asn1der.NewBuilder()
	b.Sequence(func(b *asn1der.Builder) {
		b.UTF8String(libMagic)
		b.UTF8String("syn.err")
		b.Uint64(uint64(declared))
		b.Uint64(100)
		b.Uint64(200)
		b.Bool(false)
	})
	raw := b.Bytes()
	for _, blob := range blobs {
		raw = append(raw, blob...)
	}
	return gzipped(t, raw)
}

func someBlobs(n int) [][]byte {
	blobs := make([][]byte, n)
	for i := range blobs {
		b := asn1der.NewBuilder()
		b.OctetString(bytes.Repeat([]byte{byte(i)}, 40))
		blobs[i] = b.Bytes()
	}
	return blobs
}

func TestNewReaderWrongMagic(t *testing.T) {
	b := asn1der.NewBuilder()
	b.Sequence(func(b *asn1der.Builder) {
		b.UTF8String("not-a-livepoint-library")
		b.UTF8String("bench")
		b.Uint64(0)
		b.Uint64(0)
		b.Uint64(0)
		b.Bool(false)
	})
	_, err := NewReader(bytes.NewReader(gzipped(t, b.Bytes())))
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("wrong magic should be rejected by name, got: %v", err)
	}
}

func TestNewReaderNotGzip(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("plain text, not a library"))); err == nil {
		t.Fatal("non-gzip input should fail to open")
	}
}

// TestNewReaderOnV2Magic documents the cross-format error: a v2 sharded
// library is not a gzip stream, so the v1 reader must refuse it at open.
func TestNewReaderOnV2Magic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("LPLIBv2\nwhatever follows"))); err == nil {
		t.Fatal("v2 library should be rejected by the v1 reader")
	}
}

func TestNewReaderTruncatedHeader(t *testing.T) {
	lib := validLibrary(t, 2, someBlobs(2))
	// Truncate inside the compressed stream: either gzip open or header
	// read must fail, never succeed.
	for _, cut := range []int{1, 5, len(lib) / 2} {
		if cut >= len(lib) {
			continue
		}
		r, err := NewReader(bytes.NewReader(lib[:cut]))
		if err != nil {
			continue
		}
		if _, err := r.NextBlob(); err == nil {
			t.Fatalf("truncation at %d of %d bytes went unnoticed", cut, len(lib))
		}
	}
}

// TestReaderTruncatedMidPoint checks a stream that dies inside a point
// body surfaces an error naming the point.
func TestReaderTruncatedMidPoint(t *testing.T) {
	blobs := someBlobs(3)
	b := asn1der.NewBuilder()
	b.Sequence(func(b *asn1der.Builder) {
		b.UTF8String(libMagic)
		b.UTF8String("syn.err")
		b.Uint64(3)
		b.Uint64(100)
		b.Uint64(200)
		b.Bool(false)
	})
	raw := b.Bytes()
	raw = append(raw, blobs[0]...)
	raw = append(raw, blobs[1][:10]...) // second point cut short
	r, err := NewReader(bytes.NewReader(gzipped(t, raw)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.NextBlob(); err != nil {
		t.Fatalf("first point should read cleanly: %v", err)
	}
	if _, err := r.NextBlob(); err == nil || !strings.Contains(err.Error(), "point 1") {
		t.Fatalf("mid-point truncation should name point 1, got: %v", err)
	}
}

// TestReaderCountOverrun checks a library declaring more points than it
// contains fails on read rather than returning a clean EOF.
func TestReaderCountOverrun(t *testing.T) {
	lib := validLibrary(t, 5, someBlobs(2))
	r, err := NewReader(bytes.NewReader(lib))
	if err != nil {
		t.Fatal(err)
	}
	if r.Meta.Count != 5 {
		t.Fatalf("declared count %d, want 5", r.Meta.Count)
	}
	var readErr error
	n := 0
	for i := 0; i < 5; i++ {
		if _, err := r.NextBlob(); err != nil {
			readErr = err
			break
		}
		n++
	}
	if readErr == nil {
		t.Fatal("declared-count overrun went unnoticed")
	}
	if n != 2 {
		t.Fatalf("read %d points before the overrun error, want 2", n)
	}
}

// TestWriterCountMismatch checks both writer-side count violations.
func TestWriterCountMismatch(t *testing.T) {
	blob := someBlobs(1)[0]

	var buf bytes.Buffer
	w, err := NewWriter(&buf, Meta{Benchmark: "b", Count: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Add(blob); err != nil {
		t.Fatal(err)
	}
	if err := w.Add(blob); err == nil {
		t.Fatal("adding beyond the declared count should fail")
	}

	buf.Reset()
	w, err = NewWriter(&buf, Meta{Benchmark: "b", Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Add(blob); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err == nil {
		t.Fatal("closing short of the declared count should fail")
	}
}

// TestReadElementBadLength exercises the DER stream splitter's
// length-of-length guard.
func TestReadElementBadLength(t *testing.T) {
	blobs := [][]byte{
		{0x04, 0x85, 1, 2, 3, 4, 5}, // length-of-length 5 > 4
		{0x04, 0x80},                // length-of-length 0 (indefinite, not DER)
	}
	for _, raw := range blobs {
		lib := validLibrary(t, 1, [][]byte{raw})
		r, err := NewReader(bytes.NewReader(lib))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.NextBlob(); err == nil || !strings.Contains(err.Error(), "length-of-length") {
			t.Fatalf("bad length-of-length %#x should be rejected, got: %v", raw[1], err)
		}
	}
}

// TestDecodeMetaGarbage checks non-SEQUENCE header bytes fail cleanly.
func TestDecodeMetaGarbage(t *testing.T) {
	b := asn1der.NewBuilder()
	b.OctetString([]byte("not a header sequence"))
	if _, err := decodeMeta(b.Bytes()); err == nil {
		t.Fatal("non-sequence header should fail to decode")
	}
	if _, err := decodeMeta(nil); err == nil {
		t.Fatal("empty header should fail to decode")
	}
}
