package livepoint

import (
	"errors"
	"io"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"livepoints/internal/uarch"
)

// fakeSharded serves in-memory blobs and records shard opens, so tests
// can pin down which parallel path RunSource picked.
type fakeSharded struct {
	meta   Meta
	blobs  [][]byte
	pos    int
	shards int
	opens  atomic.Int32
}

func (f *fakeSharded) Meta() Meta { return f.meta }

func (f *fakeSharded) NextBlob() ([]byte, error) {
	if f.pos >= len(f.blobs) {
		return nil, io.EOF
	}
	b := f.blobs[f.pos]
	f.pos++
	return b, nil
}

func (f *fakeSharded) Close() error   { return nil }
func (f *fakeSharded) NumShards() int { return f.shards }

func (f *fakeSharded) OpenShard(s int) (Source, error) {
	f.opens.Add(1)
	per := (len(f.blobs) + f.shards - 1) / f.shards
	lo := s * per
	hi := lo + per
	if hi > len(f.blobs) {
		hi = len(f.blobs)
	}
	return &fakeSharded{meta: f.meta, blobs: f.blobs[lo:hi], shards: 1}, nil
}

// TestRunSourceShardDispatch checks the statistical-safety routing rule:
// parallel whole-library passes drain shards concurrently, but any
// truncated run (stopping rule or point cap) must stay on the read-order
// feeder — a shard-major prefix of physically consecutive points is not
// an unbiased sample.
func TestRunSourceShardDispatch(t *testing.T) {
	cfg := uarch.Config8Way()
	_, design, points := buildTestLibrary(t, "syn.gzip", 0.01, cfg, 20, false)
	blobs := make([][]byte, len(points))
	for i, lp := range points {
		blobs[i], _ = Encode(lp)
	}
	meta := Meta{Benchmark: "syn.gzip", Count: len(blobs), UnitLen: design.UnitLen, WarmLen: design.WarmLen, Shuffled: true}
	newSrc := func() *fakeSharded {
		return &fakeSharded{meta: meta, blobs: blobs, shards: 4}
	}

	// Whole library: the sharded path runs and covers every point.
	src := newSrc()
	res, err := RunSource(src, RunOpts{Cfg: cfg, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Processed != len(blobs) {
		t.Fatalf("whole-library parallel processed %d of %d", res.Processed, len(blobs))
	}
	if src.opens.Load() == 0 {
		t.Fatal("whole-library parallel run should pull from shards")
	}

	// Point cap: must use the read-order feeder, never shards.
	src = newSrc()
	res, err = RunSource(src, RunOpts{Cfg: cfg, Parallel: 4, MaxPoints: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Processed != 5 {
		t.Fatalf("capped parallel processed %d, want 5", res.Processed)
	}
	if n := src.opens.Load(); n != 0 {
		t.Fatalf("capped parallel run opened %d shards; capped runs must stay in read order", n)
	}

	// Stopping rule: likewise read-order only.
	src = newSrc()
	if _, err = RunSource(src, RunOpts{Cfg: cfg, Parallel: 4, RelErr: 0.5}); err != nil {
		t.Fatal(err)
	}
	if n := src.opens.Load(); n != 0 {
		t.Fatalf("early-stopping parallel run opened %d shards; stopping runs must stay in read order", n)
	}
}

// failShards is a ShardedSource whose every OpenShard fails — the
// degenerate case of a library whose backing storage vanished mid-run.
type failShards struct {
	meta   Meta
	shards int
}

func (f *failShards) Meta() Meta                    { return f.meta }
func (f *failShards) NextBlob() ([]byte, error)     { return nil, io.EOF }
func (f *failShards) Close() error                  { return nil }
func (f *failShards) NumShards() int                { return f.shards }
func (f *failShards) OpenShard(int) (Source, error) { return nil, errors.New("shard storage gone") }

// TestRunShardedOpenShardFailureNoLeak is the goroutine-leak regression:
// a worker whose OpenShard fails used to return without draining the
// shard channel, stranding the feeder on its next send forever when
// shards outnumber workers. The run must instead fail and release every
// goroutine it started.
func TestRunShardedOpenShardFailureNoLeak(t *testing.T) {
	g0 := runtime.NumGoroutine()
	src := &failShards{meta: Meta{Benchmark: "syn.gzip", Count: 80}, shards: 16}
	if _, err := RunSource(src, RunOpts{Cfg: uarch.Config8Way(), Parallel: 4}); err == nil {
		t.Fatal("run over failing shards reported success")
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > g0 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d live, %d before the run", runtime.NumGoroutine(), g0)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunParallelFailFast: the first worker error must stop the feeder.
// Before the fix, collectOuts recorded the error but let the feeder pull
// (and workers simulate) the entire remaining library before reporting
// a failure that had already happened on blob one.
func TestRunParallelFailFast(t *testing.T) {
	cfg := uarch.Config8Way()
	_, design, points := buildTestLibrary(t, "syn.gzip", 0.01, cfg, 20, false)
	good, _ := Encode(points[0])
	blobs := make([][]byte, 300)
	blobs[0] = []byte("not a live point")
	for i := 1; i < len(blobs); i++ {
		blobs[i] = good
	}
	meta := Meta{Benchmark: "syn.gzip", Count: len(blobs), UnitLen: design.UnitLen, WarmLen: design.WarmLen, Shuffled: true}
	src := &fakeSharded{meta: meta, blobs: blobs, shards: 1}
	if _, err := RunSource(src, RunOpts{Cfg: cfg, Parallel: 4}); err == nil {
		t.Fatal("corrupt blob did not fail the run")
	}
	if src.pos >= len(blobs)/2 {
		t.Fatalf("feeder pulled %d of %d blobs after the first failure; fail-fast did not fire", src.pos, len(blobs))
	}
}

// TestParallelTimingSplit pins the time-accounting contract: every
// execution path — sharded whole-library, read-order parallel feeder,
// and the matched-pair loop — reports the serial path's split (stream
// reads + decode as LoadTime, detailed simulation as SimTime), not a
// zero LoadTime with decode folded into a wall-clock SimTime.
func TestParallelTimingSplit(t *testing.T) {
	cfg := uarch.Config8Way()
	_, design, points := buildTestLibrary(t, "syn.gzip", 0.01, cfg, 20, false)
	blobs := make([][]byte, len(points))
	for i, lp := range points {
		blobs[i], _ = Encode(lp)
	}
	meta := Meta{Benchmark: "syn.gzip", Count: len(blobs), UnitLen: design.UnitLen, WarmLen: design.WarmLen, Shuffled: true}
	newSrc := func(shards int) *fakeSharded {
		return &fakeSharded{meta: meta, blobs: blobs, shards: shards}
	}

	res, err := RunSource(newSrc(4), RunOpts{Cfg: cfg, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.LoadTime <= 0 || res.SimTime <= 0 {
		t.Fatalf("sharded parallel run lost its load/sim split: load=%v sim=%v", res.LoadTime, res.SimTime)
	}

	res, err = RunSource(newSrc(1), RunOpts{Cfg: cfg, Parallel: 4, MaxPoints: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.LoadTime <= 0 || res.SimTime <= 0 {
		t.Fatalf("feeder parallel run lost its load/sim split: load=%v sim=%v", res.LoadTime, res.SimTime)
	}

	mres, err := RunMatchedSource(newSrc(1), MatchedOpts{Base: cfg, Exp: cfg, MaxPoints: 5})
	if err != nil {
		t.Fatal(err)
	}
	if mres.LoadTime <= 0 || mres.SimTime <= 0 {
		t.Fatalf("matched run lost its load/sim split: load=%v sim=%v", mres.LoadTime, mres.SimTime)
	}
}
