package livepoint

import (
	"io"
	"sync/atomic"
	"testing"

	"livepoints/internal/uarch"
)

// fakeSharded serves in-memory blobs and records shard opens, so tests
// can pin down which parallel path RunSource picked.
type fakeSharded struct {
	meta   Meta
	blobs  [][]byte
	pos    int
	shards int
	opens  atomic.Int32
}

func (f *fakeSharded) Meta() Meta { return f.meta }

func (f *fakeSharded) NextBlob() ([]byte, error) {
	if f.pos >= len(f.blobs) {
		return nil, io.EOF
	}
	b := f.blobs[f.pos]
	f.pos++
	return b, nil
}

func (f *fakeSharded) Close() error   { return nil }
func (f *fakeSharded) NumShards() int { return f.shards }

func (f *fakeSharded) OpenShard(s int) (Source, error) {
	f.opens.Add(1)
	per := (len(f.blobs) + f.shards - 1) / f.shards
	lo := s * per
	hi := lo + per
	if hi > len(f.blobs) {
		hi = len(f.blobs)
	}
	return &fakeSharded{meta: f.meta, blobs: f.blobs[lo:hi], shards: 1}, nil
}

// TestRunSourceShardDispatch checks the statistical-safety routing rule:
// parallel whole-library passes drain shards concurrently, but any
// truncated run (stopping rule or point cap) must stay on the read-order
// feeder — a shard-major prefix of physically consecutive points is not
// an unbiased sample.
func TestRunSourceShardDispatch(t *testing.T) {
	cfg := uarch.Config8Way()
	_, design, points := buildTestLibrary(t, "syn.gzip", 0.01, cfg, 20, false)
	blobs := make([][]byte, len(points))
	for i, lp := range points {
		blobs[i], _ = Encode(lp)
	}
	meta := Meta{Benchmark: "syn.gzip", Count: len(blobs), UnitLen: design.UnitLen, WarmLen: design.WarmLen, Shuffled: true}
	newSrc := func() *fakeSharded {
		return &fakeSharded{meta: meta, blobs: blobs, shards: 4}
	}

	// Whole library: the sharded path runs and covers every point.
	src := newSrc()
	res, err := RunSource(src, RunOpts{Cfg: cfg, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Processed != len(blobs) {
		t.Fatalf("whole-library parallel processed %d of %d", res.Processed, len(blobs))
	}
	if src.opens.Load() == 0 {
		t.Fatal("whole-library parallel run should pull from shards")
	}

	// Point cap: must use the read-order feeder, never shards.
	src = newSrc()
	res, err = RunSource(src, RunOpts{Cfg: cfg, Parallel: 4, MaxPoints: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Processed != 5 {
		t.Fatalf("capped parallel processed %d, want 5", res.Processed)
	}
	if n := src.opens.Load(); n != 0 {
		t.Fatalf("capped parallel run opened %d shards; capped runs must stay in read order", n)
	}

	// Stopping rule: likewise read-order only.
	src = newSrc()
	if _, err = RunSource(src, RunOpts{Cfg: cfg, Parallel: 4, RelErr: 0.5}); err != nil {
		t.Fatal(err)
	}
	if n := src.opens.Load(); n != 0 {
		t.Fatalf("early-stopping parallel run opened %d shards; stopping runs must stay in read order", n)
	}
}
