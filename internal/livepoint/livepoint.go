// Package livepoint implements the paper's primary contribution: live-points
// — checkpoints that replace functional warming in simulation sampling.
//
// A live-point stores, for one pre-selected detailed window:
//
//   - checkpointed warming state (§4.3): the functionally-warmed
//     long-history structures — cache and TLB tag state as Cache Set
//     Records captured at a user-chosen maximum configuration, and one
//     snapshot per branch-predictor configuration of interest;
//   - live-state (§5): the minimal architectural state the window's
//     correct path will touch — the register file plus only the memory
//     words the window reads before writing, and the instruction text
//     around the executed path (which also covers most wrong-path fetch).
//
// Wrong-path execution is approximated, not stored: branch-predictor
// outcomes identify the wrong-path instruction sequence, and the stored
// cache tags give wrong-path load latency; wrong-path operand values are
// unavailable and substituted with zero (§5). The detailed core counts
// these events so experiments can verify they stay rare.
package livepoint

import (
	"fmt"
	"sort"

	"livepoints/internal/bpred"
	"livepoints/internal/cache"
	"livepoints/internal/csr"
	"livepoints/internal/functional"
	"livepoints/internal/isa"
	"livepoints/internal/mem"
	"livepoints/internal/prog"
	"livepoints/internal/sampling"
)

// ArchState is the checkpointed architectural register state.
type ArchState struct {
	PC   uint64
	Regs [isa.NumRegs]uint64
}

// TextRange is a contiguous run of stored instruction text.
type TextRange struct {
	StartPC uint64
	Insts   []isa.Inst
}

// PredSnapshot is one stored branch-predictor configuration.
type PredSnapshot struct {
	Cfg  bpred.Config
	Data []byte
}

// LivePoint is one decoded live-point.
type LivePoint struct {
	Benchmark string
	Index     int    // unit index within the sample design
	Position  uint64 // instruction position where measurement starts
	WarmLen   uint64 // detailed-warming instructions before measurement
	UnitLen   uint64 // measurement instructions

	// FuncWarm is nonzero only for architectural-only (AW-MRRL)
	// checkpoints: the functional-warming instructions to execute after
	// loading, before the detailed window begins.
	FuncWarm uint64

	Restricted bool

	Arch ArchState
	// Mem holds the live-state words (word address -> first-read value) as
	// an address-sorted table; use Mem.Map() for a map view.
	Mem  MemTable
	Text []TextRange

	Caches []*csr.SetRecord // L1I, L1D, L2 order (max configuration)
	TLBs   []*csr.SetRecord // ITLB, DTLB order
	Preds  []PredSnapshot
}

// FindPred returns the stored snapshot for the named predictor
// configuration.
func (lp *LivePoint) FindPred(name string) (PredSnapshot, error) {
	for _, ps := range lp.Preds {
		if ps.Cfg.Name == name {
			return ps, nil
		}
	}
	return PredSnapshot{}, fmt.Errorf("livepoint: no stored predictor %q (have %d snapshots)", name, len(lp.Preds))
}

// FindCache returns the stored record for the named cache.
func (lp *LivePoint) FindCache(name string) (*csr.SetRecord, error) {
	for _, sr := range lp.Caches {
		if sr.Cfg.Name == name {
			return sr, nil
		}
	}
	for _, sr := range lp.TLBs {
		if sr.Cfg.Name == name {
			return sr, nil
		}
	}
	return nil, fmt.Errorf("livepoint: no stored cache %q", name)
}

// textSource adapts the sparse stored text to the simulator interface.
type textSource struct {
	insts map[uint64]isa.Inst
}

// Fetch implements functional.TextSource. ok=false for uncaptured
// addresses (reachable only via wrong paths).
func (ts *textSource) Fetch(pc uint64) (isa.Inst, bool) {
	in, ok := ts.insts[pc]
	return in, ok
}

// fill repopulates the text map from a live-point's stored ranges,
// reusing the map's buckets across points.
func (ts *textSource) fill(lp *LivePoint) {
	clear(ts.insts)
	for _, r := range lp.Text {
		for i, in := range r.Insts {
			ts.insts[r.StartPC+uint64(i)] = in
		}
	}
}

// TextSource builds the simulator text source from the stored ranges.
func (lp *LivePoint) TextSource() functional.TextSource {
	ts := &textSource{insts: make(map[uint64]isa.Inst, 256)}
	ts.fill(lp)
	return ts
}

// TextInsts returns the number of stored instructions.
func (lp *LivePoint) TextInsts() int {
	n := 0
	for _, r := range lp.Text {
		n += len(r.Insts)
	}
	return n
}

// CreateOpts configures live-point creation.
type CreateOpts struct {
	// MaxHier fixes the cache and TLB bounds the library supports
	// (§4.3): any simulated configuration with the same line sizes, no
	// more sets and no higher associativity per structure can be
	// reconstructed.
	MaxHier cache.HierConfig
	// Preds lists the branch-predictor configurations to warm and store
	// ("storing multiple configurations", §4.3).
	Preds []bpred.Config
	// Restricted drops all state not touched by the window's correct
	// path — the Figure 5 ablation.
	Restricted bool
	// TextPad stores this many instructions of text either side of each
	// executed instruction so that near-path wrong-path fetch finds its
	// text (default 32).
	TextPad int
	// RunAhead extends the scouted capture this many instructions past
	// the window end: the out-of-order pipeline dispatches (and reads
	// state for) instructions beyond the final committed one, bounded by
	// the RUU and fetch-queue depth (default 512).
	RunAhead int
	// NoMicroarch creates architectural-only checkpoints with a
	// per-window functional-warming prescription: the AW-MRRL checkpoint
	// of Figures 7 and 8. FuncWarmLens must then be set.
	NoMicroarch bool
	// FuncWarmLens gives the per-window functional-warming lengths for
	// NoMicroarch checkpoints (from the MRRL analysis).
	FuncWarmLens []uint64
}

func (o *CreateOpts) textPad() int {
	if o.TextPad <= 0 {
		return 32
	}
	return o.TextPad
}

func (o *CreateOpts) runAhead() uint64 {
	if o.RunAhead <= 0 {
		return 512
	}
	return uint64(o.RunAhead)
}

// Create runs the creation pass over a benchmark: one full-warming
// functional simulation of the whole program (the one-time O(benchmark)
// cost the library amortizes, §4.3) that captures a live-point at every
// window of the sample design. Each captured point is handed to emit in
// program order; writers typically shuffle afterwards (§6.1).
func Create(p *prog.Program, design sampling.Design, opts CreateOpts, emit func(*LivePoint) error) error {
	if opts.NoMicroarch && len(opts.FuncWarmLens) < design.Units() {
		return fmt.Errorf("livepoint: NoMicroarch creation needs %d warming lengths, have %d",
			design.Units(), len(opts.FuncWarmLens))
	}
	if err := opts.MaxHier.Validate(); err != nil && !opts.NoMicroarch {
		return fmt.Errorf("livepoint: max hierarchy: %w", err)
	}

	m := p.NewMemory()
	cpu := functional.New(p, m)

	var hier *cache.Hier
	var preds []*bpred.Predictor
	if !opts.NoMicroarch {
		hier = cache.NewHier(opts.MaxHier)
		for _, pc := range opts.Preds {
			preds = append(preds, bpred.New(pc))
		}
	}
	cpu.Warm = &createWarmer{hier: hier, preds: preds}

	for j := 0; j < design.Units(); j++ {
		start := design.WindowStart(j)
		captureAt := start
		funcWarm := uint64(0)
		if opts.NoMicroarch {
			// The AW checkpoint sits at the start of the functional
			// warming period and must cover warming plus the window.
			funcWarm = opts.FuncWarmLens[j]
			if funcWarm > start {
				funcWarm = start
			}
			captureAt = start - funcWarm
		}
		if cpu.InstRet > captureAt {
			return fmt.Errorf("livepoint: window %d overlaps previous window", j)
		}
		ff := captureAt - cpu.InstRet
		if n, err := cpu.Run(ff); err != nil || n != ff {
			return fmt.Errorf("livepoint: warming pass ended early before window %d: %v", j, err)
		}

		lp, err := capture(p, m, cpu.State, hier, preds, opts, j, design, funcWarm)
		if err != nil {
			return fmt.Errorf("livepoint: window %d: %w", j, err)
		}
		if err := emit(lp); err != nil {
			return err
		}
	}
	return nil
}

// createWarmer warms the maximum hierarchy and every predictor
// configuration in a single pass.
type createWarmer struct {
	hier  *cache.Hier
	preds []*bpred.Predictor
}

func (w *createWarmer) WarmFetch(addr uint64) {
	if w.hier != nil {
		w.hier.WarmFetch(addr)
	}
}

func (w *createWarmer) WarmMem(addr uint64, write bool) {
	if w.hier != nil {
		w.hier.WarmData(addr, write)
	}
}

func (w *createWarmer) WarmBranch(addr uint64, in isa.Inst, taken bool, target uint64) {
	for _, p := range w.preds {
		p.UpdateWithSpec(addr, in, taken, target)
	}
}

// capture scouts the window ahead with a forked functional context and
// assembles the live-point.
func capture(p *prog.Program, master *mem.Memory, arch functional.State,
	hier *cache.Hier, preds []*bpred.Predictor, opts CreateOpts,
	index int, design sampling.Design, funcWarm uint64) (*LivePoint, error) {

	winLen := funcWarm + design.WindowLen()
	lp := &LivePoint{
		Benchmark:  p.Name,
		Index:      index,
		Position:   design.Positions[index],
		WarmLen:    design.WarmLen,
		UnitLen:    design.UnitLen,
		FuncWarm:   funcWarm,
		Restricted: opts.Restricted,
		Arch:       ArchState{PC: arch.PC, Regs: arch.Regs},
	}

	// Scout: fork the architectural state over an observing overlay and
	// execute the window, recording first-reads (the live-state), the
	// executed path, the touched data blocks, and the branch outcomes.
	overlay := mem.NewOverlay(master)
	overlay.Observe(func(addr, val uint64, ok bool) {
		if ok {
			lp.Mem.Set(addr, val)
		}
	})
	scout := functional.New(p, overlay)
	scout.State = arch

	touchedData := make(map[uint64]bool)
	touchedText := make(map[uint64]bool)
	var branches []bpred.BranchOutcome

	pcs := make(map[uint64]bool, 1024)
	scoutLen := winLen + opts.runAhead()
	for i := uint64(0); i < scoutLen; i++ {
		if scout.Halted {
			if i < winLen {
				return nil, fmt.Errorf("scout halted inside window at %d of %d", i, winLen)
			}
			break // benchmark end reached inside the run-ahead margin
		}
		pc := scout.PC
		in, ok := p.Fetch(pc)
		if !ok {
			return nil, fmt.Errorf("scout fetch failed at pc %d", pc)
		}
		pcs[pc] = true
		touchedText[isa.PCToAddr(pc)] = true
		if in.Op.IsMem() {
			// Effective address from the pre-execution register values.
			addr := mem.WordAlign(scout.Reg(in.Rs1) + uint64(in.Imm))
			touchedData[addr] = true
		}
		if err := scout.Step(); err != nil {
			return nil, fmt.Errorf("scout failed at %d of %d: %v", i, scoutLen, err)
		}
		if in.Op.IsBranch() {
			branches = append(branches, bpred.BranchOutcome{
				PC:    isa.PCToAddr(pc),
				In:    in,
				Taken: scout.PC != pc+1,
			})
		}
	}

	lp.Text = buildTextRanges(p, pcs, opts.textPad())

	if hier != nil {
		captureCaches(lp, hier, preds, opts, touchedData, touchedText, branches)
	}
	return lp, nil
}

// captureCaches snapshots the warmed long-history structures, applying the
// restricted-live-state filter when requested.
func captureCaches(lp *LivePoint, hier *cache.Hier, preds []*bpred.Predictor,
	opts CreateOpts, touchedData, touchedText map[uint64]bool, branches []bpred.BranchOutcome) {

	capOne := func(c *cache.Cache, touched map[uint64]bool) *csr.SetRecord {
		sr := csr.Capture(c)
		if !opts.Restricted {
			return sr
		}
		keep := make(map[uint64]bool, len(touched))
		for addr := range touched {
			keep[c.BlockOf(addr)] = true
		}
		return sr.Restrict(keep)
	}
	// The unified L2 sees both instruction and data blocks.
	both := touchedData
	if opts.Restricted {
		both = make(map[uint64]bool, len(touchedData)+len(touchedText))
		for a := range touchedData {
			both[a] = true
		}
		for a := range touchedText {
			both[a] = true
		}
	}
	lp.Caches = []*csr.SetRecord{
		capOne(hier.L1I, touchedText),
		capOne(hier.L1D, touchedData),
		capOne(hier.L2, both),
	}
	lp.TLBs = []*csr.SetRecord{
		capOne(hier.ITLB, touchedText),
		capOne(hier.DTLB, touchedData),
	}
	for _, pr := range preds {
		src := pr
		if opts.Restricted {
			src = pr.Restrict(branches)
		}
		lp.Preds = append(lp.Preds, PredSnapshot{Cfg: src.Config(), Data: src.Snapshot()})
	}
}

// buildTextRanges pads the executed pc set and merges it into contiguous
// ranges of stored instructions.
func buildTextRanges(p *prog.Program, pcs map[uint64]bool, pad int) []TextRange {
	if len(pcs) == 0 {
		return nil
	}
	sorted := make([]uint64, 0, len(pcs))
	for pc := range pcs {
		sorted = append(sorted, pc)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	textLen := uint64(p.TextLen())
	var ranges []TextRange
	var curStart, curEnd uint64 // [curStart, curEnd)
	flush := func() {
		if curEnd > curStart {
			insts := make([]isa.Inst, 0, curEnd-curStart)
			for pc := curStart; pc < curEnd; pc++ {
				in, _ := p.Fetch(pc)
				insts = append(insts, in)
			}
			ranges = append(ranges, TextRange{StartPC: curStart, Insts: insts})
		}
	}
	for i, pc := range sorted {
		lo := uint64(0)
		if pc > uint64(pad) {
			lo = pc - uint64(pad)
		}
		hi := pc + uint64(pad) + 1
		if hi > textLen {
			hi = textLen
		}
		if i == 0 || lo > curEnd {
			flush()
			curStart, curEnd = lo, hi
		} else if hi > curEnd {
			curEnd = hi
		}
	}
	flush()
	return ranges
}
