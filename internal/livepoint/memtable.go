package livepoint

import (
	"sort"

	"livepoints/internal/mem"
)

// MemEntry is one live-state word: a word-aligned byte address and the
// value the window's first read observed there.
type MemEntry struct {
	Addr uint64
	Val  uint64
}

// MemTable holds a live-point's live-state words as an address-sorted
// slice looked up by binary search. It replaces the map[uint64]uint64 the
// hot load path used to rebuild per point: a decoded table reuses its
// backing array across DecodeInto calls, so steady-state decode performs
// no allocation, and lookups stay cache-friendly.
//
// MemTable implements mem.Reader, so it plugs directly under a
// copy-on-write overlay during simulation. It is not safe for concurrent
// mutation; concurrent reads of a decoded (sorted) table are fine.
type MemTable struct {
	entries  []MemEntry
	unsorted bool
}

// Len returns the number of live-state words.
func (t *MemTable) Len() int { return len(t.entries) }

// Reset empties the table, keeping its backing array.
func (t *MemTable) Reset() {
	t.entries = t.entries[:0]
	t.unsorted = false
}

// Set records a word. Setting an address twice keeps the later value.
// Appends in ascending address order (and re-Sets of the current maximum)
// keep the table sorted; anything else defers a sort to the next lookup or
// encode.
func (t *MemTable) Set(addr, val uint64) {
	if n := len(t.entries); n > 0 && t.entries[n-1].Addr == addr {
		t.entries[n-1].Val = val
		return
	}
	if n := len(t.entries); n > 0 && !t.unsorted && addr < t.entries[n-1].Addr {
		t.unsorted = true
	}
	t.entries = append(t.entries, MemEntry{Addr: addr, Val: val})
}

// ensureSorted sorts by address and collapses duplicates keeping the
// last-Set value.
func (t *MemTable) ensureSorted() {
	if !t.unsorted {
		return
	}
	sort.SliceStable(t.entries, func(i, j int) bool { return t.entries[i].Addr < t.entries[j].Addr })
	out := t.entries[:0]
	for _, e := range t.entries {
		if n := len(out); n > 0 && out[n-1].Addr == e.Addr {
			out[n-1].Val = e.Val // later Set wins (stable sort preserved order)
			continue
		}
		out = append(out, e)
	}
	t.entries = out
	t.unsorted = false
}

// Get returns the stored value for a word-aligned byte address.
func (t *MemTable) Get(addr uint64) (uint64, bool) {
	t.ensureSorted()
	lo, hi := 0, len(t.entries)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t.entries[mid].Addr < addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(t.entries) && t.entries[lo].Addr == addr {
		return t.entries[lo].Val, true
	}
	return 0, false
}

// ReadWord implements mem.Reader over the captured words: ok=false for
// uncaptured addresses (the paper's "unavailable memory value" case).
func (t *MemTable) ReadWord(addr uint64) (uint64, bool) {
	return t.Get(mem.WordAlign(addr))
}

// Entries returns the address-sorted entries. The slice aliases the
// table; callers must not retain it across a DecodeInto of the owning
// live-point.
func (t *MemTable) Entries() []MemEntry {
	t.ensureSorted()
	return t.entries
}

// Map returns the live-state as a freshly allocated address→value map —
// the compatibility accessor for callers that predate the sorted table.
// Hot paths should use Get/Entries instead.
func (t *MemTable) Map() map[uint64]uint64 {
	m := make(map[uint64]uint64, len(t.entries))
	for _, e := range t.entries {
		m[e.Addr] = e.Val
	}
	return m
}

// setMem replaces the table's contents with the packed (addr, value)
// pairs of a live-point memory section, reusing the backing array. The
// encoder emits pairs address-sorted; a sort is deferred until first
// lookup in the (format-violating but tolerated) unsorted case.
func (t *MemTable) setPacked(b []byte) {
	n := len(b) / 16
	if cap(t.entries) < n {
		t.entries = make([]MemEntry, n)
	} else {
		t.entries = t.entries[:n]
	}
	t.unsorted = false
	for i := 0; i < n; i++ {
		t.entries[i] = MemEntry{
			Addr: le64(b[i*16:]),
			Val:  le64(b[i*16+8:]),
		}
		if i > 0 && t.entries[i].Addr < t.entries[i-1].Addr {
			t.unsorted = true
		}
	}
}

func le64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// interface check
var _ mem.Reader = (*MemTable)(nil)
