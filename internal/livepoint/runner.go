package livepoint

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"livepoints/internal/sampling"
	"livepoints/internal/uarch"
	"livepoints/internal/warm"
)

// RunOpts configures a sampling experiment over a live-point library.
type RunOpts struct {
	Cfg uarch.Config

	// Z and RelErr define the stopping rule: the run terminates as soon
	// as the estimate reaches ±RelErr at confidence z (never before
	// sampling.MinSampleSize points). RelErr <= 0 processes the whole
	// library.
	Z      float64
	RelErr float64

	// MaxPoints, when positive, bounds the number of points processed.
	MaxPoints int

	// Parallel is the number of simulation workers; values < 2 run
	// serially (deterministic processing order).
	Parallel int

	// RecordHistory retains per-point snapshots for convergence plots.
	RecordHistory bool
}

// RunResult is the outcome of a live-point sampling experiment.
type RunResult struct {
	Est       sampling.Estimate
	History   []sampling.Snapshot
	Processed int

	LoadTime time.Duration // decompression + decode + reconstruction I/O
	SimTime  time.Duration // detailed simulation

	// Aggregated wrong-path approximation counters (§5).
	UnknownFetches uint64
	UnknownLoads   uint64
	CaptureErrors  uint64 // correct-path unknown events: must be zero
}

// Satisfied reports whether the stopping rule was met (as opposed to
// exhausting the library).
func (r *RunResult) Satisfied(z, relErr float64) bool {
	return relErr > 0 && r.Est.Satisfied(z, relErr)
}

func (r *RunResult) fold(wr warm.WindowResult, online *sampling.OnlineEstimator) bool {
	r.Processed++
	r.UnknownFetches += wr.Stats.UnknownFetches
	r.UnknownLoads += wr.Stats.UnknownLoads
	r.CaptureErrors += wr.Stats.CorrectPathUnknownLoads + wr.Stats.CorrectPathUnknownFetches
	return online.Add(wr.UnitCPI)
}

// RunFile runs a sampling experiment over a library file, auto-detecting
// the format (sequential v1 stream or sharded v2 store). Points are
// processed in read order; on a shuffled library this realizes the paper's
// random-order online estimation (§6.1), so the run may stop at any point
// with a statistically valid estimate.
func RunFile(path string, opts RunOpts) (*RunResult, error) {
	src, err := OpenSource(path)
	if err != nil {
		return nil, err
	}
	defer src.Close()
	return RunSource(src, opts)
}

// RunSource runs a sampling experiment over any live-point source: a local
// file, a sharded store, or a remote serving client. Whole-library
// parallel runs pull from independent shards when the source exposes
// them; truncated runs (a stopping rule or point cap) stay on the
// read-order feeder, because draining whole shards processes physically
// consecutive points together — on an index-reshuffled store those are
// correlated, and stopping early on such a prefix would bias the
// estimate.
func RunSource(src Source, opts RunOpts) (*RunResult, error) {
	if opts.Z == 0 {
		opts.Z = sampling.Z997
	}
	if opts.RelErr > 0 && !src.Meta().Shuffled {
		return nil, fmt.Errorf("livepoint: early stopping requires a shuffled library (ShuffleFile for v1 files, lpstore.Shuffle for v2 stores)")
	}
	if opts.Parallel > 1 {
		wholeLibrary := opts.RelErr <= 0 && opts.MaxPoints <= 0
		if ss, ok := src.(ShardedSource); ok && ss.NumShards() > 1 && wholeLibrary {
			return runSharded(ss, opts)
		}
		return runParallel(src, opts)
	}
	return runSerial(src, opts)
}

func runSerial(src Source, opts RunOpts) (*RunResult, error) {
	res := &RunResult{}
	online := sampling.NewOnline(opts.Z, opts.RelErr, opts.RecordHistory)
	var lp LivePoint
	var arena SimArena
	for {
		if opts.MaxPoints > 0 && res.Processed >= opts.MaxPoints {
			break
		}
		t0 := time.Now()
		blob, err := src.NextBlob()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if err := DecodeInto(&lp, blob); err != nil {
			return nil, err
		}
		mDecodedBytes.Add(uint64(len(blob)))
		res.LoadTime += time.Since(t0)

		t0 = time.Now()
		wr, err := arena.Simulate(&lp, opts.Cfg)
		if err != nil {
			return nil, fmt.Errorf("livepoint: point %d: %w", lp.Index, err)
		}
		res.SimTime += time.Since(t0)

		if res.fold(wr, online) && opts.RelErr > 0 {
			break
		}
	}
	res.Est = *online.Estimate()
	res.History = online.History()
	return res, nil
}

// simOut carries one worker's simulation result to the folding loop.
type simOut struct {
	wr  warm.WindowResult
	err error
}

// collectOuts folds worker results into the estimate in completion order
// until outs closes. stop is invoked exactly once: when the stopping rule
// first fires (relErr > 0), on the first worker error (fail-fast — the
// feeder must not decode and simulate the rest of the library just to
// report an error that has already happened), or after the channel
// drains. It returns the first worker error.
func collectOuts(outs <-chan simOut, res *RunResult, online *sampling.OnlineEstimator, relErr float64, stop func()) error {
	var firstErr error
	stopped := false
	for out := range outs {
		if out.err != nil {
			if firstErr == nil {
				firstErr = out.err
				if !stopped {
					stopped = true
					stop()
				}
			}
			continue
		}
		if res.fold(out.wr, online) && relErr > 0 && !stopped {
			stopped = true
			stop()
		}
	}
	if !stopped {
		stop()
	}
	return firstErr
}

// decodeAhead returns the bound on decoded points buffered ahead of the
// simulation workers: deep enough to ride out per-point sim-time variance,
// shallow enough to cap fail-fast overshoot and resident LivePoints.
func decodeAhead(parallel int) int { return 2 * parallel }

// simWorkers starts the simulation stage: parallel goroutines, each with
// its own SimArena, draining decoded points from lpc into outs. It
// returns a channel that closes when the stage has drained.
func simWorkers(lpc <-chan *LivePoint, outs chan<- simOut, parallel int, cfg uarch.Config, simNS *atomic.Int64) <-chan struct{} {
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var arena SimArena
			for lp := range lpc {
				t0 := time.Now()
				wr, err := arena.Simulate(lp, cfg)
				simNS.Add(int64(time.Since(t0)))
				if err != nil {
					err = fmt.Errorf("livepoint: point %d: %w", lp.Index, err)
				}
				releaseLivePoint(lp)
				outs <- simOut{wr: wr, err: err}
			}
		}()
	}
	simDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(simDone)
	}()
	return simDone
}

// runParallel fans simulation out over worker goroutines — the paper's
// parallel live-point processing (§6) — as a three-stage pipeline:
//
//	feeder (stream reads) → decoders (DecodeInto pooled points) → sim workers
//
// The decode stage runs ahead of simulation through the bounded lpc
// channel, so stream I/O and decompression overlap detailed simulation
// instead of serializing with it. Blobs are copied into pooled buffers
// before crossing the first channel — Source.NextBlob's return is only
// valid until the next call. The estimate folds results in completion
// order, which is still an unbiased sample of a shuffled library; unlike
// serial runs the exact stopping point is scheduling-dependent.
func runParallel(src Source, opts RunOpts) (*RunResult, error) {
	res := &RunResult{}
	online := sampling.NewOnline(opts.Z, opts.RelErr, opts.RecordHistory)

	// Load/sim split, summed across all stages — the same accounting the
	// serial path reports (stream reads and decode are load, detailed
	// simulation is sim), never wall-clock.
	var loadNS, simNS atomic.Int64

	blobc := make(chan *[]byte, opts.Parallel)
	lpc := make(chan *LivePoint, decodeAhead(opts.Parallel))
	outs := make(chan simOut, opts.Parallel)

	// Decode stage: a single stream feeds it, so half the sim width keeps
	// the pipeline full while decode stays the cheap stage.
	var dwg sync.WaitGroup
	for w := 0; w < (opts.Parallel+1)/2; w++ {
		dwg.Add(1)
		go func() {
			defer dwg.Done()
			for pb := range blobc {
				t0 := time.Now()
				lp := acquireLivePoint()
				err := DecodeInto(lp, *pb)
				mDecodedBytes.Add(uint64(len(*pb)))
				releaseBlobBuf(pb)
				loadNS.Add(int64(time.Since(t0)))
				if err != nil {
					releaseLivePoint(lp)
					outs <- simOut{err: err}
					continue
				}
				lpc <- lp
				mDecodeAheadDepth.Set(float64(len(lpc)))
			}
		}()
	}
	simDone := simWorkers(lpc, outs, opts.Parallel, opts.Cfg, &simNS)

	done := make(chan struct{})
	var feedErr error
	go func() {
		defer close(blobc)
		sent := 0
		for {
			if opts.MaxPoints > 0 && sent >= opts.MaxPoints {
				return
			}
			t0 := time.Now()
			blob, err := src.NextBlob()
			if err == io.EOF {
				loadNS.Add(int64(time.Since(t0)))
				return
			}
			if err != nil {
				loadNS.Add(int64(time.Since(t0)))
				feedErr = err
				return
			}
			pb := acquireBlobBuf(len(blob))
			copy(*pb, blob)
			loadNS.Add(int64(time.Since(t0)))
			select {
			case blobc <- pb:
				sent++
			case <-done:
				releaseBlobBuf(pb)
				return
			}
		}
	}()
	go func() {
		dwg.Wait()
		close(lpc)
	}()
	go func() {
		<-simDone
		close(outs)
	}()

	firstErr := collectOuts(outs, res, online, opts.RelErr, func() { close(done) })
	res.LoadTime = time.Duration(loadNS.Load())
	res.SimTime = time.Duration(simNS.Load())
	if firstErr != nil {
		return nil, firstErr
	}
	if feedErr != nil {
		return nil, feedErr
	}
	res.Est = *online.Estimate()
	res.History = online.History()
	return res, nil
}

// runSharded is runParallel for whole-library passes over sharded
// sources: instead of one feeder goroutine decompressing a shared stream,
// decode workers claim whole shards and decompress them concurrently, so
// load bandwidth scales with Parallel. Decoded points flow through the
// same bounded decode-ahead channel into the simulation stage; no blob
// copy is needed here because each decode worker calls DecodeInto before
// its next NextBlob on the same shard stream. Every point is processed —
// RunSource routes truncated runs (stopping rule or point cap) through
// runParallel, because a shard-major prefix of physically consecutive
// points is not an unbiased sample.
func runSharded(ss ShardedSource, opts RunOpts) (*RunResult, error) {
	res := &RunResult{}
	online := sampling.NewOnline(opts.Z, opts.RelErr, opts.RecordHistory)

	var loadNS, simNS atomic.Int64

	shardc := make(chan int)
	lpc := make(chan *LivePoint, decodeAhead(opts.Parallel))
	outs := make(chan simOut, opts.Parallel)

	// Decode stage at full sim width: shards are independent streams, so
	// decompression bandwidth scales until the sim stage is the bottleneck.
	var dwg sync.WaitGroup
	for w := 0; w < opts.Parallel; w++ {
		dwg.Add(1)
		go func() {
			defer dwg.Done()
			for s := range shardc {
				t0 := time.Now()
				sub, err := ss.OpenShard(s)
				loadNS.Add(int64(time.Since(t0)))
				if err != nil {
					// Report the failure but keep ranging over shardc:
					// returning here would strand the feeder blocked on
					// its next send forever (goroutine leak). The feeder
					// stops on its own once collectOuts fires stop.
					outs <- simOut{err: err}
					continue
				}
				for {
					t0 := time.Now()
					blob, err := sub.NextBlob()
					if err == io.EOF {
						loadNS.Add(int64(time.Since(t0)))
						break
					}
					if err != nil {
						loadNS.Add(int64(time.Since(t0)))
						outs <- simOut{err: err}
						break
					}
					lp := acquireLivePoint()
					derr := DecodeInto(lp, blob)
					mDecodedBytes.Add(uint64(len(blob)))
					loadNS.Add(int64(time.Since(t0)))
					if derr != nil {
						releaseLivePoint(lp)
						outs <- simOut{err: derr}
						continue
					}
					lpc <- lp
					mDecodeAheadDepth.Set(float64(len(lpc)))
				}
				sub.Close()
			}
		}()
	}
	simDone := simWorkers(lpc, outs, opts.Parallel, opts.Cfg, &simNS)

	done := make(chan struct{})
	go func() {
		defer close(shardc)
		for s := 0; s < ss.NumShards(); s++ {
			select {
			case shardc <- s:
			case <-done:
				return
			}
		}
	}()
	go func() {
		dwg.Wait()
		close(lpc)
	}()
	go func() {
		<-simDone
		close(outs)
	}()

	firstErr := collectOuts(outs, res, online, 0, func() { close(done) })
	res.LoadTime = time.Duration(loadNS.Load())
	res.SimTime = time.Duration(simNS.Load())
	if firstErr != nil {
		return nil, firstErr
	}
	res.Est = *online.Estimate()
	res.History = online.History()
	return res, nil
}

// SimBlobs simulates each encoded live-point under cfg and returns the
// per-point CPIs in input order, plus a RunResult aggregating timings and
// wrong-path counters. This is the worker-side kernel of a cluster lease:
// a remote worker fetches a lease's blobs, runs SimBlobs, and posts the
// CPIs back to the coordinator for folding.
func SimBlobs(blobs [][]byte, cfg uarch.Config) ([]float64, *RunResult, error) {
	res := &RunResult{}
	online := sampling.NewOnline(sampling.Z997, 0, false)
	cpis := make([]float64, 0, len(blobs))
	var lp LivePoint
	var arena SimArena
	for _, blob := range blobs {
		t0 := time.Now()
		if err := DecodeInto(&lp, blob); err != nil {
			return nil, nil, err
		}
		mDecodedBytes.Add(uint64(len(blob)))
		res.LoadTime += time.Since(t0)

		t0 = time.Now()
		wr, err := arena.Simulate(&lp, cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("livepoint: point %d: %w", lp.Index, err)
		}
		res.SimTime += time.Since(t0)
		res.fold(wr, online)
		cpis = append(cpis, wr.UnitCPI)
	}
	res.Est = *online.Estimate()
	return cpis, res, nil
}

// SimBlobsMatched is SimBlobs for matched-pair runs: every point is
// simulated under both configurations and the paired CPIs are returned in
// input order, plus a RunResult aggregating decode/simulation timings and
// the baseline configuration's wrong-path counters — the same telemetry
// the absolute path reports, so cluster workers post identical timing
// fields in either mode.
func SimBlobsMatched(blobs [][]byte, base, exp uarch.Config) (baseCPIs, expCPIs []float64, res *RunResult, err error) {
	res = &RunResult{}
	online := sampling.NewOnline(sampling.Z997, 0, false)
	baseCPIs = make([]float64, 0, len(blobs))
	expCPIs = make([]float64, 0, len(blobs))
	var lp LivePoint
	// One arena per configuration, so neither thrashes its structures
	// reconfiguring between the two geometries every point.
	var baseArena, expArena SimArena
	for _, blob := range blobs {
		t0 := time.Now()
		if err := DecodeInto(&lp, blob); err != nil {
			return nil, nil, nil, err
		}
		mDecodedBytes.Add(uint64(len(blob)))
		res.LoadTime += time.Since(t0)

		t0 = time.Now()
		b, err := baseArena.Simulate(&lp, base)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("livepoint: base config, point %d: %w", lp.Index, err)
		}
		e, err := expArena.Simulate(&lp, exp)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("livepoint: experimental config, point %d: %w", lp.Index, err)
		}
		res.SimTime += time.Since(t0)
		res.fold(b, online)
		baseCPIs = append(baseCPIs, b.UnitCPI)
		expCPIs = append(expCPIs, e.UnitCPI)
	}
	res.Est = *online.Estimate()
	return baseCPIs, expCPIs, res, nil
}

// MatchedOpts configures a matched-pair comparative experiment (§6.2).
type MatchedOpts struct {
	Base uarch.Config
	Exp  uarch.Config

	Z      float64
	RelErr float64 // target half-width on the delta, relative to baseline

	// NoImpactThreshold, when positive, additionally stops once the delta
	// is confidently within ±threshold of zero (the rapid design-space
	// screen).
	NoImpactThreshold float64

	MaxPoints int
}

// MatchedResult is the outcome of a matched-pair experiment.
type MatchedResult struct {
	MP        sampling.MatchedPair
	Processed int
	LoadTime  time.Duration // stream reads + decode, as in RunResult
	SimTime   time.Duration // detailed simulation (both configurations)
	// StoppedNoImpact records that the no-impact screen fired.
	StoppedNoImpact bool
}

// RunMatchedFile measures the same live-points under two configurations and
// builds a confidence interval directly on the per-unit CPI delta. Both
// configurations must be reconstructible from the library's stored bounds.
// The format is auto-detected, as in RunFile.
func RunMatchedFile(path string, opts MatchedOpts) (*MatchedResult, error) {
	src, err := OpenSource(path)
	if err != nil {
		return nil, err
	}
	defer src.Close()
	return RunMatchedSource(src, opts)
}

// RunMatchedSource is RunMatchedFile over any live-point source.
func RunMatchedSource(src Source, opts MatchedOpts) (*MatchedResult, error) {
	if opts.RelErr > 0 && !src.Meta().Shuffled {
		return nil, fmt.Errorf("livepoint: early stopping requires a shuffled library (ShuffleFile for v1 files, lpstore.Shuffle for v2 stores)")
	}

	res := &MatchedResult{}
	var lp LivePoint
	var baseArena, expArena SimArena
	for {
		if opts.MaxPoints > 0 && res.Processed >= opts.MaxPoints {
			break
		}
		t0 := time.Now()
		blob, err := src.NextBlob()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if err := DecodeInto(&lp, blob); err != nil {
			return nil, err
		}
		mDecodedBytes.Add(uint64(len(blob)))
		res.LoadTime += time.Since(t0)

		t0 = time.Now()
		base, err := baseArena.Simulate(&lp, opts.Base)
		if err != nil {
			return nil, fmt.Errorf("livepoint: base config, point %d: %w", lp.Index, err)
		}
		exp, err := expArena.Simulate(&lp, opts.Exp)
		if err != nil {
			return nil, fmt.Errorf("livepoint: experimental config, point %d: %w", lp.Index, err)
		}
		res.SimTime += time.Since(t0)
		res.MP.Add(base.UnitCPI, exp.UnitCPI)
		res.Processed++

		// The no-impact screen is checked first: a delta confidently
		// within ±threshold is the §6.2 fast exit, even when the interval
		// is also narrow enough to satisfy the precision target.
		if opts.NoImpactThreshold > 0 && res.MP.NoImpact(opts.Z, opts.NoImpactThreshold) {
			res.StoppedNoImpact = true
			break
		}
		if opts.RelErr > 0 && res.MP.DeltaSatisfied(opts.Z, opts.RelErr) {
			break
		}
	}
	return res, nil
}
