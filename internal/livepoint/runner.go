package livepoint

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"livepoints/internal/sampling"
	"livepoints/internal/uarch"
	"livepoints/internal/warm"
)

// RunOpts configures a sampling experiment over a live-point library.
type RunOpts struct {
	Cfg uarch.Config

	// Z and RelErr define the stopping rule: the run terminates as soon
	// as the estimate reaches ±RelErr at confidence z (never before
	// sampling.MinSampleSize points). RelErr <= 0 processes the whole
	// library.
	Z      float64
	RelErr float64

	// MaxPoints, when positive, bounds the number of points processed.
	MaxPoints int

	// Parallel is the number of simulation workers; values < 2 run
	// serially (deterministic processing order).
	Parallel int

	// RecordHistory retains per-point snapshots for convergence plots.
	RecordHistory bool
}

// RunResult is the outcome of a live-point sampling experiment.
type RunResult struct {
	Est       sampling.Estimate
	History   []sampling.Snapshot
	Processed int

	LoadTime time.Duration // decompression + decode + reconstruction I/O
	SimTime  time.Duration // detailed simulation

	// Aggregated wrong-path approximation counters (§5).
	UnknownFetches uint64
	UnknownLoads   uint64
	CaptureErrors  uint64 // correct-path unknown events: must be zero
}

// Satisfied reports whether the stopping rule was met (as opposed to
// exhausting the library).
func (r *RunResult) Satisfied(z, relErr float64) bool {
	return relErr > 0 && r.Est.Satisfied(z, relErr)
}

func (r *RunResult) fold(wr warm.WindowResult, online *sampling.OnlineEstimator) bool {
	r.Processed++
	r.UnknownFetches += wr.Stats.UnknownFetches
	r.UnknownLoads += wr.Stats.UnknownLoads
	r.CaptureErrors += wr.Stats.CorrectPathUnknownLoads + wr.Stats.CorrectPathUnknownFetches
	return online.Add(wr.UnitCPI)
}

// RunFile runs a sampling experiment over a library file. Points are
// processed in file order; on a shuffled library this realizes the paper's
// random-order online estimation (§6.1), so the run may stop at any point
// with a statistically valid estimate.
func RunFile(path string, opts RunOpts) (*RunResult, error) {
	if opts.Z == 0 {
		opts.Z = sampling.Z997
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := NewReader(f)
	if err != nil {
		return nil, err
	}
	if opts.RelErr > 0 && !r.Meta.Shuffled {
		return nil, fmt.Errorf("livepoint: early stopping requires a shuffled library (run ShuffleFile first)")
	}
	if opts.Parallel > 1 {
		return runParallel(r, opts)
	}
	return runSerial(r, opts)
}

func runSerial(r *Reader, opts RunOpts) (*RunResult, error) {
	res := &RunResult{}
	online := sampling.NewOnline(opts.Z, opts.RelErr, opts.RecordHistory)
	for {
		if opts.MaxPoints > 0 && res.Processed >= opts.MaxPoints {
			break
		}
		t0 := time.Now()
		lp, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		res.LoadTime += time.Since(t0)

		t0 = time.Now()
		wr, err := Simulate(lp, opts.Cfg)
		if err != nil {
			return nil, fmt.Errorf("livepoint: point %d: %w", lp.Index, err)
		}
		res.SimTime += time.Since(t0)

		if res.fold(wr, online) && opts.RelErr > 0 {
			break
		}
	}
	res.Est = *online.Estimate()
	res.History = online.History()
	return res, nil
}

// runParallel fans simulation out over worker goroutines — the paper's
// parallel live-point processing (§6). The estimate folds results in
// completion order, which is still an unbiased sample of a shuffled
// library; unlike serial runs the exact stopping point is scheduling-
// dependent.
func runParallel(r *Reader, opts RunOpts) (*RunResult, error) {
	res := &RunResult{}
	online := sampling.NewOnline(opts.Z, opts.RelErr, opts.RecordHistory)

	type simOut struct {
		wr  warm.WindowResult
		err error
	}
	blobs := make(chan []byte, opts.Parallel)
	outs := make(chan simOut, opts.Parallel)
	var wg sync.WaitGroup
	for w := 0; w < opts.Parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for blob := range blobs {
				lp, err := Decode(blob)
				if err != nil {
					outs <- simOut{err: err}
					continue
				}
				wr, err := Simulate(lp, opts.Cfg)
				outs <- simOut{wr: wr, err: err}
			}
		}()
	}
	done := make(chan struct{})
	var feedErr error
	go func() {
		defer close(blobs)
		sent := 0
		for {
			if opts.MaxPoints > 0 && sent >= opts.MaxPoints {
				return
			}
			blob, err := r.NextBlob()
			if err == io.EOF {
				return
			}
			if err != nil {
				feedErr = err
				return
			}
			select {
			case blobs <- blob:
				sent++
			case <-done:
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(outs)
	}()

	t0 := time.Now()
	var firstErr error
	stopped := false
	for out := range outs {
		if out.err != nil {
			if firstErr == nil {
				firstErr = out.err
			}
			continue
		}
		if res.fold(out.wr, online) && opts.RelErr > 0 && !stopped {
			stopped = true
			close(done)
		}
	}
	if !stopped {
		close(done)
	}
	res.SimTime = time.Since(t0)
	if firstErr != nil {
		return nil, firstErr
	}
	if feedErr != nil {
		return nil, feedErr
	}
	res.Est = *online.Estimate()
	res.History = online.History()
	return res, nil
}

// MatchedOpts configures a matched-pair comparative experiment (§6.2).
type MatchedOpts struct {
	Base uarch.Config
	Exp  uarch.Config

	Z      float64
	RelErr float64 // target half-width on the delta, relative to baseline

	// NoImpactThreshold, when positive, additionally stops once the delta
	// is confidently within ±threshold of zero (the rapid design-space
	// screen).
	NoImpactThreshold float64

	MaxPoints int
}

// MatchedResult is the outcome of a matched-pair experiment.
type MatchedResult struct {
	MP        sampling.MatchedPair
	Processed int
	SimTime   time.Duration
	// StoppedNoImpact records that the no-impact screen fired.
	StoppedNoImpact bool
}

// RunMatchedFile measures the same live-points under two configurations and
// builds a confidence interval directly on the per-unit CPI delta. Both
// configurations must be reconstructible from the library's stored bounds.
func RunMatchedFile(path string, opts MatchedOpts) (*MatchedResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := NewReader(f)
	if err != nil {
		return nil, err
	}
	if opts.RelErr > 0 && !r.Meta.Shuffled {
		return nil, fmt.Errorf("livepoint: early stopping requires a shuffled library")
	}

	res := &MatchedResult{}
	t0 := time.Now()
	for {
		if opts.MaxPoints > 0 && res.Processed >= opts.MaxPoints {
			break
		}
		lp, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		base, err := Simulate(lp, opts.Base)
		if err != nil {
			return nil, fmt.Errorf("livepoint: base config, point %d: %w", lp.Index, err)
		}
		exp, err := Simulate(lp, opts.Exp)
		if err != nil {
			return nil, fmt.Errorf("livepoint: experimental config, point %d: %w", lp.Index, err)
		}
		res.MP.Add(base.UnitCPI, exp.UnitCPI)
		res.Processed++

		// The no-impact screen is checked first: a delta confidently
		// within ±threshold is the §6.2 fast exit, even when the interval
		// is also narrow enough to satisfy the precision target.
		if opts.NoImpactThreshold > 0 && res.MP.NoImpact(opts.Z, opts.NoImpactThreshold) {
			res.StoppedNoImpact = true
			break
		}
		if opts.RelErr > 0 && res.MP.DeltaSatisfied(opts.Z, opts.RelErr) {
			break
		}
	}
	res.SimTime = time.Since(t0)
	return res, nil
}
