package livepoint

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"math/rand"
	"os"

	"livepoints/internal/asn1der"
)

// libMagic identifies the library format.
const libMagic = "livepoint-library-v1"

// Meta is the library header.
type Meta struct {
	Benchmark string
	Count     int
	UnitLen   uint64
	WarmLen   uint64
	// Shuffled records whether the points are in random order (§6.1);
	// experiment runners refuse online confidence reporting on unshuffled
	// libraries.
	Shuffled bool
}

func encodeMeta(m Meta) []byte {
	b := asn1der.NewBuilder()
	b.Sequence(func(b *asn1der.Builder) {
		b.UTF8String(libMagic)
		b.UTF8String(m.Benchmark)
		b.Uint64(uint64(m.Count))
		b.Uint64(m.UnitLen)
		b.Uint64(m.WarmLen)
		b.Bool(m.Shuffled)
	})
	return b.Bytes()
}

func decodeMeta(buf []byte) (Meta, error) {
	var m Meta
	d, err := asn1der.NewDecoder(buf).Sequence()
	if err != nil {
		return m, err
	}
	magic, err := d.UTF8String()
	if err != nil {
		return m, err
	}
	if magic != libMagic {
		return m, fmt.Errorf("livepoint: not a library file (magic %q)", magic)
	}
	if m.Benchmark, err = d.UTF8String(); err != nil {
		return m, err
	}
	count, err := d.Uint64()
	if err != nil {
		return m, err
	}
	m.Count = int(count)
	if m.UnitLen, err = d.Uint64(); err != nil {
		return m, err
	}
	if m.WarmLen, err = d.Uint64(); err != nil {
		return m, err
	}
	if m.Shuffled, err = d.Bool(); err != nil {
		return m, err
	}
	return m, nil
}

// Writer streams live-points into a single gzip-compressed library file
// (the paper's recommended storage layout for I/O throughput, §6.1).
type Writer struct {
	gz      *gzip.Writer
	meta    Meta
	written int
	// UncompressedBytes accumulates pre-compression sizes (Figure 8's
	// size accounting).
	UncompressedBytes int64
}

// NewWriter writes the header and returns a streaming writer. meta.Count
// must match the number of Add calls.
func NewWriter(w io.Writer, meta Meta) (*Writer, error) {
	gz := gzip.NewWriter(w)
	hdr := encodeMeta(meta)
	if _, err := gz.Write(hdr); err != nil {
		return nil, fmt.Errorf("livepoint: write header: %w", err)
	}
	return &Writer{gz: gz, meta: meta, UncompressedBytes: int64(len(hdr))}, nil
}

// Add appends one already-encoded live-point.
func (w *Writer) Add(encoded []byte) error {
	if w.written >= w.meta.Count {
		return fmt.Errorf("livepoint: library declared %d points, adding more", w.meta.Count)
	}
	if _, err := w.gz.Write(encoded); err != nil {
		return err
	}
	w.written++
	w.UncompressedBytes += int64(len(encoded))
	return nil
}

// Close flushes the compressed stream. It fails if fewer points were added
// than declared.
func (w *Writer) Close() error {
	if w.written != w.meta.Count {
		return fmt.Errorf("livepoint: library declared %d points, wrote %d", w.meta.Count, w.written)
	}
	return w.gz.Close()
}

// Reader streams live-points out of a library file. Its decompressor and
// stream buffer come from process-wide pools; call Close when done to
// return them (and, on a fully drained stream, verify the gzip CRC
// trailer).
type Reader struct {
	gz   *gzip.Reader
	br   *bufio.Reader
	Meta Meta
	read int
	buf  []byte // NextBlob's reused element buffer
}

// NewReader reads the header and returns a streaming reader.
func NewReader(r io.Reader) (*Reader, error) {
	gz, err := AcquireGzipReader(r)
	if err != nil {
		return nil, fmt.Errorf("livepoint: open library: %w", err)
	}
	br := acquireBufReader(gz)
	hdr, err := ReadElement(br)
	if err != nil {
		releaseBufReader(br)
		ReleaseGzipReader(gz)
		return nil, fmt.Errorf("livepoint: read header: %w", err)
	}
	meta, err := decodeMeta(hdr)
	if err != nil {
		releaseBufReader(br)
		ReleaseGzipReader(gz)
		return nil, err
	}
	return &Reader{gz: gz, br: br, Meta: meta}, nil
}

// NextBlob returns the next encoded live-point, or io.EOF after the last.
// The returned slice is the reader's reused buffer: it is valid only until
// the next NextBlob call; callers that retain a blob must copy it.
func (r *Reader) NextBlob() ([]byte, error) {
	if r.read >= r.Meta.Count {
		return nil, io.EOF
	}
	blob, err := readElementInto(r.br, r.buf[:0])
	if err != nil {
		return nil, fmt.Errorf("livepoint: point %d: %w", r.read, err)
	}
	r.buf = blob
	r.read++
	return blob, nil
}

// Close returns the reader's pooled decompression state. When every
// declared point was read, it first drains the stream to EOF, which forces
// gzip's CRC-trailer verification — so trailer corruption surfaces here
// instead of being silently dropped. Close is idempotent.
func (r *Reader) Close() error {
	if r.gz == nil {
		return nil
	}
	var err error
	if r.read >= r.Meta.Count {
		if _, cerr := io.Copy(io.Discard, r.br); cerr != nil {
			err = fmt.Errorf("livepoint: verify stream trailer: %w", cerr)
		}
	}
	releaseBufReader(r.br)
	ReleaseGzipReader(r.gz)
	r.gz, r.br, r.buf = nil, nil, nil
	return err
}

// Next decodes the next live-point, or io.EOF after the last.
func (r *Reader) Next() (*LivePoint, error) {
	blob, err := r.NextBlob()
	if err != nil {
		return nil, err
	}
	return Decode(blob)
}

// ReadElement reads one complete DER TLV element (tag, length, content)
// from the stream, returning the full element bytes. Encoded live-points
// are self-delimiting DER elements, so concatenated blobs — a v1 library
// body, a v2 shard, or a serving batch response — split with repeated
// calls.
func ReadElement(br *bufio.Reader) ([]byte, error) {
	return readElementInto(br, nil)
}

// readElementInto is ReadElement reusing dst's capacity; steady-state
// streaming (Reader.NextBlob) stays allocation-free once dst has grown to
// the library's largest point.
func readElementInto(br *bufio.Reader, dst []byte) ([]byte, error) {
	var head [6]byte
	if _, err := io.ReadFull(br, head[:2]); err != nil {
		return nil, err
	}
	hn := 2
	l := int(head[1])
	if l >= 0x80 {
		nb := l & 0x7F
		if nb == 0 || nb > 4 {
			return nil, fmt.Errorf("livepoint: bad length-of-length %d", nb)
		}
		if _, err := io.ReadFull(br, head[2:2+nb]); err != nil {
			return nil, err
		}
		l = 0
		for _, b := range head[2 : 2+nb] {
			l = l<<8 | int(b)
		}
		hn += nb
	}
	total := hn + l
	if cap(dst) < total {
		dst = make([]byte, total)
	} else {
		dst = dst[:total]
	}
	copy(dst, head[:hn])
	if _, err := io.ReadFull(br, dst[hn:]); err != nil {
		return nil, err
	}
	return dst, nil
}

// WriteLibrary creates a library file at path from pre-encoded points.
func WriteLibrary(path string, meta Meta, blobs [][]byte) (uncompressed int64, err error) {
	meta.Count = len(blobs)
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	w, err := NewWriter(f, meta)
	if err != nil {
		return 0, err
	}
	for _, b := range blobs {
		if err := w.Add(b); err != nil {
			return 0, err
		}
	}
	if err := w.Close(); err != nil {
		return 0, err
	}
	return w.UncompressedBytes, f.Sync()
}

// ReadAllBlobs loads every encoded point from a library file.
func ReadAllBlobs(path string) (Meta, [][]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return Meta{}, nil, err
	}
	defer f.Close()
	r, err := NewReader(f)
	if err != nil {
		return Meta{}, nil, err
	}
	var blobs [][]byte
	for {
		b, err := r.NextBlob()
		if err == io.EOF {
			break
		}
		if err != nil {
			return r.Meta, nil, err
		}
		// NextBlob's buffer is reused; retained blobs must be copied.
		blobs = append(blobs, append([]byte(nil), b...))
	}
	if err := r.Close(); err != nil {
		return r.Meta, nil, err
	}
	return r.Meta, blobs, nil
}

// ShuffleFile rewrites a library in deterministic pseudo-random order
// (§6.1): once shuffled, any prefix of the file is an unbiased random
// sub-sample, enabling online confidence reporting.
func ShuffleFile(src, dst string, seed int64) error {
	meta, blobs, err := ReadAllBlobs(src)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(blobs), func(i, j int) { blobs[i], blobs[j] = blobs[j], blobs[i] })
	meta.Shuffled = true
	_, err = WriteLibrary(dst, meta, blobs)
	return err
}

// FileSize returns a file's on-disk (compressed) size.
func FileSize(path string) (int64, error) {
	st, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}
