package livepoint

import "livepoints/internal/obs"

// Load-path instrumentation (exposed on lpserve's GET /metrics, which
// renders obs.Default). The pool series make allocation regressions
// visible in production: a healthy steady-state stream shows hits
// dwarfing misses; a miss rate that tracks the point rate means pooling
// has silently stopped working.
var (
	mGzipPoolHits    = obs.Default.Counter("livepoint_pool_hits_total", "Pooled load-path object reuses by pool.", "pool", "gzip")
	mGzipPoolMisses  = obs.Default.Counter("livepoint_pool_misses_total", "Pooled load-path object allocations by pool.", "pool", "gzip")
	mBufioPoolHits   = obs.Default.Counter("livepoint_pool_hits_total", "Pooled load-path object reuses by pool.", "pool", "bufio")
	mBufioPoolMisses = obs.Default.Counter("livepoint_pool_misses_total", "Pooled load-path object allocations by pool.", "pool", "bufio")
	mPointPoolHits   = obs.Default.Counter("livepoint_pool_hits_total", "Pooled load-path object reuses by pool.", "pool", "livepoint")
	mPointPoolMisses = obs.Default.Counter("livepoint_pool_misses_total", "Pooled load-path object allocations by pool.", "pool", "livepoint")
	mBlobPoolHits    = obs.Default.Counter("livepoint_pool_hits_total", "Pooled load-path object reuses by pool.", "pool", "blob")
	mBlobPoolMisses  = obs.Default.Counter("livepoint_pool_misses_total", "Pooled load-path object allocations by pool.", "pool", "blob")

	mDecodedBytes = obs.Default.Counter("livepoint_decoded_bytes_total", "Encoded live-point bytes decoded into LivePoints.")

	mDecodeAheadDepth = obs.Default.Gauge("livepoint_decode_ahead_depth", "Decoded live-points currently buffered ahead of the simulation workers.")
)
