package livepoint

import (
	"bufio"
	"compress/gzip"
	"io"
	"sync"
)

// Pools for the load path's fixed-cost objects. The paper's load-time
// claim (§5, Table 2) only holds if loading a point costs decompression
// and decode work, not allocator and GC work; everything here exists to
// keep the steady-state per-point heap traffic at zero.

var gzipReaders sync.Pool

// AcquireGzipReader returns a decompressor reset over r, reusing a pooled
// gzip.Reader when one is available. Pair with ReleaseGzipReader.
func AcquireGzipReader(r io.Reader) (*gzip.Reader, error) {
	var gz *gzip.Reader
	if v := gzipReaders.Get(); v != nil {
		mGzipPoolHits.Inc()
		gz = v.(*gzip.Reader)
	} else {
		mGzipPoolMisses.Inc()
		gz = new(gzip.Reader)
	}
	if err := gz.Reset(r); err != nil {
		gzipReaders.Put(gz)
		return nil, err
	}
	return gz, nil
}

// ReleaseGzipReader returns gz to the pool. The caller must not touch gz
// afterwards. Releasing mid-stream is fine: Reset discards any state.
func ReleaseGzipReader(gz *gzip.Reader) {
	if gz != nil {
		gzipReaders.Put(gz)
	}
}

const streamBufSize = 1 << 20

var bufReaders sync.Pool

func acquireBufReader(r io.Reader) *bufio.Reader {
	if v := bufReaders.Get(); v != nil {
		mBufioPoolHits.Inc()
		br := v.(*bufio.Reader)
		br.Reset(r)
		return br
	}
	mBufioPoolMisses.Inc()
	return bufio.NewReaderSize(r, streamBufSize)
}

func releaseBufReader(br *bufio.Reader) {
	if br != nil {
		br.Reset(nil) // drop the underlying reader so the pool pins no stream
		bufReaders.Put(br)
	}
}

var livePoints sync.Pool

// acquireLivePoint returns a LivePoint whose backing storage carries over
// from earlier decodes, so DecodeInto into it is allocation-free once the
// pool is warm.
func acquireLivePoint() *LivePoint {
	if v := livePoints.Get(); v != nil {
		mPointPoolHits.Inc()
		return v.(*LivePoint)
	}
	mPointPoolMisses.Inc()
	return &LivePoint{}
}

func releaseLivePoint(lp *LivePoint) {
	if lp != nil {
		livePoints.Put(lp)
	}
}

// blobBufs holds *[]byte (a pointer, so Put/Get never box a slice header
// on the heap). Undersized buffers are regrown in place, converging the
// pool on the library's largest blob.
var blobBufs sync.Pool

// acquireBlobBuf returns a buffer of length n, reusing pooled capacity.
func acquireBlobBuf(n int) *[]byte {
	if v := blobBufs.Get(); v != nil {
		pb := v.(*[]byte)
		if cap(*pb) >= n {
			mBlobPoolHits.Inc()
			*pb = (*pb)[:n]
			return pb
		}
		mBlobPoolMisses.Inc()
		*pb = make([]byte, n)
		return pb
	}
	mBlobPoolMisses.Inc()
	b := make([]byte, n)
	return &b
}

func releaseBlobBuf(pb *[]byte) {
	if pb != nil {
		blobBufs.Put(pb)
	}
}
