package livepoint

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"

	"livepoints/internal/uarch"
)

// TestDecodeIntoSteadyStateZeroAllocs is the allocation-regression gate on
// the tentpole claim: once a reused LivePoint has seen the library's
// largest point, decoding rotates through existing backing storage and the
// steady state performs zero heap allocations per point.
func TestDecodeIntoSteadyStateZeroAllocs(t *testing.T) {
	cfg := uarch.Config8Way()
	_, _, points := buildTestLibrary(t, "syn.gzip", 0.01, cfg, 40, false)
	blobs := make([][]byte, len(points))
	for i, p := range points {
		blobs[i], _ = Encode(p)
	}
	var lp LivePoint
	// Warm-up pass: grow every slice to the library maximum.
	for _, blob := range blobs {
		if err := DecodeInto(&lp, blob); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(3*len(blobs), func() {
		if err := DecodeInto(&lp, blobs[i%len(blobs)]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state DecodeInto allocates %.1f objects per point, want 0", allocs)
	}
}

// TestDecodeIntoReuseRoundTrip interleaves decodes of structurally
// different points (different benchmarks, sizes, and restriction) through
// one reused LivePoint and re-encodes after each: any state leaking across
// decodes would corrupt the re-encoding.
func TestDecodeIntoReuseRoundTrip(t *testing.T) {
	cfg := uarch.Config8Way()
	_, _, big := buildTestLibrary(t, "syn.gcc", 0.01, cfg, 30, false)
	_, _, small := buildTestLibrary(t, "syn.gzip", 0.005, cfg, 40, true)
	seq := []*LivePoint{big[0], small[0], big[1], small[1], big[0]}
	var lp LivePoint
	for i, p := range seq {
		blob, _ := Encode(p)
		if err := DecodeInto(&lp, blob); err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		re, _ := Encode(&lp)
		if !bytes.Equal(re, blob) {
			t.Fatalf("decode %d into reused point did not re-encode identically (%d vs %d bytes)", i, len(re), len(blob))
		}
	}
}

// TestArenaSimulateBitEqual pins the arena contract: reusing hierarchy,
// predictor, text, overlay, and CPU across points must be bit-identical to
// building them fresh, including the restricted-live-state garbage fill.
func TestArenaSimulateBitEqual(t *testing.T) {
	cfg := uarch.Config8Way()
	_, _, full := buildTestLibrary(t, "syn.gcc", 0.01, cfg, 30, false)
	_, _, restricted := buildTestLibrary(t, "syn.gzip", 0.01, cfg, 40, true)
	var arena SimArena
	points := append(append([]*LivePoint{}, full...), restricted...)
	for i, p := range points {
		want, err := Simulate(p, cfg)
		if err != nil {
			t.Fatalf("point %d: %v", i, err)
		}
		got, err := arena.Simulate(p, cfg)
		if err != nil {
			t.Fatalf("point %d (arena): %v", i, err)
		}
		if got != want {
			t.Fatalf("point %d: arena CPI %.17g stats %+v != fresh CPI %.17g stats %+v",
				i, got.UnitCPI, got.Stats, want.UnitCPI, want.Stats)
		}
	}
}

// TestArenaSimulateReusesState checks the arena actually removes the
// per-point fixed allocations rather than silently regressing to the
// allocating path.
func TestArenaSimulateReusesState(t *testing.T) {
	cfg := uarch.Config8Way()
	_, _, points := buildTestLibrary(t, "syn.gzip", 0.005, cfg, 40, false)
	p := points[0]
	fresh := testing.AllocsPerRun(3, func() {
		if _, err := Simulate(p, cfg); err != nil {
			t.Fatal(err)
		}
	})
	var arena SimArena
	if _, err := arena.Simulate(p, cfg); err != nil {
		t.Fatal(err)
	}
	reused := testing.AllocsPerRun(3, func() {
		if _, err := arena.Simulate(p, cfg); err != nil {
			t.Fatal(err)
		}
	})
	if reused > fresh/2 {
		t.Fatalf("arena Simulate allocates %.0f objects per point vs %.0f fresh; arena reuse is not working", reused, fresh)
	}
	t.Logf("allocations per point: fresh %.0f, arena %.0f", fresh, reused)
}

// TestSerialEstimateMatchesSimBlobs: the serial runner and the cluster
// worker kernel process points in the same deterministic order, so their
// estimates must agree bitwise — the cluster path is a distribution detail,
// never a numerics change.
func TestSerialEstimateMatchesSimBlobs(t *testing.T) {
	cfg := uarch.Config8Way()
	_, design, points := buildTestLibrary(t, "syn.gzip", 0.01, cfg, 20, false)
	blobs := make([][]byte, len(points))
	for i, p := range points {
		blobs[i], _ = Encode(p)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "lib.lplib")
	meta := Meta{Benchmark: "syn.gzip", UnitLen: design.UnitLen, WarmLen: design.WarmLen, Shuffled: true}
	if _, err := WriteLibrary(path, meta, blobs); err != nil {
		t.Fatal(err)
	}
	serial, err := RunFile(path, RunOpts{Cfg: cfg})
	if err != nil {
		t.Fatal(err)
	}
	_, bres, err := SimBlobs(blobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Est.Mean() != bres.Est.Mean() || serial.Processed != bres.Processed {
		t.Fatalf("serial mean %.17g (n=%d) != SimBlobs mean %.17g (n=%d)",
			serial.Est.Mean(), serial.Processed, bres.Est.Mean(), bres.Processed)
	}
}

// TestCloseSurfacesTrailerCorruption: gzip verifies its CRC only when the
// deflate stream is read to end-of-stream, which blob-by-blob reads never
// do on their own. Source.Close must drain and report the corruption
// instead of silently dropping it (the old fileSource.Close only closed
// the file descriptor).
func TestCloseSurfacesTrailerCorruption(t *testing.T) {
	cfg := uarch.Config8Way()
	_, design, points := buildTestLibrary(t, "syn.gzip", 0.005, cfg, 40, false)
	blobs := make([][]byte, len(points))
	for i, p := range points {
		blobs[i], _ = Encode(p)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "lib.lplib")
	meta := Meta{Benchmark: "syn.gzip", UnitLen: design.UnitLen, WarmLen: design.WarmLen}
	if _, err := WriteLibrary(path, meta, blobs); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff // corrupt the gzip trailer (ISIZE)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := OpenSource(path)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := src.NextBlob(); err != nil {
			if err != io.EOF {
				t.Fatalf("NextBlob: %v", err)
			}
			break
		}
	}
	if err := src.Close(); err == nil {
		t.Fatal("Close silently dropped a corrupted gzip trailer")
	}
}

// TestReadAllBlobsReturnsStableCopies: the streaming Reader reuses its
// blob buffer between NextBlob calls; ReadAllBlobs retains every blob, so
// it must hand back stable copies.
func TestReadAllBlobsReturnsStableCopies(t *testing.T) {
	cfg := uarch.Config8Way()
	_, design, points := buildTestLibrary(t, "syn.gzip", 0.005, cfg, 40, false)
	blobs := make([][]byte, len(points))
	for i, p := range points {
		blobs[i], _ = Encode(p)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "lib.lplib")
	meta := Meta{Benchmark: "syn.gzip", UnitLen: design.UnitLen, WarmLen: design.WarmLen}
	if _, err := WriteLibrary(path, meta, blobs); err != nil {
		t.Fatal(err)
	}
	_, got, err := ReadAllBlobs(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(blobs) {
		t.Fatalf("read %d blobs, want %d", len(got), len(blobs))
	}
	for i := range blobs {
		if !bytes.Equal(got[i], blobs[i]) {
			t.Fatalf("blob %d was clobbered by the reader's buffer reuse", i)
		}
	}
}
