// Package prog generates the deterministic synthetic benchmark suite that
// stands in for SPEC CPU2000 (see DESIGN.md §2 for the substitution
// rationale).
//
// Each benchmark is a self-contained Program: a text segment of pre-decoded
// instructions plus an initialized data segment. Programs are produced by a
// seeded generator, so a given (name, scale) pair always yields the
// bit-identical program — a property every warming experiment in the paper
// relies on ("functional warming repeats architectural state updates across
// different simulations of the same benchmark", §4).
//
// The suite spans the behavioural axes that drive simulation-sampling
// results: memory footprint and locality (cache and TLB miss rates), branch
// predictability, functional-unit mix, instruction-level parallelism, and
// phase behaviour (which drives per-unit CPI variance and therefore sample
// size).
package prog

import (
	"fmt"
	"math/rand"
	"sort"

	"livepoints/internal/isa"
	"livepoints/internal/mem"
)

// DataRange is a contiguous run of initialized 64-bit words in the data
// segment.
type DataRange struct {
	Base  uint64   // byte address of the first word
	Words []uint64 // initial values
}

// Program is a generated benchmark: immutable text plus initial data.
type Program struct {
	Name string
	Text []isa.Inst
	Data []DataRange

	// TargetLen is the approximate dynamic instruction count the generator
	// aimed for. The exact count is determined by execution and measured by
	// the sampling pre-pass.
	TargetLen uint64
}

// NewMemory returns a fresh memory initialized with the program's data
// segment. Each call returns an independent memory.
func (p *Program) NewMemory() *mem.Memory {
	m := mem.New()
	for _, r := range p.Data {
		for i, v := range r.Words {
			m.WriteWord(r.Base+uint64(i)*8, v)
		}
	}
	return m
}

// Fetch returns the instruction at the given instruction index. ok is false
// past the end of text.
func (p *Program) Fetch(pc uint64) (isa.Inst, bool) {
	if pc >= uint64(len(p.Text)) {
		return isa.Inst{}, false
	}
	return p.Text[pc], true
}

// TextLen returns the static instruction count.
func (p *Program) TextLen() int { return len(p.Text) }

// DataWords returns the number of initialized data words.
func (p *Program) DataWords() int {
	n := 0
	for _, r := range p.Data {
		n += len(r.Words)
	}
	return n
}

// FootprintBytes returns the initialized data footprint in bytes.
func (p *Program) FootprintBytes() int64 { return int64(p.DataWords()) * 8 }

// asm is a tiny single-pass assembler with back-patching, used by the
// kernel emitters.
type asm struct {
	text []isa.Inst
}

func (a *asm) pc() int64 { return int64(len(a.text)) }

func (a *asm) emit(in isa.Inst) int {
	a.text = append(a.text, in)
	return len(a.text) - 1
}

func (a *asm) op3(op isa.Op, rd, rs1, rs2 uint8) int {
	return a.emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}

func (a *asm) opi(op isa.Op, rd, rs1 uint8, imm int64) int {
	return a.emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
}

func (a *asm) lui(rd uint8, imm int64) int {
	return a.emit(isa.Inst{Op: isa.OpLui, Rd: rd, Imm: imm})
}

func (a *asm) load(rd, rbase uint8, disp int64) int {
	return a.emit(isa.Inst{Op: isa.OpLoad, Rd: rd, Rs1: rbase, Imm: disp})
}

func (a *asm) store(rval, rbase uint8, disp int64) int {
	return a.emit(isa.Inst{Op: isa.OpStore, Rs1: rbase, Rs2: rval, Imm: disp})
}

// branch emits a conditional branch with a placeholder target, returning the
// instruction index for later patching.
func (a *asm) branch(op isa.Op, rs1, rs2 uint8) int {
	return a.emit(isa.Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: -1})
}

func (a *asm) jmp() int  { return a.emit(isa.Inst{Op: isa.OpJmp, Imm: -1}) }
func (a *asm) halt() int { return a.emit(isa.Inst{Op: isa.OpHalt}) }

func (a *asm) call(link uint8) int {
	return a.emit(isa.Inst{Op: isa.OpCall, Rd: link, Imm: -1})
}

func (a *asm) ret(link uint8) int {
	return a.emit(isa.Inst{Op: isa.OpRet, Rs1: link})
}

// patch sets the branch/jump/call target of the instruction at idx.
func (a *asm) patch(idx int, target int64) {
	a.text[idx].Imm = target
}

// patchHere points the instruction at idx at the current pc.
func (a *asm) patchHere(idx int) { a.patch(idx, a.pc()) }

// gen carries generator state shared by the kernel emitters.
type gen struct {
	a       *asm
	rng     *rand.Rand
	data    []DataRange
	nextReg uint8  // next free scratch register
	dataTop uint64 // next free data segment byte address
}

func newGen(seed int64) *gen {
	return &gen{
		a:       &asm{},
		rng:     rand.New(rand.NewSource(seed)),
		nextReg: 2, // r0 = zero, r1 = outer loop counter
		dataTop: isa.DataBase,
	}
}

// allocRegs reserves n scratch registers for a kernel instance.
func (g *gen) allocRegs(n int) []uint8 {
	if int(g.nextReg)+n > isa.NumRegs-4 {
		panic(fmt.Sprintf("prog: out of registers (want %d, next %d)", n, g.nextReg))
	}
	regs := make([]uint8, n)
	for i := range regs {
		regs[i] = g.nextReg
		g.nextReg++
	}
	return regs
}

// allocData reserves a data region of the given byte size (rounded up to a
// page) initialized by fill, and returns its base address.
func (g *gen) allocData(size int64, fill func(i int) uint64) uint64 {
	base := g.dataTop
	words := int((size + 7) / 8)
	vals := make([]uint64, words)
	for i := range vals {
		vals[i] = fill(i)
	}
	g.data = append(g.data, DataRange{Base: base, Words: vals})
	// Round the next base up to a page boundary and leave a guard page so
	// kernels with small overruns never alias each other.
	g.dataTop = base + uint64((size+mem.PageBytes)/mem.PageBytes+1)*mem.PageBytes
	return base
}

// BenchSpec describes one synthetic benchmark in the suite.
type BenchSpec struct {
	Name string
	Seed int64
	// Kernels are the kernel constructors used in each phase, with
	// relative weights. Phases execute sequentially, splitting the total
	// dynamic length evenly.
	Phases []PhaseSpec
	// BaseLen is the unscaled approximate dynamic instruction count.
	BaseLen uint64
}

// PhaseSpec is one phase of a benchmark: a weighted set of kernels invoked
// round-robin by the phase loop.
type PhaseSpec struct {
	Kernels []KernelSpec
}

// KernelSpec names a kernel family with its parameters.
type KernelSpec struct {
	Kind KernelKind
	// Footprint is the data footprint in bytes for memory kernels.
	Footprint int64
	// Pred is branch predictability for branchy kernels, in [0,1]: the
	// probability a data-dependent branch goes the common direction.
	Pred float64
	// Work is the approximate dynamic instructions per kernel invocation.
	Work int64
}

// KernelKind enumerates the kernel families.
type KernelKind uint8

// Kernel families; see kernels.go for the code shapes.
const (
	KStream  KernelKind = iota // sequential FP streaming (swim/mgrid-like)
	KChase                     // dependent pointer chasing (mcf-like)
	KBranchy                   // data-dependent control flow (gcc-like)
	KCompute                   // integer ALU/ILP mix (gzip/crafty-like)
	KCalls                     // call/return heavy (perlbmk/eon-like)
	KFPMix                     // FP multiply/divide chains (art/ammp-like)
	KStride                    // large-stride TLB-pressure walker (equake-like)
	KScatter                   // random scatter/gather stores (vpr/twolf-like)
)

// kernelName is used for diagnostics.
var kernelName = map[KernelKind]string{
	KStream: "stream", KChase: "chase", KBranchy: "branchy", KCompute: "compute",
	KCalls: "calls", KFPMix: "fpmix", KStride: "stride", KScatter: "scatter",
}

// String returns the kernel family name.
func (k KernelKind) String() string {
	if s, ok := kernelName[k]; ok {
		return s
	}
	return fmt.Sprintf("kernel(%d)", uint8(k))
}

// Generate builds the program for the spec at the given scale. Scale
// multiplies the benchmark's dynamic length; 1.0 is the suite default.
// Generation is deterministic in (spec, scale).
func Generate(spec BenchSpec, scale float64) *Program {
	if scale <= 0 {
		scale = 1.0
	}
	g := newGen(spec.Seed)
	a := g.a

	targetLen := uint64(float64(spec.BaseLen) * scale)

	// Emit a jump over the kernel bodies to the main entry; patched later.
	entryJmp := a.jmp()

	// Emit each phase's kernels, recording entries.
	type phaseCode struct {
		entries  []int64
		perIter  int64 // approximate dynamic instructions per round of calls
		overhead int64
	}
	phases := make([]phaseCode, len(spec.Phases))
	for pi, ph := range spec.Phases {
		for _, ks := range ph.Kernels {
			emit := kernelEmitters[ks.Kind]
			entry := emit(g, ks.Work, ks)
			phases[pi].entries = append(phases[pi].entries, entry)
			phases[pi].perIter += ks.Work
		}
		// Per-iteration loop overhead: one call+ret pair per kernel plus
		// the counter update and loop branch.
		phases[pi].overhead = int64(len(ph.Kernels))*2 + 3
	}

	// Main entry.
	a.patchHere(entryJmp)
	const rIter = 1 // phase-loop counter register

	perPhase := targetLen / uint64(len(phases))
	for _, pc := range phases {
		iters := int64(perPhase) / (pc.perIter + pc.overhead)
		if iters < 1 {
			iters = 1
		}
		a.lui(rIter, iters)
		loopTop := a.pc()
		for _, entry := range pc.entries {
			c := a.call(isa.RegLink)
			a.patch(c, entry)
		}
		a.opi(isa.OpAddI, rIter, rIter, -1)
		b := a.branch(isa.OpBne, rIter, isa.RegZero)
		a.patch(b, loopTop)
	}
	a.halt()

	// Normalize data ranges by base address for reproducible encoding.
	sort.Slice(g.data, func(i, j int) bool { return g.data[i].Base < g.data[j].Base })

	return &Program{
		Name:      spec.Name,
		Text:      a.text,
		Data:      g.data,
		TargetLen: targetLen,
	}
}
