package prog

import (
	"math"

	"livepoints/internal/isa"
)

// Kernel emitters. Every emitter produces a callable subroutine:
//
//   - entry self-initializes its persistent registers on the first call
//     (all registers are architecturally zero at program start, so a
//     dedicated init-guard register distinguishes the first call);
//   - an inner loop sized so one call executes approximately `work`
//     dynamic instructions;
//   - kernels return through isa.RegLink.
//
// Persistent kernel state (walk positions, accumulators, LCG state) lives in
// registers allocated per kernel instance, so behaviour evolves across the
// whole benchmark run rather than repeating identically each call — this is
// what produces realistic long-range reuse distances and per-unit CPI
// variance.

var kernelEmitters map[KernelKind]func(g *gen, work int64, ks KernelSpec) int64

func init() {
	kernelEmitters = map[KernelKind]func(g *gen, work int64, ks KernelSpec) int64{
		KStream:  emitStream,
		KChase:   emitChase,
		KBranchy: emitBranchy,
		KCompute: emitCompute,
		KCalls:   emitCalls,
		KFPMix:   emitFPMix,
		KStride:  emitStride,
		KScatter: emitScatter,
	}
}

// lcgMul and lcgAdd are the constants of the in-register linear
// congruential generator used by data-dependent kernels.
const (
	lcgMul = 6364136223846793005
	lcgAdd = 1442695040888963407
)

// emitGuard emits the standard first-call initialization guard. It returns
// after running init code emitted by fn only on the first call.
func emitGuard(g *gen, rInit uint8, fn func()) {
	a := g.a
	b := a.branch(isa.OpBne, rInit, isa.RegZero)
	fn()
	a.lui(rInit, 1)
	a.patchHere(b)
}

// f64bits returns the IEEE-754 bit pattern for v, used to pre-fill FP data.
func f64bits(v float64) uint64 { return math.Float64bits(v) }

// pow2Floor returns the largest power of two <= v (minimum 8).
func pow2Floor(v int64) int64 {
	p := int64(8)
	for p*2 <= v {
		p *= 2
	}
	return p
}

// emitStream: sequential read-read-write streaming over a large array with
// FP accumulation — the swim/mgrid shape: near-perfect branches, high
// spatial locality, miss rate set by footprint vs cache size.
func emitStream(g *gen, work int64, ks KernelSpec) int64 {
	a := g.a
	r := g.allocRegs(8)
	rInit, rPtr, rEnd, rCnt, rA, rB, rC, rT := r[0], r[1], r[2], r[3], r[4], r[5], r[6], r[7]

	size := pow2Floor(ks.Footprint)
	base := g.allocData(size, func(i int) uint64 { return f64bits(float64(i%1000) * 0.5) })

	const bodyLen = 9
	iters := work / bodyLen
	if iters < 1 {
		iters = 1
	}

	entry := a.pc()
	emitGuard(g, rInit, func() {
		a.lui(rPtr, int64(base))
		a.lui(rEnd, int64(base)+size-64)
	})
	a.lui(rCnt, iters)
	loop := a.pc()
	a.load(rA, rPtr, 0)
	a.op3(isa.OpFAdd, rB, rB, rA)
	a.load(rC, rPtr, 8)
	a.op3(isa.OpFMul, rB, rB, rC)
	a.store(rB, rPtr, 16)
	a.opi(isa.OpAddI, rPtr, rPtr, 32)
	// Wrap: if rPtr >= rEnd reset to base. slt is taken rarely, so the
	// stream branch stays predictable.
	a.op3(isa.OpSlt, rT, rPtr, rEnd)
	wrapped := a.branch(isa.OpBne, rT, isa.RegZero)
	a.lui(rPtr, int64(base))
	a.patchHere(wrapped)
	a.opi(isa.OpAddI, rCnt, rCnt, -1)
	b := a.branch(isa.OpBne, rCnt, isa.RegZero)
	a.patch(b, loop)
	a.ret(isa.RegLink)
	return entry
}

// emitChase: dependent pointer chasing through a random cyclic permutation
// of absolute node addresses — the mcf shape: one outstanding miss at a
// time, very high CPI, high per-unit variance.
func emitChase(g *gen, work int64, ks KernelSpec) int64 {
	a := g.a
	r := g.allocRegs(5)
	rInit, rCur, rCnt, rSum, rT := r[0], r[1], r[2], r[3], r[4]

	nodes := pow2Floor(ks.Footprint) / 8
	// Build a single random cycle with Sattolo's algorithm so the chase
	// visits every node before repeating.
	perm := make([]int64, nodes)
	for i := range perm {
		perm[i] = int64(i)
	}
	for i := nodes - 1; i > 0; i-- {
		j := g.rng.Int63n(i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	base := g.allocData(nodes*8, func(i int) uint64 { return 0 })
	// next[perm[i]] = perm[(i+1) % nodes], stored as absolute addresses.
	for i := int64(0); i < nodes; i++ {
		from := perm[i]
		to := perm[(i+1)%nodes]
		g.data[len(g.data)-1].Words[from] = base + uint64(to)*8
	}

	const bodyLen = 5
	iters := work / bodyLen
	if iters < 1 {
		iters = 1
	}

	entry := a.pc()
	emitGuard(g, rInit, func() {
		a.lui(rCur, int64(base)+int64(perm[0])*8)
	})
	a.lui(rCnt, iters)
	loop := a.pc()
	a.load(rCur, rCur, 0)
	a.op3(isa.OpAdd, rSum, rSum, rCur)
	a.opi(isa.OpShrI, rT, rSum, 7)
	a.opi(isa.OpAddI, rCnt, rCnt, -1)
	b := a.branch(isa.OpBne, rCnt, isa.RegZero)
	a.patch(b, loop)
	a.ret(isa.RegLink)
	return entry
}

// emitBranchy: LCG-driven data-dependent branches with hammocks plus a small
// table lookup — the gcc/parser shape. ks.Pred sets the probability of the
// common direction; the body is replicated (unrolled) so the static
// footprint exercises the I-cache and many distinct branch-history slots.
func emitBranchy(g *gen, work int64, ks KernelSpec) int64 {
	a := g.a
	r := g.allocRegs(8)
	rInit, rX, rS, rCnt, rT, rT2, rBase, rV := r[0], r[1], r[2], r[3], r[4], r[5], r[6], r[7]

	tblSize := int64(64 * 1024) // 64 KB table: fits L2, stresses L1D
	if ks.Footprint > 0 {
		tblSize = pow2Floor(ks.Footprint)
	}
	base := g.allocData(tblSize, func(i int) uint64 { return uint64(i) * 2654435761 })
	mask := tblSize/8 - 1

	pred := ks.Pred
	if pred <= 0 || pred > 1 {
		pred = 0.85
	}
	thresh := int64(pred * 1024)

	const unroll = 12
	const bodyLen = 13
	iters := work / (unroll * bodyLen)
	if iters < 1 {
		iters = 1
	}

	entry := a.pc()
	emitGuard(g, rInit, func() {
		a.lui(rBase, int64(base))
		a.lui(rX, g.rng.Int63())
	})
	a.lui(rCnt, iters)
	loop := a.pc()
	for u := 0; u < unroll; u++ {
		a.lui(rT, lcgMul)
		a.op3(isa.OpMul, rX, rX, rT)
		a.opi(isa.OpAddI, rX, rX, lcgAdd&0x7fffffff)
		a.opi(isa.OpShrI, rT, rX, 48)
		a.opi(isa.OpAndI, rT, rT, 1023)
		a.opi(isa.OpSltI, rT2, rT, thresh)
		taken := a.branch(isa.OpBne, rT2, isa.RegZero)
		// Uncommon path.
		a.op3(isa.OpXor, rS, rS, rX)
		join := a.jmp()
		a.patchHere(taken)
		// Common path: table lookup.
		a.opi(isa.OpAndI, rT, rT, mask)
		a.opi(isa.OpShlI, rT, rT, 3)
		a.op3(isa.OpAdd, rT, rT, rBase)
		a.load(rV, rT, 0)
		a.op3(isa.OpAdd, rS, rS, rV)
		a.patchHere(join)
	}
	a.opi(isa.OpAddI, rCnt, rCnt, -1)
	b := a.branch(isa.OpBne, rCnt, isa.RegZero)
	a.patch(b, loop)
	a.ret(isa.RegLink)
	return entry
}

// emitCompute: four independent integer dependence chains with an
// occasional multiply — the gzip/crafty shape: high ILP, rare misses,
// CPI near the issue-width bound.
func emitCompute(g *gen, work int64, ks KernelSpec) int64 {
	a := g.a
	r := g.allocRegs(7)
	rInit, rA, rB, rC, rD, rCnt, rT := r[0], r[1], r[2], r[3], r[4], r[5], r[6]
	_ = rInit

	const unroll = 4
	const bodyLen = 10
	iters := work / (unroll * bodyLen)
	if iters < 1 {
		iters = 1
	}

	entry := a.pc()
	emitGuard(g, rInit, func() {
		a.lui(rA, 1)
		a.lui(rB, 3)
		a.lui(rC, 5)
		a.lui(rD, 7)
	})
	a.lui(rCnt, iters)
	loop := a.pc()
	for u := 0; u < unroll; u++ {
		a.opi(isa.OpAddI, rA, rA, 13)
		a.opi(isa.OpAddI, rB, rB, 17)
		a.op3(isa.OpXor, rC, rC, rA)
		a.op3(isa.OpAdd, rD, rD, rB)
		a.opi(isa.OpShlI, rT, rA, 2)
		a.op3(isa.OpOr, rC, rC, rT)
		a.op3(isa.OpSub, rD, rD, rA)
		a.op3(isa.OpMul, rB, rB, rC)
		a.opi(isa.OpShrI, rT, rD, 3)
		a.op3(isa.OpAnd, rA, rA, rT)
	}
	a.opi(isa.OpAddI, rCnt, rCnt, -1)
	b := a.branch(isa.OpBne, rCnt, isa.RegZero)
	a.patch(b, loop)
	a.ret(isa.RegLink)
	return entry
}

// emitCalls: a two-deep call tree with data-dependent callee selection —
// the perlbmk/eon shape: return-address-stack and BTB pressure, moderate
// branchiness, small working set.
func emitCalls(g *gen, work int64, ks KernelSpec) int64 {
	a := g.a
	r := g.allocRegs(8)
	rInit, rX, rS, rCnt, rT, rT2, rL2, rL3 := r[0], r[1], r[2], r[3], r[4], r[5], r[6], r[7]

	// Leaf functions (depth 3): small distinct ALU bodies.
	var leaves []int64
	for i := 0; i < 4; i++ {
		entry := a.pc()
		a.opi(isa.OpAddI, rS, rS, int64(i)+1)
		a.op3(isa.OpXor, rS, rS, rX)
		a.opi(isa.OpShrI, rT, rS, int64(i%5+1))
		a.op3(isa.OpAdd, rS, rS, rT)
		a.ret(rL3)
		leaves = append(leaves, entry)
	}

	// Mid functions (depth 2): LCG step then call one of two leaves.
	var mids []int64
	for i := 0; i < 2; i++ {
		entry := a.pc()
		a.lui(rT, lcgMul)
		a.op3(isa.OpMul, rX, rX, rT)
		a.opi(isa.OpAddI, rX, rX, lcgAdd&0x7fffffff)
		a.opi(isa.OpShrI, rT, rX, 41)
		a.opi(isa.OpAndI, rT, rT, 1)
		sel := a.branch(isa.OpBne, rT, isa.RegZero)
		c0 := a.call(rL3)
		a.patch(c0, leaves[i*2])
		j := a.jmp()
		a.patchHere(sel)
		c1 := a.call(rL3)
		a.patch(c1, leaves[i*2+1])
		a.patchHere(j)
		a.ret(rL2)
		mids = append(mids, entry)
	}

	// ~26 dynamic instructions per round of two mid calls.
	const roundLen = 26
	iters := work / roundLen
	if iters < 1 {
		iters = 1
	}

	entry := a.pc()
	emitGuard(g, rInit, func() {
		a.lui(rX, g.rng.Int63())
	})
	a.lui(rCnt, iters)
	loop := a.pc()
	c := a.call(rL2)
	a.patch(c, mids[0])
	c = a.call(rL2)
	a.patch(c, mids[1])
	a.opi(isa.OpAddI, rT2, rCnt, 0)
	a.opi(isa.OpAddI, rCnt, rCnt, -1)
	b := a.branch(isa.OpBne, rCnt, isa.RegZero)
	a.patch(b, loop)
	a.ret(isa.RegLink)
	return entry
}

// emitFPMix: serial FP dependence chains with divides — the art/ammp shape:
// long-latency units dominate, low ILP, moderate memory traffic.
func emitFPMix(g *gen, work int64, ks KernelSpec) int64 {
	a := g.a
	r := g.allocRegs(8)
	rInit, rBase, rOff, rCnt, rA, rB, rC, rT := r[0], r[1], r[2], r[3], r[4], r[5], r[6], r[7]

	size := pow2Floor(maxI64(ks.Footprint, 256*1024))
	base := g.allocData(size, func(i int) uint64 { return f64bits(1.0 + float64(i%97)/97.0) })
	mask := size - 1

	const bodyLen = 12
	iters := work / bodyLen
	if iters < 1 {
		iters = 1
	}

	entry := a.pc()
	emitGuard(g, rInit, func() {
		a.lui(rBase, int64(base))
		a.lui(rA, int64(f64bits(1.5)))
		a.lui(rB, int64(f64bits(2.5)))
	})
	a.lui(rCnt, iters)
	loop := a.pc()
	a.op3(isa.OpAdd, rT, rBase, rOff)
	a.load(rC, rT, 0)
	a.op3(isa.OpFMul, rA, rA, rC)
	a.op3(isa.OpFAdd, rB, rB, rA)
	a.op3(isa.OpFDiv, rA, rB, rC)
	a.op3(isa.OpFAdd, rA, rA, rB)
	a.store(rA, rT, 8)
	a.opi(isa.OpAddI, rOff, rOff, 48)
	a.opi(isa.OpAndI, rOff, rOff, mask&^7)
	a.opi(isa.OpAddI, rCnt, rCnt, -1)
	b := a.branch(isa.OpBne, rCnt, isa.RegZero)
	a.patch(b, loop)
	a.ret(isa.RegLink)
	return entry
}

// emitStride: page-stride walking over a large region — the equake shape:
// every access lands on a new page, so the D-TLB misses dominate once the
// footprint exceeds TLB reach.
func emitStride(g *gen, work int64, ks KernelSpec) int64 {
	a := g.a
	r := g.allocRegs(7)
	rInit, rOff, rCnt, rBase, rT, rV, rS := r[0], r[1], r[2], r[3], r[4], r[5], r[6]

	size := pow2Floor(ks.Footprint)
	base := g.allocData(size, func(i int) uint64 { return uint64(i) })
	mask := size - 1
	const stride = 4096 + 64 // cross a page per access, avoid set conflicts

	const bodyLen = 8
	iters := work / bodyLen
	if iters < 1 {
		iters = 1
	}

	entry := a.pc()
	emitGuard(g, rInit, func() {
		a.lui(rBase, int64(base))
	})
	a.lui(rCnt, iters)
	loop := a.pc()
	a.opi(isa.OpAddI, rOff, rOff, stride)
	a.opi(isa.OpAndI, rOff, rOff, mask&^7)
	a.op3(isa.OpAdd, rT, rBase, rOff)
	a.load(rV, rT, 0)
	a.op3(isa.OpAdd, rS, rS, rV)
	a.store(rS, rT, 8)
	a.opi(isa.OpAddI, rCnt, rCnt, -1)
	b := a.branch(isa.OpBne, rCnt, isa.RegZero)
	a.patch(b, loop)
	a.ret(isa.RegLink)
	return entry
}

// emitScatter: LCG-random scatter stores and gathers — the vpr/twolf shape:
// write misses, dirty evictions, low locality within a bounded region.
func emitScatter(g *gen, work int64, ks KernelSpec) int64 {
	a := g.a
	r := g.allocRegs(8)
	rInit, rX, rCnt, rBase, rT, rA, rV, rS := r[0], r[1], r[2], r[3], r[4], r[5], r[6], r[7]

	size := pow2Floor(ks.Footprint)
	base := g.allocData(size, func(i int) uint64 { return uint64(i) * 11400714819323198485 })
	maskWords := size/8 - 1

	const bodyLen = 12
	iters := work / bodyLen
	if iters < 1 {
		iters = 1
	}

	entry := a.pc()
	emitGuard(g, rInit, func() {
		a.lui(rBase, int64(base))
		a.lui(rX, g.rng.Int63())
	})
	a.lui(rCnt, iters)
	loop := a.pc()
	a.lui(rT, lcgMul)
	a.op3(isa.OpMul, rX, rX, rT)
	a.opi(isa.OpAddI, rX, rX, lcgAdd&0x7fffffff)
	a.opi(isa.OpShrI, rT, rX, 30)
	a.opi(isa.OpAndI, rT, rT, maskWords)
	a.opi(isa.OpShlI, rT, rT, 3)
	a.op3(isa.OpAdd, rA, rBase, rT)
	a.load(rV, rA, 0)
	a.op3(isa.OpAdd, rS, rS, rV)
	a.store(rS, rA, 0)
	a.opi(isa.OpAddI, rCnt, rCnt, -1)
	b := a.branch(isa.OpBne, rCnt, isa.RegZero)
	a.patch(b, loop)
	a.ret(isa.RegLink)
	return entry
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
