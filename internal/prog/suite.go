package prog

import "fmt"

// The synthetic suite. Each entry is tuned along the axes that drive the
// paper's results:
//
//   - footprint vs cache size → cold-start sensitivity and warming need;
//   - branch predictability → predictor warming sensitivity;
//   - kernel phase mixing → per-unit CPI variance (CV), which sets the
//     sample size and therefore live-point runtime (Table 2 spread);
//   - benchmark length → functional-warming cost (SMARTS runtime).
//
// Names intentionally echo the SPEC CPU2000 programs whose behaviour each
// entry imitates; the "syn." prefix marks them as synthetic stand-ins.

const (
	kb = 1 << 10
	mb = 1 << 20
)

// Suite returns the specs of the full synthetic benchmark suite, in a
// stable order.
func Suite() []BenchSpec {
	return []BenchSpec{
		{
			// Branchy integer code over a multi-megabyte working set with
			// distinct phases: the classic hard case for samplers.
			Name: "syn.gcc", Seed: 1001, BaseLen: 26_000_000,
			Phases: []PhaseSpec{
				{Kernels: []KernelSpec{
					{Kind: KBranchy, Footprint: 512 * kb, Pred: 0.80, Work: 4000},
					{Kind: KCompute, Work: 3000},
				}},
				{Kernels: []KernelSpec{
					{Kind: KBranchy, Footprint: 2 * mb, Pred: 0.72, Work: 5000},
					{Kind: KScatter, Footprint: 1 * mb, Work: 2500},
				}},
				{Kernels: []KernelSpec{
					{Kind: KCompute, Work: 4000},
					{Kind: KBranchy, Footprint: 256 * kb, Pred: 0.88, Work: 3000},
				}},
			},
		},
		{
			// High-ILP integer compression loop, small working set.
			Name: "syn.gzip", Seed: 1002, BaseLen: 20_000_000,
			Phases: []PhaseSpec{
				{Kernels: []KernelSpec{
					{Kind: KCompute, Work: 5000},
					{Kind: KBranchy, Footprint: 128 * kb, Pred: 0.90, Work: 3000},
				}},
				{Kernels: []KernelSpec{
					{Kind: KStream, Footprint: 512 * kb, Work: 4000},
					{Kind: KCompute, Work: 4000},
				}},
			},
		},
		{
			// Dependent pointer chasing far beyond L2: the memory-bound
			// extreme, highest CPI and among the highest CV.
			Name: "syn.mcf", Seed: 1003, BaseLen: 18_000_000,
			Phases: []PhaseSpec{
				{Kernels: []KernelSpec{
					{Kind: KChase, Footprint: 8 * mb, Work: 5000},
					{Kind: KCompute, Work: 1500},
				}},
				{Kernels: []KernelSpec{
					{Kind: KChase, Footprint: 8 * mb, Work: 6000},
				}},
			},
		},
		{
			// Long pointer-heavy benchmark with mixed phases: the paper's
			// slowest complete-simulation case.
			Name: "syn.parser", Seed: 1004, BaseLen: 44_000_000,
			Phases: []PhaseSpec{
				{Kernels: []KernelSpec{
					{Kind: KChase, Footprint: 2 * mb, Work: 4000},
					{Kind: KBranchy, Footprint: 512 * kb, Pred: 0.78, Work: 4000},
				}},
				{Kernels: []KernelSpec{
					{Kind: KChase, Footprint: 4 * mb, Work: 5000},
					{Kind: KCompute, Work: 2000},
				}},
				{Kernels: []KernelSpec{
					{Kind: KBranchy, Footprint: 1 * mb, Pred: 0.75, Work: 5000},
				}},
			},
		},
		{
			// Short, call-heavy, cache-resident: the paper's fastest
			// benchmark under every technique.
			Name: "syn.perlbmk", Seed: 1005, BaseLen: 9_000_000,
			Phases: []PhaseSpec{
				{Kernels: []KernelSpec{
					{Kind: KCalls, Work: 4000},
					{Kind: KBranchy, Footprint: 64 * kb, Pred: 0.86, Work: 3000},
				}},
			},
		},
		{
			// Call-heavy FP renderer, very homogeneous: tiny sample sizes.
			Name: "syn.eon", Seed: 1006, BaseLen: 14_000_000,
			Phases: []PhaseSpec{
				{Kernels: []KernelSpec{
					{Kind: KCalls, Work: 3500},
					{Kind: KFPMix, Footprint: 256 * kb, Work: 3500},
				}},
			},
		},
		{
			// Block-sorting compressor: streaming plus compute with a
			// working set around the L2 boundary.
			Name: "syn.bzip2", Seed: 1007, BaseLen: 24_000_000,
			Phases: []PhaseSpec{
				{Kernels: []KernelSpec{
					{Kind: KStream, Footprint: 1 * mb, Work: 4000},
					{Kind: KCompute, Work: 4000},
				}},
				{Kernels: []KernelSpec{
					{Kind: KScatter, Footprint: 2 * mb, Work: 3000},
					{Kind: KCompute, Work: 3000},
				}},
			},
		},
		{
			// Place-and-route scatter workload with strong phase contrast:
			// high CV, the slowest live-point case after syn.ammp.
			Name: "syn.vpr", Seed: 1008, BaseLen: 22_000_000,
			Phases: []PhaseSpec{
				{Kernels: []KernelSpec{
					{Kind: KScatter, Footprint: 4 * mb, Work: 5000},
				}},
				{Kernels: []KernelSpec{
					{Kind: KCompute, Work: 5000},
					{Kind: KBranchy, Footprint: 128 * kb, Pred: 0.84, Work: 2500},
				}},
				{Kernels: []KernelSpec{
					{Kind: KScatter, Footprint: 4 * mb, Work: 4000},
					{Kind: KChase, Footprint: 1 * mb, Work: 2000},
				}},
			},
		},
		{
			// Standard-cell placement: scatter plus chase in a mid-size set.
			Name: "syn.twolf", Seed: 1009, BaseLen: 20_000_000,
			Phases: []PhaseSpec{
				{Kernels: []KernelSpec{
					{Kind: KScatter, Footprint: 512 * kb, Work: 4000},
					{Kind: KChase, Footprint: 512 * kb, Work: 3000},
				}},
			},
		},
		{
			// Chess search: compute and branchy, cache resident.
			Name: "syn.crafty", Seed: 1010, BaseLen: 18_000_000,
			Phases: []PhaseSpec{
				{Kernels: []KernelSpec{
					{Kind: KCompute, Work: 4500},
					{Kind: KBranchy, Footprint: 256 * kb, Pred: 0.82, Work: 4500},
				}},
			},
		},
		{
			// Pure streaming FP: minimal CV, the paper's 1-second
			// live-point benchmark.
			Name: "syn.swim", Seed: 1011, BaseLen: 26_000_000,
			Phases: []PhaseSpec{
				{Kernels: []KernelSpec{
					{Kind: KStream, Footprint: 4 * mb, Work: 8000},
				}},
			},
		},
		{
			// Multigrid solver: streaming with an FP tail, the longest
			// benchmark in the suite (sim-outorder's worst case).
			Name: "syn.mgrid", Seed: 1012, BaseLen: 52_000_000,
			Phases: []PhaseSpec{
				{Kernels: []KernelSpec{
					{Kind: KStream, Footprint: 2 * mb, Work: 7000},
					{Kind: KFPMix, Footprint: 512 * kb, Work: 3000},
				}},
			},
		},
		{
			// Neural-net FP kernel over a beyond-L2 matrix.
			Name: "syn.art", Seed: 1013, BaseLen: 16_000_000,
			Phases: []PhaseSpec{
				{Kernels: []KernelSpec{
					{Kind: KFPMix, Footprint: 4 * mb, Work: 6000},
					{Kind: KStream, Footprint: 2 * mb, Work: 3000},
				}},
			},
		},
		{
			// Molecular dynamics: long-latency FP plus scattered neighbour
			// lists; the paper's slowest live-point benchmark.
			Name: "syn.ammp", Seed: 1014, BaseLen: 30_000_000,
			Phases: []PhaseSpec{
				{Kernels: []KernelSpec{
					{Kind: KFPMix, Footprint: 2 * mb, Work: 5000},
					{Kind: KScatter, Footprint: 8 * mb, Work: 4000},
				}},
				{Kernels: []KernelSpec{
					{Kind: KChase, Footprint: 4 * mb, Work: 3000},
					{Kind: KFPMix, Footprint: 1 * mb, Work: 3000},
				}},
			},
		},
		{
			// Earthquake FEM: page-stride sweeps, D-TLB bound.
			Name: "syn.equake", Seed: 1015, BaseLen: 20_000_000,
			Phases: []PhaseSpec{
				{Kernels: []KernelSpec{
					{Kind: KStride, Footprint: 8 * mb, Work: 6000},
					{Kind: KStream, Footprint: 1 * mb, Work: 2500},
				}},
			},
		},
		{
			// 3D rendering: predictable FP and compute, low CV.
			Name: "syn.mesa", Seed: 1016, BaseLen: 16_000_000,
			Phases: []PhaseSpec{
				{Kernels: []KernelSpec{
					{Kind: KFPMix, Footprint: 512 * kb, Work: 4000},
					{Kind: KCompute, Work: 4000},
				}},
			},
		},
	}
}

// SuiteNames returns the benchmark names in suite order.
func SuiteNames() []string {
	specs := Suite()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// ByName returns the spec with the given name.
func ByName(name string) (BenchSpec, error) {
	for _, s := range Suite() {
		if s.Name == name {
			return s, nil
		}
	}
	return BenchSpec{}, fmt.Errorf("prog: unknown benchmark %q", name)
}

// MiniSuite returns a small, fast subset used by tests and quick examples:
// one memory-bound, one compute-bound, one branchy benchmark, scaled short.
func MiniSuite() []BenchSpec {
	mini := []BenchSpec{}
	for _, s := range Suite() {
		switch s.Name {
		case "syn.swim", "syn.gzip", "syn.mcf":
			mini = append(mini, s)
		}
	}
	return mini
}
