package prog

import (
	"testing"

	"livepoints/internal/functional"
	"livepoints/internal/isa"
)

func TestGenerateDeterministic(t *testing.T) {
	for _, spec := range MiniSuite() {
		p1 := Generate(spec, 0.01)
		p2 := Generate(spec, 0.01)
		if len(p1.Text) != len(p2.Text) {
			t.Fatalf("%s: text length differs: %d vs %d", spec.Name, len(p1.Text), len(p2.Text))
		}
		for i := range p1.Text {
			if p1.Text[i] != p2.Text[i] {
				t.Fatalf("%s: instruction %d differs", spec.Name, i)
			}
		}
		if len(p1.Data) != len(p2.Data) {
			t.Fatalf("%s: data ranges differ", spec.Name)
		}
		for i := range p1.Data {
			if p1.Data[i].Base != p2.Data[i].Base || len(p1.Data[i].Words) != len(p2.Data[i].Words) {
				t.Fatalf("%s: data range %d differs", spec.Name, i)
			}
		}
	}
}

func TestSuitePrograms_RunToHalt(t *testing.T) {
	for _, spec := range Suite() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			p := Generate(spec, 0.002) // tiny scale for test speed
			cpu := functional.New(p, p.NewMemory())
			n, err := cpu.RunToHalt(p.TargetLen*4 + 2_000_000)
			if err != nil {
				t.Fatalf("run: %v (after %d instructions)", err, n)
			}
			if n == 0 {
				t.Fatalf("program executed no instructions")
			}
			// Dynamic length should be within a loose factor of target.
			if n > p.TargetLen*4+1_000_000 {
				t.Fatalf("dynamic length %d far beyond target %d", n, p.TargetLen)
			}
			t.Logf("%s: %d dynamic instructions (target %d), %d static, %d data words",
				spec.Name, n, p.TargetLen, p.TextLen(), p.DataWords())
		})
	}
}

func TestProgramFetchBounds(t *testing.T) {
	p := Generate(MiniSuite()[0], 0.001)
	if _, ok := p.Fetch(uint64(len(p.Text))); ok {
		t.Fatal("fetch past end of text should fail")
	}
	if _, ok := p.Fetch(0); !ok {
		t.Fatal("fetch of entry should succeed")
	}
}

func TestSuiteUniqueNamesAndSeeds(t *testing.T) {
	names := map[string]bool{}
	seeds := map[int64]bool{}
	for _, s := range Suite() {
		if names[s.Name] {
			t.Errorf("duplicate name %s", s.Name)
		}
		if seeds[s.Seed] {
			t.Errorf("duplicate seed %d (%s)", s.Seed, s.Name)
		}
		names[s.Name] = true
		seeds[s.Seed] = true
		if len(s.Phases) == 0 {
			t.Errorf("%s: no phases", s.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("syn.mcf"); err != nil {
		t.Fatalf("ByName(syn.mcf): %v", err)
	}
	if _, err := ByName("nonexistent"); err == nil {
		t.Fatal("ByName should fail for unknown benchmark")
	}
}

func TestKernelKindString(t *testing.T) {
	for k := KStream; k <= KScatter; k++ {
		if k.String() == "" {
			t.Errorf("kernel %d has empty name", k)
		}
	}
}

// TestRegisterZeroNeverWritten checks the generator never targets r0.
func TestRegisterZeroNeverWritten(t *testing.T) {
	for _, spec := range Suite() {
		p := Generate(spec, 0.001)
		for i, in := range p.Text {
			if in.WritesReg() && in.Rd == isa.RegZero {
				t.Fatalf("%s: instruction %d writes r0: %v", spec.Name, i, in.String())
			}
		}
	}
}
