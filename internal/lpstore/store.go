// Package lpstore implements the sharded live-point library format (v2)
// and its random-access store.
//
// The v1 format (internal/livepoint) is one sequential gzip stream: random
// access is impossible, shuffling rewrites the whole file, and parallel
// runners funnel every worker through a single decompressor. Format v2
// keeps the same DER point encoding but splits the library into N
// independently-gzipped shards followed by an uncompressed footer index:
//
//	offset 0   magic "LPLIBv2\n"
//	           shard 0 gzip stream | shard 1 gzip stream | ...
//	           index (ASN.1 DER, uncompressed)
//	EOF-16     index length (uint64 LE) | trailer magic "LPIDXv2\n"
//
// The index records, per shard, its file offset and compressed/uncompressed
// lengths; per point, its shard and (offset, length) within the shard's
// uncompressed stream; and the library read order as a permutation of
// point ids. That buys:
//
//   - O(shard) random access to any point, O(1) to its location;
//   - index-only shuffling: Shuffle permutes the footer and never touches
//     point data (v1 ShuffleFile rewrites and recompresses everything);
//   - concurrent reads: shards decompress independently, so parallel
//     runners scale their load bandwidth with worker count;
//   - remote serving: internal/lpserve streams stored shard bytes to
//     clients verbatim, with no server-side recompression.
//
// The store registers itself with livepoint.RegisterFormat, so
// livepoint.RunFile and OpenSource transparently accept v2 files wherever
// a v1 path was accepted before.
package lpstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"

	"livepoints/internal/asn1der"
	"livepoints/internal/livepoint"
)

const (
	fileMagic    = "LPLIBv2\n" // first 8 bytes of a v2 library
	trailerMagic = "LPIDXv2\n" // last 8 bytes of a v2 library
	idxMagic     = "livepoint-library-v2"

	// DefaultShardPoints is the default number of points per shard: small
	// enough that a 4-worker run on a few hundred points still sees many
	// shards, large enough that gzip retains cross-point redundancy.
	DefaultShardPoints = 64

	trailerLen     = 16 // index length (8) + trailer magic (8)
	shardRecordLen = 28 // dataOff u64 | compLen u64 | uncompLen u64 | points u32
	pointRecordLen = 16 // shard u32 | off u64 | len u32
)

// shardInfo locates one shard's compressed bytes and describes its
// contents.
type shardInfo struct {
	dataOff   int64 // absolute file offset of the gzip stream
	compLen   int64
	uncompLen int64
	points    int
}

// pointInfo locates one point inside its shard's uncompressed stream.
type pointInfo struct {
	shard int
	off   int64
	len   int
}

// Span is a point's (offset, length) within its shard's uncompressed
// stream.
type Span struct {
	Off int64 `json:"off"`
	Len int   `json:"len"`
}

// Info summarizes a written v2 library.
type Info struct {
	Points            int
	Shards            int
	CompressedBytes   int64 // whole file, index included
	UncompressedBytes int64 // sum of encoded point sizes
}

// Stat describes an open store (the serving /v1/stat payload).
type Stat struct {
	Benchmark         string `json:"benchmark"`
	Points            int    `json:"points"`
	UnitLen           uint64 `json:"unitLen"`
	WarmLen           uint64 `json:"warmLen"`
	Shuffled          bool   `json:"shuffled"`
	Shards            int    `json:"shards"`
	CompressedBytes   int64  `json:"compressedBytes"`
	UncompressedBytes int64  `json:"uncompressedBytes"`
}

// Store is an open sharded live-point library. It is safe for concurrent
// readers: file access uses positioned reads and shared metadata is
// immutable after Open.
type Store struct {
	path string
	f    *os.File // nil for in-memory (migrated-on-open v1) stores
	mem  [][]byte // per-shard compressed bytes when f == nil

	meta         livepoint.Meta
	uncompressed int64
	shards       []shardInfo
	points       []pointInfo // indexed by physical point id (storage order)
	order        []uint32    // read position -> physical point id

	shardOrderOnce sync.Once
	shardOrder     [][]uint32 // per shard: physical ids in read order
}

// IsV2 reports whether path begins with the v2 library magic.
func IsV2(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return false, nil // too short to be v2; not an error here
	}
	return string(magic[:]) == fileMagic, nil
}

// Open opens a v2 library file. Opening a v1 file fails with a message
// pointing at Migrate/OpenAny.
func Open(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := openFile(f, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	return st, nil
}

func openFile(f *os.File, path string) (*Store, error) {
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return nil, fmt.Errorf("lpstore: %s: reading magic: %w", path, err)
	}
	if string(magic[:]) != fileMagic {
		if magic[0] == 0x1f && magic[1] == 0x8b {
			return nil, fmt.Errorf("lpstore: %s is a v1 (sequential gzip) library; migrate it with lpstore.Migrate or open it with lpstore.OpenAny", path)
		}
		return nil, fmt.Errorf("lpstore: %s is not a live-point library (magic %q)", path, magic)
	}
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size < int64(len(fileMagic))+trailerLen {
		return nil, fmt.Errorf("lpstore: %s: file too short for a v2 library", path)
	}
	var trailer [trailerLen]byte
	if _, err := f.ReadAt(trailer[:], size-trailerLen); err != nil {
		return nil, fmt.Errorf("lpstore: %s: reading trailer: %w", path, err)
	}
	if string(trailer[8:]) != trailerMagic {
		return nil, fmt.Errorf("lpstore: %s: bad trailer magic %q (truncated or corrupt library)", path, trailer[8:])
	}
	idxLen := int64(binary.LittleEndian.Uint64(trailer[:8]))
	idxOff := size - trailerLen - idxLen
	if idxLen <= 0 || idxOff < int64(len(fileMagic)) {
		return nil, fmt.Errorf("lpstore: %s: implausible index length %d", path, idxLen)
	}
	idx := make([]byte, idxLen)
	if _, err := f.ReadAt(idx, idxOff); err != nil {
		return nil, fmt.Errorf("lpstore: %s: reading index: %w", path, err)
	}
	st := &Store{path: path, f: f}
	if err := st.decodeIndex(idx); err != nil {
		return nil, fmt.Errorf("lpstore: %s: %w", path, err)
	}
	return st, nil
}

// Close releases the store's file handle. In-memory stores are a no-op.
func (st *Store) Close() error {
	if st.f == nil {
		return nil
	}
	return st.f.Close()
}

// Path returns the file path the store was opened from ("" for in-memory
// stores).
func (st *Store) Path() string { return st.path }

// Meta returns the library metadata.
func (st *Store) Meta() livepoint.Meta { return st.meta }

// Count returns the number of points.
func (st *Store) Count() int { return st.meta.Count }

// NumShards returns the number of shards.
func (st *Store) NumShards() int { return len(st.shards) }

// UncompressedBytes returns the summed encoded point sizes.
func (st *Store) UncompressedBytes() int64 { return st.uncompressed }

// CompressedBytes returns the summed compressed shard sizes.
func (st *Store) CompressedBytes() int64 {
	var n int64
	for _, sh := range st.shards {
		n += sh.compLen
	}
	return n
}

// Stat summarizes the store.
func (st *Store) Stat() Stat {
	return Stat{
		Benchmark:         st.meta.Benchmark,
		Points:            st.meta.Count,
		UnitLen:           st.meta.UnitLen,
		WarmLen:           st.meta.WarmLen,
		Shuffled:          st.meta.Shuffled,
		Shards:            len(st.shards),
		CompressedBytes:   st.CompressedBytes(),
		UncompressedBytes: st.uncompressed,
	}
}

// Order returns a copy of the read-order permutation: Order()[i] is the
// physical id of the i-th point a sequential reader sees.
func (st *Store) Order() []int {
	out := make([]int, len(st.order))
	for i, p := range st.order {
		out[i] = int(p)
	}
	return out
}

// ShardStat returns one shard's point count and compressed/uncompressed
// byte sizes.
func (st *Store) ShardStat(s int) (points int, compLen, uncompLen int64, err error) {
	if s < 0 || s >= len(st.shards) {
		return 0, 0, 0, fmt.Errorf("lpstore: shard %d out of range [0,%d)", s, len(st.shards))
	}
	sh := st.shards[s]
	return sh.points, sh.compLen, sh.uncompLen, nil
}

// ShardRaw returns a reader over one shard's stored gzip bytes and their
// length — the serving layer streams these verbatim (no recompression).
func (st *Store) ShardRaw(s int) (io.Reader, int64, error) {
	if s < 0 || s >= len(st.shards) {
		return nil, 0, fmt.Errorf("lpstore: shard %d out of range [0,%d)", s, len(st.shards))
	}
	sh := st.shards[s]
	if st.f == nil {
		return bytes.NewReader(st.mem[s]), sh.compLen, nil
	}
	return io.NewSectionReader(st.f, sh.dataOff, sh.compLen), sh.compLen, nil
}

// DecompressShard inflates one shard into memory and returns its
// uncompressed bytes (every point blob, concatenated in storage order).
func (st *Store) DecompressShard(s int) ([]byte, error) {
	raw, _, err := st.ShardRaw(s)
	if err != nil {
		return nil, err
	}
	gz, err := livepoint.AcquireGzipReader(raw)
	if err != nil {
		return nil, fmt.Errorf("lpstore: shard %d: %w", s, err)
	}
	defer livepoint.ReleaseGzipReader(gz)
	data := make([]byte, st.shards[s].uncompLen)
	if _, err := io.ReadFull(gz, data); err != nil {
		return nil, fmt.Errorf("lpstore: shard %d: inflating: %w", s, err)
	}
	// Read to EOF so the gzip CRC trailer is actually verified: uncompLen
	// bytes arriving intact does not prove the stream checksum matched.
	if _, err := io.Copy(io.Discard, gz); err != nil {
		return nil, fmt.Errorf("lpstore: shard %d: stream trailer: %w", s, err)
	}
	return data, nil
}

// buildShardOrder partitions the read-order permutation by shard, once.
func (st *Store) buildShardOrder() {
	st.shardOrderOnce.Do(func() {
		st.shardOrder = make([][]uint32, len(st.shards))
		for _, phys := range st.order {
			s := st.points[phys].shard
			st.shardOrder[s] = append(st.shardOrder[s], phys)
		}
	})
}

// ShardReadOrder returns shard s's points as (offset, length) spans within
// the shard's uncompressed stream, in the library's read order restricted
// to that shard.
func (st *Store) ShardReadOrder(s int) ([]Span, error) {
	if s < 0 || s >= len(st.shards) {
		return nil, fmt.Errorf("lpstore: shard %d out of range [0,%d)", s, len(st.shards))
	}
	st.buildShardOrder()
	spans := make([]Span, len(st.shardOrder[s]))
	for i, phys := range st.shardOrder[s] {
		p := st.points[phys]
		spans[i] = Span{Off: p.off, Len: p.len}
	}
	return spans, nil
}

// ShardReadPositions returns the global read-order positions of shard s's
// points, in the shard's read order — parallel to ShardReadOrder's spans.
// Cluster coordinators use it to map a shard lease's results back onto
// library positions.
func (st *Store) ShardReadPositions(s int) ([]int, error) {
	if s < 0 || s >= len(st.shards) {
		return nil, fmt.Errorf("lpstore: shard %d out of range [0,%d)", s, len(st.shards))
	}
	pos := make([]int, 0, st.shards[s].points)
	for i, phys := range st.order {
		if st.points[phys].shard == s {
			pos = append(pos, i)
		}
	}
	return pos, nil
}

// PointBlob returns the encoded live-point at read-order position i. Cost
// is one shard decompression; batch readers should prefer Blobs, Source,
// or per-shard sources, which amortize it.
func (st *Store) PointBlob(i int) ([]byte, error) {
	if i < 0 || i >= len(st.order) {
		return nil, fmt.Errorf("lpstore: point %d out of range [0,%d)", i, len(st.order))
	}
	p := st.points[st.order[i]]
	data, err := st.DecompressShard(p.shard)
	if err != nil {
		return nil, err
	}
	return data[p.off : p.off+int64(p.len)], nil
}

// Blobs returns the encoded points at read-order positions [start,
// start+count), decompressing each touched shard once.
func (st *Store) Blobs(start, count int) ([][]byte, error) {
	if start < 0 || count < 0 || start+count > len(st.order) {
		return nil, fmt.Errorf("lpstore: range [%d,%d) out of [0,%d)", start, start+count, len(st.order))
	}
	cache := make(map[int][]byte)
	out := make([][]byte, count)
	for i := 0; i < count; i++ {
		p := st.points[st.order[start+i]]
		data, ok := cache[p.shard]
		if !ok {
			var err error
			if data, err = st.DecompressShard(p.shard); err != nil {
				return nil, err
			}
			cache[p.shard] = data
		}
		out[i] = data[p.off : p.off+int64(p.len)]
	}
	return out, nil
}

// Source returns a sequential livepoint.Source over the whole store in
// read order. The returned source also implements livepoint.ShardedSource,
// so parallel runners pull shards concurrently. Closing it does not close
// the store.
func (st *Store) Source() livepoint.Source {
	return &storeSource{st: st, cache: newShardCache(st, 4)}
}

// storeSource walks the store in read order through a small decompressed-
// shard cache (creation-time shuffled libraries read shard-major, so the
// cache usually holds one live shard; index-reshuffled ones may revisit).
type storeSource struct {
	st       *Store
	pos      int
	cache    *shardCache
	ownStore bool
}

func (s *storeSource) Meta() livepoint.Meta { return s.st.meta }

func (s *storeSource) NextBlob() ([]byte, error) {
	if s.pos >= len(s.st.order) {
		return nil, io.EOF
	}
	p := s.st.points[s.st.order[s.pos]]
	data, err := s.cache.get(p.shard)
	if err != nil {
		return nil, err
	}
	s.pos++
	return data[p.off : p.off+int64(p.len)], nil
}

func (s *storeSource) Close() error {
	s.cache = newShardCache(s.st, 4)
	if s.ownStore {
		return s.st.Close()
	}
	return nil
}

func (s *storeSource) NumShards() int { return s.st.NumShards() }

func (s *storeSource) OpenShard(sh int) (livepoint.Source, error) {
	if sh < 0 || sh >= s.st.NumShards() {
		return nil, fmt.Errorf("lpstore: shard %d out of range [0,%d)", sh, s.st.NumShards())
	}
	data, err := s.st.DecompressShard(sh)
	if err != nil {
		return nil, err
	}
	s.st.buildShardOrder()
	return &shardSource{st: s.st, data: data, ids: s.st.shardOrder[sh]}, nil
}

// shardSource yields one decompressed shard's points in read order.
type shardSource struct {
	st   *Store
	data []byte
	ids  []uint32
	pos  int
}

func (s *shardSource) Meta() livepoint.Meta { return s.st.meta }

func (s *shardSource) NextBlob() ([]byte, error) {
	if s.pos >= len(s.ids) {
		return nil, io.EOF
	}
	p := s.st.points[s.ids[s.pos]]
	s.pos++
	return s.data[p.off : p.off+int64(p.len)], nil
}

func (s *shardSource) Close() error {
	s.data = nil
	return nil
}

// shardCache holds up to cap decompressed shards, FIFO-evicted.
type shardCache struct {
	st   *Store
	cap  int
	m    map[int][]byte
	fifo []int
}

func newShardCache(st *Store, capacity int) *shardCache {
	return &shardCache{st: st, cap: capacity, m: make(map[int][]byte)}
}

func (c *shardCache) get(s int) ([]byte, error) {
	if data, ok := c.m[s]; ok {
		return data, nil
	}
	data, err := c.st.DecompressShard(s)
	if err != nil {
		return nil, err
	}
	if len(c.fifo) >= c.cap {
		delete(c.m, c.fifo[0])
		c.fifo = c.fifo[1:]
	}
	c.m[s] = data
	c.fifo = append(c.fifo, s)
	return data, nil
}

// Shuffle rewrites a v2 library's read order in place, deterministically
// from seed: only the footer index is rewritten; shard data is untouched.
// Contrast with v1 ShuffleFile, which decompresses, permutes, and
// recompresses the whole library.
func Shuffle(path string, seed int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := openFile(f, path)
	if err != nil {
		return err
	}
	fi, err := f.Stat()
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(st.order), func(i, j int) {
		st.order[i], st.order[j] = st.order[j], st.order[i]
	})
	st.meta.Shuffled = true

	idx := st.encodeIndex()
	idxLen, err := indexLenAt(f, fi.Size())
	if err != nil {
		return err
	}
	idxOff := fi.Size() - trailerLen - idxLen
	if err := f.Truncate(idxOff); err != nil {
		return err
	}
	if _, err := f.WriteAt(appendTrailer(idx), idxOff); err != nil {
		return err
	}
	return f.Sync()
}

// indexLenAt re-reads the stored index length (openFile already validated
// the trailer). A short read must fail loudly: truncating the file at an
// offset derived from a garbage trailer would destroy shard data.
func indexLenAt(f *os.File, size int64) (int64, error) {
	var trailer [trailerLen]byte
	if _, err := f.ReadAt(trailer[:], size-trailerLen); err != nil {
		return 0, fmt.Errorf("lpstore: read trailer: %w", err)
	}
	return int64(binary.LittleEndian.Uint64(trailer[:8])), nil
}

// appendTrailer suffixes an encoded index with its length and the trailer
// magic.
func appendTrailer(idx []byte) []byte {
	out := make([]byte, len(idx)+trailerLen)
	copy(out, idx)
	binary.LittleEndian.PutUint64(out[len(idx):], uint64(len(idx)))
	copy(out[len(idx)+8:], trailerMagic)
	return out
}

// encodeIndex serializes the footer index.
func (st *Store) encodeIndex() []byte {
	b := asn1der.NewBuilder()
	b.Sequence(func(b *asn1der.Builder) {
		b.UTF8String(idxMagic)
		b.UTF8String(st.meta.Benchmark)
		b.Uint64(uint64(st.meta.Count))
		b.Uint64(st.meta.UnitLen)
		b.Uint64(st.meta.WarmLen)
		b.Bool(st.meta.Shuffled)
		b.Uint64(uint64(st.uncompressed))

		shards := make([]byte, shardRecordLen*len(st.shards))
		for i, sh := range st.shards {
			rec := shards[i*shardRecordLen:]
			binary.LittleEndian.PutUint64(rec, uint64(sh.dataOff))
			binary.LittleEndian.PutUint64(rec[8:], uint64(sh.compLen))
			binary.LittleEndian.PutUint64(rec[16:], uint64(sh.uncompLen))
			binary.LittleEndian.PutUint32(rec[24:], uint32(sh.points))
		}
		b.OctetString(shards)

		points := make([]byte, pointRecordLen*len(st.points))
		for i, p := range st.points {
			rec := points[i*pointRecordLen:]
			binary.LittleEndian.PutUint32(rec, uint32(p.shard))
			binary.LittleEndian.PutUint64(rec[4:], uint64(p.off))
			binary.LittleEndian.PutUint32(rec[12:], uint32(p.len))
		}
		b.OctetString(points)

		order := make([]byte, 4*len(st.order))
		for i, p := range st.order {
			binary.LittleEndian.PutUint32(order[i*4:], p)
		}
		b.OctetString(order)
	})
	return b.Bytes()
}

// decodeIndex parses the footer index into the store and validates its
// internal consistency.
func (st *Store) decodeIndex(buf []byte) error {
	d, err := asn1der.NewDecoder(buf).Sequence()
	if err != nil {
		return fmt.Errorf("index: %w", err)
	}
	magic, err := d.UTF8String()
	if err != nil {
		return fmt.Errorf("index: %w", err)
	}
	if magic != idxMagic {
		return fmt.Errorf("index magic %q, want %q", magic, idxMagic)
	}
	if st.meta.Benchmark, err = d.UTF8String(); err != nil {
		return err
	}
	count, err := d.Uint64()
	if err != nil {
		return err
	}
	st.meta.Count = int(count)
	if st.meta.UnitLen, err = d.Uint64(); err != nil {
		return err
	}
	if st.meta.WarmLen, err = d.Uint64(); err != nil {
		return err
	}
	if st.meta.Shuffled, err = d.Bool(); err != nil {
		return err
	}
	uncompressed, err := d.Uint64()
	if err != nil {
		return err
	}
	st.uncompressed = int64(uncompressed)

	shards, err := d.OctetString()
	if err != nil {
		return err
	}
	if len(shards)%shardRecordLen != 0 {
		return fmt.Errorf("shard table length %d not a multiple of %d", len(shards), shardRecordLen)
	}
	st.shards = make([]shardInfo, len(shards)/shardRecordLen)
	for i := range st.shards {
		rec := shards[i*shardRecordLen:]
		st.shards[i] = shardInfo{
			dataOff:   int64(binary.LittleEndian.Uint64(rec)),
			compLen:   int64(binary.LittleEndian.Uint64(rec[8:])),
			uncompLen: int64(binary.LittleEndian.Uint64(rec[16:])),
			points:    int(binary.LittleEndian.Uint32(rec[24:])),
		}
	}

	points, err := d.OctetString()
	if err != nil {
		return err
	}
	if len(points)%pointRecordLen != 0 {
		return fmt.Errorf("point table length %d not a multiple of %d", len(points), pointRecordLen)
	}
	st.points = make([]pointInfo, len(points)/pointRecordLen)
	for i := range st.points {
		rec := points[i*pointRecordLen:]
		st.points[i] = pointInfo{
			shard: int(binary.LittleEndian.Uint32(rec)),
			off:   int64(binary.LittleEndian.Uint64(rec[4:])),
			len:   int(binary.LittleEndian.Uint32(rec[12:])),
		}
	}

	orderBytes, err := d.OctetString()
	if err != nil {
		return err
	}
	if len(orderBytes)%4 != 0 {
		return fmt.Errorf("order table length %d not a multiple of 4", len(orderBytes))
	}
	st.order = make([]uint32, len(orderBytes)/4)
	for i := range st.order {
		st.order[i] = binary.LittleEndian.Uint32(orderBytes[i*4:])
	}
	return st.validate()
}

// validate cross-checks the decoded index.
func (st *Store) validate() error {
	if len(st.points) != st.meta.Count {
		return fmt.Errorf("index declares %d points, point table has %d", st.meta.Count, len(st.points))
	}
	if len(st.order) != st.meta.Count {
		return fmt.Errorf("order table has %d entries for %d points", len(st.order), st.meta.Count)
	}
	perShard := make([]int, len(st.shards))
	for i, p := range st.points {
		if p.shard < 0 || p.shard >= len(st.shards) {
			return fmt.Errorf("point %d in shard %d of %d", i, p.shard, len(st.shards))
		}
		if p.off < 0 || p.len < 0 || p.off+int64(p.len) > st.shards[p.shard].uncompLen {
			return fmt.Errorf("point %d span [%d,%d) exceeds shard %d length %d",
				i, p.off, p.off+int64(p.len), p.shard, st.shards[p.shard].uncompLen)
		}
		perShard[p.shard]++
	}
	for s, n := range perShard {
		if n != st.shards[s].points {
			return fmt.Errorf("shard %d declares %d points, point table has %d", s, st.shards[s].points, n)
		}
	}
	seen := make([]bool, st.meta.Count)
	for _, p := range st.order {
		if int(p) >= st.meta.Count || seen[p] {
			return fmt.Errorf("order table is not a permutation of [0,%d)", st.meta.Count)
		}
		seen[p] = true
	}
	return nil
}
