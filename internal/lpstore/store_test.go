package lpstore

import (
	"bytes"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"livepoints/internal/asn1der"
	"livepoints/internal/livepoint"
)

// synthBlobs builds n deterministic DER octet-string blobs of varied,
// partially compressible content — structurally valid library points
// without the cost of live-point creation.
func synthBlobs(n, approxLen int) [][]byte {
	rng := rand.New(rand.NewSource(0x5EED))
	blobs := make([][]byte, n)
	for i := range blobs {
		size := approxLen/2 + rng.Intn(approxLen)
		payload := make([]byte, size)
		for j := range payload {
			if j%4 == 0 {
				payload[j] = byte(rng.Intn(256)) // incompressible quarter
			} else {
				payload[j] = byte(i) // compressible runs
			}
		}
		b := asn1der.NewBuilder()
		b.OctetString(payload)
		blobs[i] = b.Bytes()
	}
	return blobs
}

func writeTestStore(t *testing.T, blobs [][]byte, shardPoints int, shuffled bool) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "lib.lplib")
	meta := livepoint.Meta{Benchmark: "syn.test", UnitLen: 1000, WarmLen: 2000, Shuffled: shuffled}
	info, err := Write(path, meta, blobs, WriteOpts{ShardPoints: shardPoints})
	if err != nil {
		t.Fatal(err)
	}
	if info.Points != len(blobs) {
		t.Fatalf("info.Points = %d, want %d", info.Points, len(blobs))
	}
	wantShards := (len(blobs) + shardPoints - 1) / shardPoints
	if info.Shards != wantShards {
		t.Fatalf("info.Shards = %d, want %d", info.Shards, wantShards)
	}
	return path
}

// drain reads a source to EOF.
func drain(t *testing.T, src livepoint.Source) [][]byte {
	t.Helper()
	var out [][]byte
	for {
		b, err := src.NextBlob()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b)
	}
}

func TestWriteOpenRoundTrip(t *testing.T) {
	blobs := synthBlobs(53, 700)
	path := writeTestStore(t, blobs, 8, true)

	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	m := st.Meta()
	if m.Benchmark != "syn.test" || m.Count != 53 || m.UnitLen != 1000 || m.WarmLen != 2000 || !m.Shuffled {
		t.Fatalf("meta did not round-trip: %+v", m)
	}
	if st.NumShards() != 7 {
		t.Fatalf("NumShards = %d, want 7", st.NumShards())
	}

	// Random access returns each blob byte-exactly.
	for i := range blobs {
		got, err := st.PointBlob(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, blobs[i]) {
			t.Fatalf("PointBlob(%d) mismatch", i)
		}
	}

	// Sequential source preserves write order.
	got := drain(t, st.Source())
	if len(got) != len(blobs) {
		t.Fatalf("sequential read %d blobs, want %d", len(got), len(blobs))
	}
	for i := range blobs {
		if !bytes.Equal(got[i], blobs[i]) {
			t.Fatalf("sequential blob %d mismatch", i)
		}
	}

	// Batch access, spanning shard boundaries.
	batch, err := st.Blobs(5, 20)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range batch {
		if !bytes.Equal(b, blobs[5+i]) {
			t.Fatalf("batch blob %d mismatch", i)
		}
	}
	if _, err := st.Blobs(50, 10); err == nil {
		t.Fatal("out-of-range batch should fail")
	}

	// Per-shard sources cover every point exactly once.
	ss, ok := st.Source().(livepoint.ShardedSource)
	if !ok {
		t.Fatal("store source should be sharded")
	}
	var fromShards int
	for s := 0; s < ss.NumShards(); s++ {
		sub, err := ss.OpenShard(s)
		if err != nil {
			t.Fatal(err)
		}
		fromShards += len(drain(t, sub))
		sub.Close()
	}
	if fromShards != len(blobs) {
		t.Fatalf("shard sources yielded %d blobs, want %d", fromShards, len(blobs))
	}
}

// TestShuffleIsIndexOnly checks Shuffle permutes the read order without
// touching a single byte of shard data.
func TestShuffleIsIndexOnly(t *testing.T) {
	blobs := synthBlobs(40, 500)
	path := writeTestStore(t, blobs, 8, false)

	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	dataLen := int64(len(fileMagic)) + st.CompressedBytes()
	st.Close()

	if err := Shuffle(path, 42); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before[:dataLen], after[:dataLen]) {
		t.Fatal("shuffle modified shard data; it must only rewrite the index")
	}

	st, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if !st.Meta().Shuffled {
		t.Fatal("shuffled library not marked shuffled")
	}
	order := st.Order()
	inOrder := true
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			inOrder = false
		}
	}
	if inOrder {
		t.Fatal("shuffle left the order untouched")
	}

	// Multiset preserved: every blob still readable, exactly once.
	got := drain(t, st.Source())
	seen := make(map[int]bool)
	for _, b := range got {
		for i := range blobs {
			if bytes.Equal(b, blobs[i]) {
				if seen[i] {
					t.Fatalf("blob %d appears twice after shuffle", i)
				}
				seen[i] = true
				break
			}
		}
	}
	if len(seen) != len(blobs) {
		t.Fatalf("only %d of %d blobs found after shuffle", len(seen), len(blobs))
	}

	// Same seed, same permutation.
	path2 := writeTestStore(t, blobs, 8, false)
	if err := Shuffle(path2, 42); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(path2)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if !reflect.DeepEqual(st.Order(), st2.Order()) {
		t.Fatal("shuffle is not deterministic by seed")
	}
}

// TestMigratePreservesOrder checks v1→v2 migration yields the same blobs
// in the same read order, so experiment results carry over bit-equal.
func TestMigratePreservesOrder(t *testing.T) {
	blobs := synthBlobs(30, 600)
	dir := t.TempDir()
	v1 := filepath.Join(dir, "v1.lplib")
	v2 := filepath.Join(dir, "v2.lplib")
	meta := livepoint.Meta{Benchmark: "syn.mig", UnitLen: 100, WarmLen: 200, Shuffled: true}
	if _, err := livepoint.WriteLibrary(v1, meta, blobs); err != nil {
		t.Fatal(err)
	}
	info, err := Migrate(v1, v2, WriteOpts{ShardPoints: 7})
	if err != nil {
		t.Fatal(err)
	}
	if info.Points != 30 || info.Shards != 5 {
		t.Fatalf("migrate info %+v", info)
	}

	wantMeta, want, err := livepoint.ReadAllBlobs(v1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Open(v2)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Meta() != wantMeta {
		t.Fatalf("migrated meta %+v, want %+v", st.Meta(), wantMeta)
	}
	got := drain(t, st.Source())
	if len(got) != len(want) {
		t.Fatalf("migrated store has %d points, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("migrated blob %d differs from v1 read order", i)
		}
	}
}

// TestOpenAnyV1 checks the in-memory migration reader: a v1 file opens as
// a fully functional store, including raw-shard access for serving.
func TestOpenAnyV1(t *testing.T) {
	blobs := synthBlobs(20, 400)
	v1 := filepath.Join(t.TempDir(), "v1.lplib")
	meta := livepoint.Meta{Benchmark: "syn.any", Shuffled: true}
	if _, err := livepoint.WriteLibrary(v1, meta, blobs); err != nil {
		t.Fatal(err)
	}
	st, err := OpenAny(v1)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Count() != 20 || st.NumShards() == 0 {
		t.Fatalf("v1-backed store: count %d, shards %d", st.Count(), st.NumShards())
	}
	for i := range blobs {
		got, err := st.PointBlob(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, blobs[i]) {
			t.Fatalf("PointBlob(%d) mismatch on v1-backed store", i)
		}
	}
	// Raw shard bytes must inflate back to the catenated blobs.
	raw, n, err := st.ShardRaw(0)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatal("empty raw shard")
	}
	data, err := st.DecompressShard(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty decompressed shard")
	}
	_ = raw
}

// TestOpenRejectsV1AndGarbage covers the v1-file-opened-as-v2 error path
// and corrupt inputs.
func TestOpenRejectsV1AndGarbage(t *testing.T) {
	dir := t.TempDir()

	v1 := filepath.Join(dir, "v1.lplib")
	if _, err := livepoint.WriteLibrary(v1, livepoint.Meta{Benchmark: "b"}, synthBlobs(3, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(v1); err == nil {
		t.Fatal("Open(v1 file) should fail")
	} else if got := err.Error(); !bytes.Contains([]byte(got), []byte("v1")) {
		t.Fatalf("v1 error should name the format: %v", err)
	}

	junk := filepath.Join(dir, "junk")
	if err := os.WriteFile(junk, []byte("neither format at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(junk); err == nil {
		t.Fatal("Open(garbage) should fail")
	}

	// Truncating the trailer must be detected.
	v2 := writeTestStore(t, synthBlobs(10, 200), 4, false)
	raw, err := os.ReadFile(v2)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "trunc.lplib")
	if err := os.WriteFile(trunc, raw[:len(raw)-9], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(trunc); err == nil {
		t.Fatal("Open(truncated v2) should fail")
	}
}

// TestRegisteredOpener checks livepoint.OpenSource transparently opens v2
// files via the registered format opener.
func TestRegisteredOpener(t *testing.T) {
	blobs := synthBlobs(15, 300)
	path := writeTestStore(t, blobs, 4, true)
	src, err := livepoint.OpenSource(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if _, ok := src.(livepoint.ShardedSource); !ok {
		t.Fatal("v2 source should be sharded")
	}
	if got := drain(t, src); len(got) != len(blobs) {
		t.Fatalf("drained %d blobs, want %d", len(got), len(blobs))
	}
}

func TestEmptyLibrary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.lplib")
	if _, err := Write(path, livepoint.Meta{Benchmark: "none"}, nil, WriteOpts{}); err != nil {
		t.Fatal(err)
	}
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Count() != 0 || st.NumShards() != 0 {
		t.Fatalf("empty library: count %d shards %d", st.Count(), st.NumShards())
	}
	if _, err := st.Source().NextBlob(); err != io.EOF {
		t.Fatalf("empty source should EOF, got %v", err)
	}
}
