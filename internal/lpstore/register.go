package lpstore

import (
	"io"
	"os"

	"livepoints/internal/livepoint"
)

// init teaches livepoint.OpenSource (and through it RunFile and
// RunMatchedFile) the v2 format: any package that imports lpstore makes
// every library path transparently accept sharded libraries.
func init() {
	livepoint.RegisterFormat(func(path string) (livepoint.Source, bool, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, false, nil // let the fallback opener surface the error
		}
		var magic [8]byte
		_, rerr := io.ReadFull(f, magic[:])
		f.Close()
		if rerr != nil || string(magic[:]) != fileMagic {
			return nil, false, nil
		}
		st, err := Open(path)
		if err != nil {
			return nil, true, err
		}
		src := st.Source().(*storeSource)
		src.ownStore = true
		return src, true, nil
	})
}
