package lpstore

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"os"

	"livepoints/internal/livepoint"
)

// WriteOpts configures v2 library writing.
type WriteOpts struct {
	// ShardPoints caps the number of points per shard (default
	// DefaultShardPoints). Smaller shards raise random-access and parallel
	// granularity; larger shards compress better.
	ShardPoints int
}

func (o WriteOpts) shardPoints() int {
	if o.ShardPoints <= 0 {
		return DefaultShardPoints
	}
	return o.ShardPoints
}

// buildImage compresses blobs into the in-memory shape of a v2 library:
// consecutive runs of ShardPoints blobs become one gzip stream each, and
// the read order is the identity (callers shuffle blobs beforehand, or
// Shuffle the index afterwards). Blob order is therefore exactly the read
// order a v1 file with the same blobs would have — migration preserves
// results bit for bit.
func buildImage(meta livepoint.Meta, blobs [][]byte, opts WriteOpts) (*Store, error) {
	meta.Count = len(blobs)
	st := &Store{meta: meta}
	per := opts.shardPoints()
	dataOff := int64(len(fileMagic))
	for start := 0; start < len(blobs); start += per {
		end := start + per
		if end > len(blobs) {
			end = len(blobs)
		}
		var comp bytes.Buffer
		gz := gzip.NewWriter(&comp)
		var off int64
		for i := start; i < end; i++ {
			if _, err := gz.Write(blobs[i]); err != nil {
				return nil, fmt.Errorf("lpstore: compressing shard %d: %w", len(st.shards), err)
			}
			st.points = append(st.points, pointInfo{shard: len(st.shards), off: off, len: len(blobs[i])})
			st.order = append(st.order, uint32(i))
			off += int64(len(blobs[i]))
			st.uncompressed += int64(len(blobs[i]))
		}
		if err := gz.Close(); err != nil {
			return nil, err
		}
		st.mem = append(st.mem, comp.Bytes())
		st.shards = append(st.shards, shardInfo{
			dataOff:   dataOff,
			compLen:   int64(comp.Len()),
			uncompLen: off,
			points:    end - start,
		})
		dataOff += int64(comp.Len())
	}
	return st, nil
}

// Write creates a v2 library file at path from pre-encoded points, in the
// given (read) order.
func Write(path string, meta livepoint.Meta, blobs [][]byte, opts WriteOpts) (Info, error) {
	st, err := buildImage(meta, blobs, opts)
	if err != nil {
		return Info{}, err
	}
	f, err := os.Create(path)
	if err != nil {
		return Info{}, err
	}
	defer f.Close()
	if _, err := f.WriteString(fileMagic); err != nil {
		return Info{}, err
	}
	for _, shard := range st.mem {
		if _, err := f.Write(shard); err != nil {
			return Info{}, err
		}
	}
	if _, err := f.Write(appendTrailer(st.encodeIndex())); err != nil {
		return Info{}, err
	}
	if err := f.Sync(); err != nil {
		return Info{}, err
	}
	fi, err := f.Stat()
	if err != nil {
		return Info{}, err
	}
	return Info{
		Points:            len(blobs),
		Shards:            len(st.shards),
		CompressedBytes:   fi.Size(),
		UncompressedBytes: st.uncompressed,
	}, nil
}

// Migrate converts a v1 sequential library into a v2 sharded one,
// preserving metadata and read order: sequential reads of dst yield the
// same points in the same order as src, so experiment results are
// bit-equal across the migration.
func Migrate(src, dst string, opts WriteOpts) (Info, error) {
	meta, blobs, err := livepoint.ReadAllBlobs(src)
	if err != nil {
		return Info{}, fmt.Errorf("lpstore: migrating %s: %w", src, err)
	}
	return Write(dst, meta, blobs, opts)
}

// OpenAny opens a library file of either format as a Store. v2 files open
// directly; v1 files are migrated in memory — the migration reader — so
// existing .lplib libraries serve and random-access like native v2 stores
// (at the one-time cost of reading the stream on open).
func OpenAny(path string) (*Store, error) {
	v2, err := IsV2(path)
	if err != nil {
		return nil, err
	}
	if v2 {
		return Open(path)
	}
	meta, blobs, err := livepoint.ReadAllBlobs(path)
	if err != nil {
		return nil, fmt.Errorf("lpstore: opening v1 library %s: %w", path, err)
	}
	st, err := buildImage(meta, blobs, WriteOpts{})
	if err != nil {
		return nil, err
	}
	st.path = path
	return st, nil
}
