package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter %d, want 5", c.Value())
	}
	// Same (name, labels) resolves to the same instrument.
	if r.Counter("reqs_total", "requests") != c {
		t.Fatal("counter lookup not idempotent")
	}

	g := r.Gauge("temp", "temperature")
	g.Set(2.5)
	g.Add(-0.5)
	if g.Value() != 2.0 {
		t.Fatalf("gauge %v, want 2", g.Value())
	}

	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1})
	for _, v := range []float64{0.05, 0.1, 0.5, 3} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("histogram count %d, want 4", h.Count())
	}
	if math.Abs(h.Sum()-3.65) > 1e-12 {
		t.Fatalf("histogram sum %v, want 3.65", h.Sum())
	}
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "hits by endpoint", "endpoint", "GET /v1/stat").Add(3)
	r.Counter("hits_total", "hits by endpoint", "endpoint", "GET /v1/points").Inc()
	r.Gauge("active", "active leases").Set(2)
	r.GaugeFunc("progress", "stopping progress", func() float64 { return 0.25 })
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1}, "endpoint", "GET /v1/stat")
	h.Observe(0.05)
	h.Observe(0.5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `# HELP hits_total hits by endpoint
# TYPE hits_total counter
hits_total{endpoint="GET /v1/stat"} 3
hits_total{endpoint="GET /v1/points"} 1
# HELP active active leases
# TYPE active gauge
active 2
# HELP progress stopping progress
# TYPE progress gauge
progress 0.25
# HELP lat_seconds latency
# TYPE lat_seconds histogram
lat_seconds_bucket{endpoint="GET /v1/stat",le="0.1"} 1
lat_seconds_bucket{endpoint="GET /v1/stat",le="1"} 2
lat_seconds_bucket{endpoint="GET /v1/stat",le="+Inf"} 2
lat_seconds_sum{endpoint="GET /v1/stat"} 0.55
lat_seconds_count{endpoint="GET /v1/stat"} 2
`
	if got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "c", "path", `a"b\c`+"\n").Inc()
	var b strings.Builder
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), `c_total{path="a\"b\\c\n"} 1`) {
		t.Fatalf("unescaped labels:\n%s", b.String())
	}
}

func TestGaugeFuncReplace(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("p", "p", func() float64 { return 1 })
	r.GaugeFunc("p", "p", func() float64 { return 2 })
	var b strings.Builder
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), "p 2\n") {
		t.Fatalf("gauge func not replaced:\n%s", b.String())
	}
}

func TestTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on counter re-registered as gauge")
		}
	}()
	r.Gauge("x", "x")
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("n_total", "n").Inc()
				r.Gauge("g", "g").Add(1)
				r.Histogram("h", "h", []float64{0.5}).Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if n := r.Counter("n_total", "n").Value(); n != 8000 {
		t.Fatalf("counter %d, want 8000", n)
	}
	if g := r.Gauge("g", "g").Value(); g != 8000 {
		t.Fatalf("gauge %v, want 8000", g)
	}
	if c := r.Histogram("h", "h", []float64{0.5}).Count(); c != 8000 {
		t.Fatalf("histogram %d, want 8000", c)
	}
}

func TestLoggerLevelsAndFormat(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, LevelInfo, "worker")
	l.now = func() time.Time { return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC) }
	l.Debug("hidden")
	l.Info("progress", "points", 128, "rate", 42.5, "eta", 90*time.Second, "note", "two words")
	got := b.String()
	want := `ts=2026-08-08T12:00:00Z level=info component=worker msg=progress points=128 rate=42.5 eta=1m30s note="two words"` + "\n"
	if got != want {
		t.Fatalf("log line:\ngot:  %q\nwant: %q", got, want)
	}
}

func TestNilLoggerIsSafe(t *testing.T) {
	var l *Logger
	l.Info("nothing happens", "k", 1)
	l.Error("still nothing")
}
