package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Level orders log severities.
type Level int32

// Severity levels, least to most severe.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return fmt.Sprintf("level(%d)", int32(l))
}

// Logger emits structured logfmt lines
// (ts=... level=... component=... msg=... k=v ...) at or above a minimum
// level. A nil *Logger discards everything, so optional logging hooks
// need no guards. Safe for concurrent use.
type Logger struct {
	mu        sync.Mutex
	w         io.Writer
	min       Level
	component string
	now       func() time.Time // test seam
}

// NewLogger returns a logger writing lines at or above min to w,
// attributing them to component.
func NewLogger(w io.Writer, min Level, component string) *Logger {
	return &Logger{w: w, min: min, component: component, now: time.Now}
}

// Debug logs at debug level; kv are alternating key, value pairs.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at info level.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at warn level.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at error level.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(lv Level, msg string, kv []any) {
	if l == nil || lv < l.min {
		return
	}
	var b strings.Builder
	b.WriteString("ts=")
	b.WriteString(l.now().UTC().Format(time.RFC3339))
	b.WriteString(" level=")
	b.WriteString(lv.String())
	if l.component != "" {
		b.WriteString(" component=")
		b.WriteString(quoteIfNeeded(l.component))
	}
	b.WriteString(" msg=")
	b.WriteString(quoteIfNeeded(msg))
	for i := 0; i+1 < len(kv); i += 2 {
		b.WriteByte(' ')
		fmt.Fprintf(&b, "%v", kv[i])
		b.WriteByte('=')
		b.WriteString(quoteIfNeeded(formatAny(kv[i+1])))
	}
	b.WriteByte('\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	io.WriteString(l.w, b.String())
}

func formatAny(v any) string {
	switch x := v.(type) {
	case float64:
		return fmt.Sprintf("%.4g", x)
	case time.Duration:
		return x.Round(time.Millisecond).String()
	default:
		return fmt.Sprintf("%v", x)
	}
}

func quoteIfNeeded(s string) string {
	if s == "" || strings.ContainsAny(s, " \"=\n") {
		return fmt.Sprintf("%q", s)
	}
	return s
}
