// Package obs is the repository's observability layer: a dependency-free
// metrics registry with Prometheus text-format exposition, plus a small
// leveled structured logger.
//
// The paper's online-reporting claim (§6.1) is at heart an observability
// claim — run-time decisions (stop now? add workers?) need live progress
// signals — so every serving and cluster layer registers its counters,
// gauges, and latency histograms here and lpserve exposes them on
// GET /metrics. Metrics are identified by name plus an ordered label
// list; looking up the same (name, labels) pair twice returns the same
// instrument, so hot paths may resolve metrics per call without keeping
// references.
//
// All instruments are safe for concurrent use: counters and gauges are
// single atomics, histograms are fixed-bucket arrays of atomics (no locks
// on the observe path).
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (atomically, via CAS).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed cumulative buckets
// (Prometheus-style: bucket i counts observations ≤ bounds[i], plus an
// implicit +Inf bucket) and tracks their sum.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last is +Inf
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// DefSeconds is the default latency bucket layout (seconds), spanning
// sub-millisecond localhost hits to multi-second shard pulls.
var DefSeconds = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10}

// Observe folds one observation in.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// metric is one registered series: exactly one of the value fields is set.
type metric struct {
	labels  string // rendered {k="v",...}, "" when unlabeled
	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// family groups the series sharing one metric name.
type family struct {
	name   string
	help   string
	typ    string // "counter", "gauge", "histogram"
	series []*metric
	byKey  map[string]*metric
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. The zero value is not usable; call NewRegistry.
// Default is the process-wide registry the serving and cluster layers use
// unless handed their own.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// Default is the process-wide registry.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// family returns (creating if needed) the family for name, panicking on a
// type conflict — re-registering a name as a different metric type is a
// programming error, not a runtime condition.
func (r *Registry) family(name, help, typ string) *family {
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, byKey: make(map[string]*metric)}
		r.byName[name] = f
		r.families = append(r.families, f)
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.typ, typ))
	}
	return f
}

// renderLabels formats alternating key, value pairs as {k="v",...},
// escaping backslashes, quotes, and newlines per the exposition format.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("obs: odd label list (want key, value pairs)")
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// Counter returns the counter for (name, labels), registering it on first
// use. labels are alternating key, value pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "counter")
	key := renderLabels(labels)
	if m, ok := f.byKey[key]; ok {
		return m.counter
	}
	m := &metric{labels: key, counter: &Counter{}}
	f.byKey[key] = m
	f.series = append(f.series, m)
	return m.counter
}

// Gauge returns the gauge for (name, labels), registering it on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "gauge")
	key := renderLabels(labels)
	if m, ok := f.byKey[key]; ok {
		return m.gauge
	}
	m := &metric{labels: key, gauge: &Gauge{}}
	f.byKey[key] = m
	f.series = append(f.series, m)
	return m.gauge
}

// GaugeFunc registers a gauge whose value is computed at scrape time —
// the natural shape for state already guarded by its owner's lock (lease
// counts, stopping-rule progress). Re-registering the same (name, labels)
// replaces the callback (last owner wins), so successive runs in one
// process export their own state.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "gauge")
	key := renderLabels(labels)
	if m, ok := f.byKey[key]; ok {
		m.gaugeFn = fn
		m.gauge = nil
		return
	}
	m := &metric{labels: key, gaugeFn: fn}
	f.byKey[key] = m
	f.series = append(f.series, m)
}

// Histogram returns the histogram for (name, labels), registering it with
// the given bucket upper bounds (ascending; +Inf implicit) on first use.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "histogram")
	key := renderLabels(labels)
	if m, ok := f.byKey[key]; ok {
		return m.hist
	}
	h := &Histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}
	m := &metric{labels: key, hist: h}
	f.byKey[key] = m
	f.series = append(f.series, m)
	return m.hist
}

// formatValue renders a float the way Prometheus expects.
func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// joinLabels merges a rendered label set with one extra pair (for
// histogram le labels).
func joinLabels(rendered, key, val string) string {
	extra := key + `="` + val + `"`
	if rendered == "" {
		return "{" + extra + "}"
	}
	return rendered[:len(rendered)-1] + "," + extra + "}"
}

// snapshot is one series captured for rendering outside the registry
// lock. Gauge callbacks routinely take their owner's lock (a cluster
// coordinator's, say) while that owner resolves counters under ours, so
// invoking them with r.mu held would be a lock-order inversion.
type snapshot struct {
	name, help, typ string
	labels          string
	counter         *Counter
	gauge           *Gauge
	gaugeFn         func() float64
	hist            *Histogram
}

// WritePrometheus renders every registered family in text exposition
// format (version 0.0.4), in registration order. Gauge callbacks run
// after the registry lock is released.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	var snaps []snapshot
	for _, f := range r.families {
		for _, m := range f.series {
			snaps = append(snaps, snapshot{
				name: f.name, help: f.help, typ: f.typ, labels: m.labels,
				counter: m.counter, gauge: m.gauge, gaugeFn: m.gaugeFn, hist: m.hist,
			})
		}
	}
	r.mu.Unlock()

	var b strings.Builder
	lastName := ""
	for _, s := range snaps {
		if s.name != lastName {
			fmt.Fprintf(&b, "# HELP %s %s\n", s.name, s.help)
			fmt.Fprintf(&b, "# TYPE %s %s\n", s.name, s.typ)
			lastName = s.name
		}
		switch {
		case s.counter != nil:
			fmt.Fprintf(&b, "%s%s %d\n", s.name, s.labels, s.counter.Value())
		case s.gauge != nil:
			fmt.Fprintf(&b, "%s%s %s\n", s.name, s.labels, formatValue(s.gauge.Value()))
		case s.gaugeFn != nil:
			fmt.Fprintf(&b, "%s%s %s\n", s.name, s.labels, formatValue(s.gaugeFn()))
		case s.hist != nil:
			var cum uint64
			for i, bound := range s.hist.bounds {
				cum += s.hist.buckets[i].Load()
				fmt.Fprintf(&b, "%s_bucket%s %d\n", s.name, joinLabels(s.labels, "le", formatValue(bound)), cum)
			}
			cum += s.hist.buckets[len(s.hist.bounds)].Load()
			fmt.Fprintf(&b, "%s_bucket%s %d\n", s.name, joinLabels(s.labels, "le", "+Inf"), cum)
			fmt.Fprintf(&b, "%s_sum%s %s\n", s.name, s.labels, formatValue(s.hist.Sum()))
			fmt.Fprintf(&b, "%s_count%s %d\n", s.name, s.labels, s.hist.Count())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
