package lpcluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"livepoints/internal/lpserve"
)

// TestWorkerFatalOnGarbageBody: a 2xx response whose JSON body is
// garbage must kill the worker, not park it in an infinite reconnect
// loop. Regression for transient() classifying every non-StatusError —
// including decode errors — as a retriable outage: a systematically
// corrupt coordinator put workers into reconnect-forever, and the only
// observable symptom was a fleet that never made progress.
func TestWorkerFatalOnGarbageBody(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, "\x00\x00 this is not json")
	}))
	defer ts.Close()

	cl := lpserve.New(ts.URL)
	cl.Timeout = 2 * time.Second
	cl.Retry = lpserve.RetryPolicy{Max: 1, Base: time.Millisecond, Cap: 2 * time.Millisecond}
	defer cl.CloseIdle()

	w := NewWorker("garbage", cl)
	w.ReconnectBase = time.Millisecond
	w.ReconnectCap = 2 * time.Millisecond

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("worker exited nil on a garbage-body coordinator")
		}
		var pe *lpserve.ProtocolError
		if !errors.As(err, &pe) {
			t.Fatalf("worker death not classified as a protocol error: %v", err)
		}
		if ctx.Err() != nil {
			t.Fatal("worker only exited because the test context expired: reconnect loop")
		}
	case <-time.After(8 * time.Second):
		t.Fatal("worker still reconnecting after 8s: garbage body treated as an outage")
	}
}

// TestWorkerRidesOutOutage: the complementary direction — transport
// failures must NOT be fatal. A worker pointed at a dead address keeps
// backing off until the context ends; it never gives up on an outage.
func TestWorkerRidesOutOutage(t *testing.T) {
	// A listener that is closed immediately: connection refused from a
	// port nothing will reuse within the test.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	cl := lpserve.New("http://" + addr)
	cl.Timeout = 100 * time.Millisecond
	cl.Retry = lpserve.RetryPolicy{Max: 0, Base: time.Millisecond, Cap: time.Millisecond}
	defer cl.CloseIdle()

	w := NewWorker("patient", cl)
	w.ReconnectBase = time.Millisecond
	w.ReconnectCap = 5 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if err := w.Run(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("worker gave up on an outage: %v (want to outlast the context)", err)
	}
	if w.Reconnects == 0 {
		t.Fatal("worker never entered the reconnect path")
	}
}

// TestTransientClassification pins the error taxonomy transient()
// implements: outages are worth outwaiting, server verdicts and protocol
// breakage are not.
func TestTransientClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{&lpserve.StatusError{Code: 503}, true},
		{&lpserve.StatusError{Code: 409}, false},
		{&lpserve.StatusError{Code: 400}, false},
		{&lpserve.TransportError{Err: errors.New("connection reset")}, true},
		{&lpserve.ProtocolError{Err: errors.New("invalid character")}, false},
		{fmt.Errorf("wrapped: %w", &lpserve.ProtocolError{Err: errors.New("bad der")}), false},
		{io.ErrUnexpectedEOF, true},
		{io.EOF, true},
		{context.DeadlineExceeded, true},
		{&net.OpError{Op: "dial", Err: errors.New("refused")}, true},
		{errors.New("anything unclassified"), false},
	}
	for _, tc := range cases {
		if got := transient(tc.err); got != tc.want {
			t.Errorf("transient(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

// TestWorkerReconnectBackoffOverride: the tunable schedule exists so
// soaks are not sleep-dominated; zero values must keep the production
// defaults.
func TestWorkerReconnectBackoffOverride(t *testing.T) {
	if reconnectBase < 100*time.Millisecond {
		t.Fatalf("production reconnectBase %v suspiciously small", reconnectBase)
	}
	// A worker with a shrunken schedule rides out many outage rounds in
	// well under one production backoff step.
	l, _ := net.Listen("tcp", "127.0.0.1:0")
	addr := l.Addr().String()
	l.Close()
	cl := lpserve.New("http://" + addr)
	cl.Timeout = 50 * time.Millisecond
	cl.Retry = lpserve.RetryPolicy{Max: 0, Base: time.Millisecond, Cap: time.Millisecond}
	defer cl.CloseIdle()
	w := NewWorker("fast", cl)
	w.ReconnectBase = time.Millisecond
	w.ReconnectCap = 2 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	w.Run(ctx)
	if w.Reconnects == 0 {
		t.Fatal("no reconnect attempts despite a dead coordinator")
	}
}
