package lpcluster

import (
	"encoding/json"
	"errors"
	"net/http"

	"livepoints/internal/lpserve"
)

// Mount registers the cluster endpoints on an lpserve server, beside the
// store's streaming endpoints:
//
//	POST /v1/leases   acquire the next lease (or wait/done verdict)
//	POST /v1/results  post a completed lease's partial statistics
//	GET  /v1/run      run spec + progress + final fleet-wide result
//
// Workers fetch leased bytes through the server's existing /v1/shards and
// /v1/points endpoints, so one listener serves both the library and the
// coordination protocol.
func (c *Coordinator) Mount(s *lpserve.Server) {
	s.Extend("POST /v1/leases", c.handleLeases)
	s.Extend("POST /v1/results", c.handleResults)
	s.Extend("GET /v1/run", c.handleRun)
}

// writeJSON marshals before touching the ResponseWriter: encoding
// straight into it commits a 200 status first, so a marshal failure
// (e.g. a non-finite float) would surface to clients as an empty body
// and a bare decode EOF rather than an explanation.
func writeJSON(w http.ResponseWriter, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, "encoding response: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(body, '\n'))
}

func (c *Coordinator) handleLeases(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad lease request: "+err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, c.Acquire(req.Worker))
}

func (c *Coordinator) handleResults(w http.ResponseWriter, r *http.Request) {
	var res Result
	if err := json.NewDecoder(r.Body).Decode(&res); err != nil {
		http.Error(w, "bad result: "+err.Error(), http.StatusBadRequest)
		return
	}
	resp, err := c.Result(&res)
	switch {
	case errors.Is(err, ErrLeaseGone):
		http.Error(w, err.Error(), http.StatusGone)
	case errors.Is(err, ErrDuplicate):
		http.Error(w, err.Error(), http.StatusConflict)
	case errors.Is(err, ErrJournal):
		// The fold was refused because the write-ahead append failed;
		// 503 is retryable, so the worker re-posts rather than discards.
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case err != nil:
		http.Error(w, err.Error(), http.StatusBadRequest)
	default:
		writeJSON(w, resp)
	}
}

func (c *Coordinator) handleRun(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, c.State())
}
