// Chaos soaks: full cluster rounds (coordinator + worker fleet over
// localhost HTTP) under deterministic seeded fault schedules, asserting
// after every round that no fault changed the answer, double-folded an
// observation, or leaked a goroutine. External test package: faultinject
// imports lpcluster, so these tests cannot live inside it.
package lpcluster_test

import (
	"context"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"livepoints/internal/faultinject"
	"livepoints/internal/lpcluster"
	"livepoints/internal/obs"
)

// soakLibrary lazily builds the shared simulatable library for the soak
// tests (one full functional pass, so once per process).
var (
	soakLibOnce sync.Once
	soakLibPath string
	soakLibErr  error
)

func soakLibrary(t *testing.T) string {
	t.Helper()
	soakLibOnce.Do(func() {
		dir, err := os.MkdirTemp("", "lpsoak")
		if err != nil {
			soakLibErr = err
			return
		}
		// Leaks for the process lifetime; every soak test shares it.
		soakLibPath, soakLibErr = faultinject.GenLibrary(dir)
	})
	if soakLibErr != nil {
		t.Fatal(soakLibErr)
	}
	return soakLibPath
}

// seedCount returns how many schedules a sweep runs: the LPSOAK_SEEDS
// env var when set (CI bounds the race job with it), else a -short-aware
// default.
func seedCount(t *testing.T, def int) int {
	if v := os.Getenv("LPSOAK_SEEDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("bad LPSOAK_SEEDS %q", v)
		}
		return n
	}
	if testing.Short() && def > 4 {
		return 4
	}
	return def
}

func seedRange(base uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = base + uint64(i)
	}
	return out
}

func soakLog(t *testing.T) *obs.Logger {
	if testing.Verbose() {
		return obs.NewLogger(os.Stderr, obs.LevelInfo, "soak")
	}
	return nil
}

// runSoak executes one sweep and applies the cross-seed assertions.
func runSoak(t *testing.T, opt faultinject.SoakOptions) *faultinject.Report {
	t.Helper()
	opt.Library = soakLibrary(t)
	opt.Log = soakLog(t)
	// Generous: race-instrumented sweeps on small machines run many
	// times slower than uninstrumented ones (pair with go test -timeout).
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Minute)
	defer cancel()
	rep, err := faultinject.Soak(ctx, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults == 0 {
		t.Fatal("sweep injected zero faults; the harness is not exercising anything")
	}
	return rep
}

// TestSoakAbsoluteTransport is the tentpole acceptance sweep: absolute
// whole-library rounds under client-side (RoundTripper) injection, each
// bit-equal to the undisturbed local fold.
func TestSoakAbsoluteTransport(t *testing.T) {
	n := seedCount(t, 12)
	runSoak(t, faultinject.SoakOptions{Seeds: seedRange(0xA000, n)})
}

// TestSoakMatchedTransport: the same sweep in §6.2 matched-pair mode.
func TestSoakMatchedTransport(t *testing.T) {
	n := seedCount(t, 12)
	runSoak(t, faultinject.SoakOptions{Seeds: seedRange(0xB000, n), Mode: lpcluster.ModeMatched})
}

// TestSoakAbsoluteProxy: server-side injection — the coordinator's own
// replies are damaged rather than the worker's view of the network.
func TestSoakAbsoluteProxy(t *testing.T) {
	n := (seedCount(t, 12) + 1) / 2
	runSoak(t, faultinject.SoakOptions{Seeds: seedRange(0xC000, n), Proxy: true})
}

// TestSoakMatchedProxy completes the mode × injection-side matrix.
func TestSoakMatchedProxy(t *testing.T) {
	n := (seedCount(t, 12) + 1) / 2
	runSoak(t, faultinject.SoakOptions{Seeds: seedRange(0xD000, n), Mode: lpcluster.ModeMatched, Proxy: true})
}

// TestSoakOnlineStopping: §6.1 early-stopping rounds under faults. No
// bit-equality here — the stop point legitimately depends on fold order
// — but the accounting (folded == done) and statistical contracts must
// hold, and nothing may leak.
func TestSoakOnlineStopping(t *testing.T) {
	n := seedCount(t, 8)
	runSoak(t, faultinject.SoakOptions{Seeds: seedRange(0xE000, n), RelErr: 0.5})
}

// TestSoakPinnedRegressions pins the exact schedules that exposed each
// harness-found bug, so the fixes stay regression-tested independently
// of how the sweep ranges above evolve:
//
//   - seeds 0xA000–0xA003 (absolute/transport) drive corrupt and
//     truncated /v1/points bodies through the CRC-verify-and-refetch
//     path (before PointsCRCHeader, a flipped body byte decoded into a
//     plausible point and folded silently wrong data), plus corrupt
//     control-plane JSON through the fatal-ProtocolError path (before
//     the transient() fix, an infinite reconnect loop);
//   - seeds 0xD000–0xD001 (matched/proxy) cover duplicated and
//     post-processing-severed POST /v1/results deliveries against the
//     coordinator's dedup, where a refold would corrupt the pairing.
func TestSoakPinnedRegressions(t *testing.T) {
	runSoak(t, faultinject.SoakOptions{Seeds: seedRange(0xA000, 4)})
	runSoak(t, faultinject.SoakOptions{Seeds: seedRange(0xD000, 2), Mode: lpcluster.ModeMatched, Proxy: true})
}
