package lpcluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"livepoints/internal/obs"
)

// The run journal is the coordinator's write-ahead log: one JSON record
// per line, fsynced before the coordinator's in-memory state advances, so
// a coordinator that is SIGKILLed mid-run can be restarted from the
// journal with nothing lost and nothing double-counted.
//
// Record types (the "t" field):
//
//	run     written once at creation: the resolved RunSpec plus the
//	        library's identity (benchmark, point count) so a resume
//	        against the wrong store or the wrong flags is refused.
//	epoch   appended once per restart. Leases carry the epoch of the
//	        incarnation that issued them; a result posted against a
//	        previous incarnation's lease is rejected with 410 (its points
//	        were re-leased under the new epoch, so folding the stale copy
//	        would double-count).
//	result  appended for every accepted lease result, *before* it is
//	        folded: the lease's coverage (kind + shard or start/count —
//	        positions are re-derived from the store on replay) and the
//	        per-point CPIs in lease read order, plus the worker's
//	        aggregated counters and timings.
//
// Replay re-executes the result records in journal order — the original
// acceptance order — through the same fold path Result uses, so the
// resumed coordinator's running estimate is bit-identical to the state
// the crashed incarnation had journaled. JSON round-trips float64
// exactly, so no precision is lost on the way through the log.
//
// A crash can tear the final record (partial line, no trailing
// newline, or a torn JSON object). Replay stops at the first record that
// does not parse and truncates the file back to the last good byte:
// the torn record was never acknowledged to its worker, so its lease
// simply reappears as pending work.

// Journal record types.
const (
	recRun    = "run"
	recEpoch  = "epoch"
	recResult = "result"
)

// journalRecord is one line of the run journal. Exactly the fields for
// its type are populated.
type journalRecord struct {
	T string `json:"t"`

	// recRun
	Spec      *RunSpec `json:"spec,omitempty"`
	Benchmark string   `json:"benchmark,omitempty"`
	Points    int      `json:"points,omitempty"`

	// recEpoch
	Epoch uint64 `json:"epoch,omitempty"`

	// recResult — lease coverage plus the posted partial.
	Kind     string    `json:"kind,omitempty"`
	Shard    int       `json:"shard"`
	Start    int       `json:"start"`
	Count    int       `json:"count,omitempty"`
	CPIs     []float64 `json:"cpis,omitempty"`
	BaseCPIs []float64 `json:"baseCpis,omitempty"`
	ExpCPIs  []float64 `json:"expCpis,omitempty"`

	UnknownFetches uint64 `json:"unknownFetches,omitempty"`
	UnknownLoads   uint64 `json:"unknownLoads,omitempty"`
	CaptureErrors  uint64 `json:"captureErrors,omitempty"`
	LoadMillis     int64  `json:"loadMillis,omitempty"`
	SimMillis      int64  `json:"simMillis,omitempty"`
}

// Journal is an append-only, fsync-per-record run log.
type Journal struct {
	f    *os.File
	path string

	mAppends  *obs.Counter
	mBytes    *obs.Counter
	mReplayed *obs.Counter
	hFsync    *obs.Histogram
}

// openJournal opens (or creates) the journal at path, reads every intact
// record, truncates a torn tail, and leaves the file positioned for
// appending.
func openJournal(path string, reg *obs.Registry) (*Journal, []journalRecord, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("lpcluster: opening journal: %w", err)
	}
	recs, good, err := readRecords(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	// Drop a torn tail (a record half-written when the previous
	// incarnation died) so future appends produce a clean log.
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("lpcluster: truncating torn journal tail: %w", err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("lpcluster: seeking journal end: %w", err)
	}
	j := &Journal{
		f:         f,
		path:      path,
		mAppends:  reg.Counter("lpcluster_journal_appends_total", "Records appended to the run journal."),
		mBytes:    reg.Counter("lpcluster_journal_bytes_total", "Bytes appended to the run journal."),
		mReplayed: reg.Counter("lpcluster_journal_replayed_results_total", "Result records refolded from the journal on resume."),
		hFsync:    reg.Histogram("lpcluster_journal_fsync_seconds", "Latency of the per-record append+fsync.", obs.DefSeconds),
	}
	return j, recs, nil
}

// readRecords decodes journal lines until EOF or the first record that
// does not parse, returning the intact records and the byte offset of
// the last good one.
func readRecords(f *os.File) ([]journalRecord, int64, error) {
	br := bufio.NewReaderSize(f, 1<<20)
	var recs []journalRecord
	var good int64
	for {
		line, err := br.ReadBytes('\n')
		if err == io.EOF {
			// A trailing fragment with no newline is a torn append.
			return recs, good, nil
		}
		if err != nil {
			return nil, 0, fmt.Errorf("lpcluster: reading journal: %w", err)
		}
		var rec journalRecord
		if json.Unmarshal(line, &rec) != nil || rec.T == "" {
			// Torn or corrupt record: everything from here on was never
			// acknowledged; replay stops at the last good byte.
			return recs, good, nil
		}
		recs = append(recs, rec)
		good += int64(len(line))
	}
}

// append writes one record and fsyncs before returning, upholding the
// write-ahead contract: a record the coordinator acts on is on disk.
func (j *Journal) append(rec journalRecord) error {
	body, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("lpcluster: encoding journal record: %w", err)
	}
	body = append(body, '\n')
	t0 := time.Now()
	if _, err := j.f.Write(body); err != nil {
		return fmt.Errorf("lpcluster: appending journal record: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("lpcluster: syncing journal: %w", err)
	}
	j.hFsync.Observe(time.Since(t0).Seconds())
	j.mAppends.Inc()
	j.mBytes.Add(uint64(len(body)))
	return nil
}

// Close closes the journal file.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	return j.f.Close()
}
