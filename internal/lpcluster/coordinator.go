package lpcluster

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"livepoints/internal/lpserve"
	"livepoints/internal/lpstore"
	"livepoints/internal/obs"
	"livepoints/internal/sampling"
)

// Options tunes coordinator scheduling.
type Options struct {
	// LeasePoints is the range-lease size (default 64, matching the
	// client's ranged-fetch batch; clamped to lpserve.MaxBatchPoints so
	// a lease never exceeds what one /v1/points response may carry).
	LeasePoints int
	// LeaseTTL is how long a worker has to post a lease's result before
	// the points are reassigned (default 60s).
	LeaseTTL time.Duration
	// WaitHint is the retry delay suggested to workers when all
	// outstanding work is leased (default 200ms).
	WaitHint time.Duration
	// Metrics receives the coordinator's lease/progress series (default
	// obs.Default).
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.LeasePoints <= 0 {
		o.LeasePoints = 64
	}
	if o.LeasePoints > lpserve.MaxBatchPoints {
		// Workers fetch ranges in MaxBatchPoints chunks, so larger
		// leases would work — but they also ride one TTL, and a lease
		// the server cannot answer in one response buys nothing.
		o.LeasePoints = lpserve.MaxBatchPoints
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 60 * time.Second
	}
	if o.WaitHint <= 0 {
		o.WaitHint = 200 * time.Millisecond
	}
	if o.Metrics == nil {
		o.Metrics = obs.Default
	}
	return o
}

// Result rejections, surfaced over HTTP as 410, 409, and 503.
var (
	// ErrLeaseGone rejects a result for an unknown or reassigned lease —
	// the worker blew its deadline and the points now belong to a
	// replacement lease — or for a lease issued by a previous coordinator
	// incarnation (stale epoch). Folding either copy would double-count.
	ErrLeaseGone = errors.New("lpcluster: lease expired, reassigned, or from a previous run epoch")
	// ErrDuplicate rejects a second result for a completed lease.
	ErrDuplicate = errors.New("lpcluster: duplicate result for completed lease")
	// ErrJournal rejects a result whose write-ahead journal append
	// failed: the fold is refused rather than left unrecoverable. Served
	// as 503, which workers retry.
	ErrJournal = errors.New("lpcluster: journal append failed")
)

// lease is the coordinator's view of one assigned work unit.
type lease struct {
	id        uint64
	kind      string
	shard     int
	start     int
	positions []int // global read-order positions covered
	worker    string
	deadline  time.Time
	done      bool
	revoked   bool
}

// ClusterResult is the folded outcome of a cluster run.
type ClusterResult struct {
	Est             sampling.Estimate    // absolute mode
	MP              sampling.MatchedPair // matched mode
	Processed       int
	Stopped         bool // §6.1 rule fired before exhausting the library
	StoppedNoImpact bool
	Reassigned      int // leases reissued after expiry

	Elapsed  time.Duration // first lease issued -> run finished
	LoadTime time.Duration // summed across workers
	SimTime  time.Duration

	UnknownFetches uint64
	UnknownLoads   uint64
	CaptureErrors  uint64
}

// Coordinator owns one cluster sampling run over a live-point store. It
// is driven entirely by worker requests: Acquire hands out leases
// (reclaiming expired ones first), Result folds posted partials and
// applies the fleet-wide stopping rule. All methods are safe for
// concurrent use.
type Coordinator struct {
	st   *lpstore.Store
	spec RunSpec
	opt  Options

	// jr, when non-nil, is the run's write-ahead journal: the spec is
	// recorded at creation and every accepted result is appended (and
	// fsynced) before it is folded, so a killed coordinator resumes with
	// a bit-equal estimate. epoch counts incarnations; leases carry it
	// and stale-epoch results are rejected (ErrLeaseGone).
	jr    *Journal
	epoch uint64

	mu        sync.Mutex
	nextID    uint64
	nextPos   int // next unleased read-order position (range leases)
	nextShard int // next unleased shard (shard leases)
	leases    map[uint64]*lease
	pending   []*lease // reclaimed, awaiting reassignment
	active    int

	values   []float64 // per read-order position: CPI (absolute mode)
	baseVals []float64 // matched mode
	expVals  []float64
	done     int // positions completed

	online sampling.Estimate    // completion-order fold of partials
	mp     sampling.MatchedPair // matched-mode completion-order fold

	started    bool
	start      time.Time
	elapsed    time.Duration // sealed at finalize
	stopped    bool
	noImpact   bool
	finished   bool
	reassigned int
	doneCh     chan struct{}

	unknownFetches, unknownLoads, captureErrors uint64
	loadTime, simTime                           time.Duration

	// Counters are resolved once at construction so hot paths touch only
	// atomics while holding mu (registry lookups take the registry lock,
	// which scrapes also hold — never nest the two).
	mLeasesIssued, mReassigned, mPointsFolded *obs.Counter
	mRejGone, mRejDuplicate, mRejMismatch     *obs.Counter
	mRejEpoch, mStragglers                    *obs.Counter
}

// NewCoordinator validates the spec against the store and returns an idle
// coordinator; the run starts when the first worker asks for a lease.
func NewCoordinator(st *lpstore.Store, spec RunSpec, opt Options) (*Coordinator, error) {
	spec = spec.withDefaults()
	if _, _, err := spec.Configs(); err != nil {
		return nil, err
	}
	if spec.Mode != ModeAbsolute && spec.Mode != ModeMatched {
		return nil, fmt.Errorf("lpcluster: unknown run mode %q", spec.Mode)
	}
	stopping := spec.RelErr > 0 || (spec.Mode == ModeMatched && spec.NoImpactThreshold > 0)
	if stopping && !st.Meta().Shuffled {
		return nil, fmt.Errorf("lpcluster: online stopping requires a shuffled library (lpstore.Shuffle)")
	}
	c := &Coordinator{
		st:     st,
		spec:   spec,
		opt:    opt.withDefaults(),
		leases: make(map[uint64]*lease),
		doneCh: make(chan struct{}),
	}
	n := st.Count()
	if spec.Mode == ModeMatched {
		c.baseVals = make([]float64, n)
		c.expVals = make([]float64, n)
	} else {
		c.values = make([]float64, n)
	}
	c.registerMetrics()
	return c, nil
}

// registerMetrics wires the coordinator's gauges into its registry.
// Counters are resolved at their call sites; the scrape-time gauge
// callbacks read coordinator state under its lock (and reclaim expired
// leases first, so a scrape never shows a crashed worker as active).
// Re-registering replaces the previous run's callbacks, so the registry
// always reflects the newest coordinator in the process.
func (c *Coordinator) registerMetrics() {
	reg := c.opt.Metrics
	c.mLeasesIssued = reg.Counter("lpcluster_leases_issued_total", "Leases handed to workers, including reissues.")
	c.mReassigned = reg.Counter("lpcluster_leases_reassigned_total", "Leases revoked after TTL expiry and queued for reassignment.")
	c.mPointsFolded = reg.Counter("lpcluster_points_folded_total", "Per-point observations folded into the fleet-wide estimate.")
	c.mRejGone = reg.Counter("lpcluster_results_rejected_total", "Posted results refused, by reason.", "reason", "gone")
	c.mRejDuplicate = reg.Counter("lpcluster_results_rejected_total", "Posted results refused, by reason.", "reason", "duplicate")
	c.mRejMismatch = reg.Counter("lpcluster_results_rejected_total", "Posted results refused, by reason.", "reason", "mismatch")
	c.mRejEpoch = reg.Counter("lpcluster_results_rejected_total", "Posted results refused, by reason.", "reason", "epoch")
	c.mStragglers = reg.Counter("lpcluster_straggler_results_total", "Results that arrived after the run finished (acknowledged, not folded).")
	reg.Gauge("lpcluster_run_epoch", "Coordinator incarnation (0 = never restarted; bumps on every journal resume).").Set(float64(c.epoch))
	locked := func(f func() float64) func() float64 {
		return func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			c.reclaimLocked()
			return f()
		}
	}
	reg.GaugeFunc("lpcluster_leases_active", "Leases issued and not yet completed, expired, or revoked.",
		locked(func() float64 { return float64(c.active) }))
	reg.GaugeFunc("lpcluster_leases_pending", "Reclaimed leases awaiting reassignment.",
		locked(func() float64 { return float64(len(c.pending)) }))
	reg.GaugeFunc("lpcluster_points_done", "Read-order positions with a folded result.",
		locked(func() float64 { return float64(c.done) }))
	reg.GaugeFunc("lpcluster_progress_relci", "Current relative CI half-width of the fleet-wide estimate (0 until the fold starts).",
		locked(func() float64 { return c.relCILocked() }))
	reg.GaugeFunc("lpcluster_run_finished", "1 once the run has finished, else 0.",
		locked(func() float64 {
			if c.finished {
				return 1
			}
			return 0
		}))
	reg.Gauge("lpcluster_progress_target", "Online stopping target (relative error); 0 for whole-library runs.").Set(c.spec.RelErr)
	reg.Gauge("lpcluster_points_total", "Read-order positions in the library.").Set(float64(c.st.Count()))
}

// relCILocked is the live stopping-rule signal: the relative confidence
// half-width of whatever the fleet has folded so far (matched mode
// measures the delta CI against the baseline mean, the §6.2 yardstick).
// Before any fold the estimate is degenerate (RelCI is +Inf on a zero
// mean); that renders as 0 so the value stays JSON-encodable downstream.
func (c *Coordinator) relCILocked() float64 {
	if c.spec.Mode == ModeMatched {
		if c.mp.Base.Mean() == 0 {
			return 0
		}
		return finite(c.mp.DeltaCI(c.spec.Z) / math.Abs(c.mp.Base.Mean()))
	}
	return finite(c.online.RelCI(c.spec.Z))
}

// finite maps NaN and ±Inf to 0. The degenerate corners of an empty or
// single-observation estimate produce non-finite values, and
// encoding/json refuses those outright — the whole /v1/run body would be
// lost to report a confidence interval that carries no information.
func finite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// Spec returns the run specification (defaults resolved).
func (c *Coordinator) Spec() RunSpec { return c.spec }

// Epoch returns the coordinator's incarnation number: 0 for a fresh run,
// incremented on every journal resume.
func (c *Coordinator) Epoch() uint64 { return c.epoch }

// Done returns a channel closed when the run finishes.
func (c *Coordinator) Done() <-chan struct{} { return c.doneCh }

// Close releases the coordinator's journal, if any. The run itself needs
// no teardown.
func (c *Coordinator) Close() error { return c.jr.Close() }

// stoppingActive reports whether an online stopping rule constrains lease
// shape: truncated samples must be read-order prefixes (DESIGN §3.3), so
// shard-major leases are off the table.
func (c *Coordinator) stoppingActive() bool {
	return c.spec.RelErr > 0 || (c.spec.Mode == ModeMatched && c.spec.NoImpactThreshold > 0)
}

// reclaimLocked revokes expired leases and queues their points for
// reassignment under fresh lease ids. A late result for a revoked lease
// is rejected (ErrLeaseGone), so every position folds exactly once. After
// the run finishes nothing is reclaimed: outstanding leases resolve
// through the straggler path in Result instead.
func (c *Coordinator) reclaimLocked() {
	if c.finished {
		return
	}
	now := time.Now()
	for _, l := range c.leases {
		if l.done || l.revoked || now.Before(l.deadline) {
			continue
		}
		l.revoked = true
		c.active--
		c.reassigned++
		c.mReassigned.Inc()
		c.pending = append(c.pending, &lease{
			kind:      l.kind,
			shard:     l.shard,
			start:     l.start,
			positions: l.positions,
		})
	}
}

// Acquire hands worker its next lease: a reclaimed lease first, then
// fresh work (shard-major for whole-library runs, read-order ranges while
// a stopping rule is active). With everything leased but unfinished it
// returns a wait hint; with the run finished it returns done.
func (c *Coordinator) Acquire(worker string) LeaseResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reclaimLocked()
	if c.finished {
		return LeaseResponse{Done: true}
	}
	if !c.started {
		c.started = true
		c.start = time.Now()
	}

	var l *lease
	switch {
	case len(c.pending) > 0:
		l = c.pending[0]
		c.pending = c.pending[1:]
	case !c.stoppingActive() && c.st.NumShards() > 1:
		if c.nextShard < c.st.NumShards() {
			positions, err := c.st.ShardReadPositions(c.nextShard)
			if err != nil { // cannot happen on a validated store
				return LeaseResponse{Wait: true, WaitMillis: c.opt.WaitHint.Milliseconds()}
			}
			l = &lease{kind: LeaseShard, shard: c.nextShard, positions: positions}
			c.nextShard++
		}
	default:
		if c.nextPos < c.st.Count() {
			n := c.opt.LeasePoints
			if c.nextPos+n > c.st.Count() {
				n = c.st.Count() - c.nextPos
			}
			positions := make([]int, n)
			for i := range positions {
				positions[i] = c.nextPos + i
			}
			l = &lease{kind: LeaseRange, start: c.nextPos, positions: positions}
			c.nextPos += n
		}
	}
	if l == nil {
		return LeaseResponse{Wait: true, WaitMillis: c.opt.WaitHint.Milliseconds()}
	}

	c.nextID++
	l.id = c.nextID
	l.worker = worker
	l.deadline = time.Now().Add(c.opt.LeaseTTL)
	c.leases[l.id] = l
	c.active++
	c.mLeasesIssued.Inc()
	return LeaseResponse{Lease: &Lease{
		ID:        l.id,
		Epoch:     c.epoch,
		Kind:      l.kind,
		Shard:     l.shard,
		Start:     l.start,
		Count:     len(l.positions),
		Points:    len(l.positions),
		TTLMillis: c.opt.LeaseTTL.Milliseconds(),
	}}
}

// Result folds one completed lease's partial statistics. Partials fold in
// completion order; after each fold the §6.1 stopping rule is evaluated
// across everything the fleet has produced. Results for revoked leases —
// or leases issued by a previous coordinator incarnation (stale epoch) —
// are rejected with ErrLeaseGone (the replacement lease owns those points
// now), duplicates with ErrDuplicate. On a journaled run the result is
// appended to the write-ahead journal and fsynced before any state
// changes; an append failure refuses the fold (ErrJournal, 503) so the
// worker retries rather than the journal silently diverging.
func (c *Coordinator) Result(res *Result) (ResultResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if res.Epoch != c.epoch {
		// A lease from a previous incarnation: its points were re-leased
		// under the current epoch (or already refolded from the journal),
		// and its lease id may even collide with a fresh lease's — the
		// epoch check, not the id lookup, is what prevents the stale copy
		// from double-counting.
		c.mRejEpoch.Inc()
		return ResultResponse{}, ErrLeaseGone
	}
	l, ok := c.leases[res.LeaseID]
	if !ok || l.revoked {
		c.mRejGone.Inc()
		return ResultResponse{}, ErrLeaseGone
	}
	if l.done {
		c.mRejDuplicate.Inc()
		return ResultResponse{}, ErrDuplicate
	}
	if c.finished {
		// Straggler after the stopping rule fired: nothing to fold, but
		// the lease is resolved — it must leave the active count and a
		// second post must draw the usual 409, exactly as if the result
		// had landed in time.
		l.done = true
		c.active--
		c.mStragglers.Inc()
		return ResultResponse{Accepted: false, Done: true}, nil
	}
	n := len(l.positions)
	matched := c.spec.Mode == ModeMatched
	if matched {
		if len(res.BaseCPIs) != n || len(res.ExpCPIs) != n {
			c.mRejMismatch.Inc()
			return ResultResponse{}, fmt.Errorf("lpcluster: lease %d: got %d/%d paired CPIs, want %d",
				res.LeaseID, len(res.BaseCPIs), len(res.ExpCPIs), n)
		}
	} else if len(res.CPIs) != n {
		c.mRejMismatch.Inc()
		return ResultResponse{}, fmt.Errorf("lpcluster: lease %d: got %d CPIs, want %d", res.LeaseID, len(res.CPIs), n)
	}

	// Write-ahead: the accepted result reaches disk before it reaches the
	// estimate, so a crash at any later instant replays this fold.
	if c.jr != nil {
		rec := journalRecord{
			T: recResult, Kind: l.kind, Shard: l.shard, Start: l.start, Count: n,
			CPIs: res.CPIs, BaseCPIs: res.BaseCPIs, ExpCPIs: res.ExpCPIs,
			UnknownFetches: res.UnknownFetches, UnknownLoads: res.UnknownLoads,
			CaptureErrors: res.CaptureErrors, LoadMillis: res.LoadMillis, SimMillis: res.SimMillis,
		}
		if err := c.jr.append(rec); err != nil {
			return ResultResponse{}, fmt.Errorf("%w: %v", ErrJournal, err)
		}
	}

	l.done = true
	c.active--
	c.foldLocked(l.positions, res)
	return ResultResponse{Accepted: true, Done: c.finished}, nil
}

// foldLocked advances the run state by one accepted partial: per-point
// values recorded at their read-order positions (for the bit-equal
// whole-library refold), the partial merged into the fleet-wide running
// estimate (completion order), the §6.1 stopping rule evaluated, and the
// run finalized when it stops or the library is exhausted. Both the live
// Result path and journal replay run exactly this code, so a resumed
// coordinator's floats are the ones the crashed incarnation would have
// had.
func (c *Coordinator) foldLocked(positions []int, res *Result) {
	n := len(positions)
	c.mPointsFolded.Add(uint64(n))
	c.done += n
	c.unknownFetches += res.UnknownFetches
	c.unknownLoads += res.UnknownLoads
	c.captureErrors += res.CaptureErrors
	c.loadTime += time.Duration(res.LoadMillis) * time.Millisecond
	c.simTime += time.Duration(res.SimMillis) * time.Millisecond

	if c.spec.Mode == ModeMatched {
		var part sampling.MatchedPair
		for i, pos := range positions {
			c.baseVals[pos] = res.BaseCPIs[i]
			c.expVals[pos] = res.ExpCPIs[i]
			part.Add(res.BaseCPIs[i], res.ExpCPIs[i])
		}
		c.mp.Merge(part)
		// Mirror RunMatchedSource: the no-impact screen is checked first.
		if c.spec.NoImpactThreshold > 0 && c.mp.NoImpact(c.spec.Z, c.spec.NoImpactThreshold) {
			c.stopped, c.noImpact = true, true
		} else if c.spec.RelErr > 0 && c.mp.DeltaSatisfied(c.spec.Z, c.spec.RelErr) {
			c.stopped = true
		}
	} else {
		var part sampling.Estimate
		for i, pos := range positions {
			c.values[pos] = res.CPIs[i]
			part.Add(res.CPIs[i])
		}
		c.online.Merge(part)
		if c.spec.RelErr > 0 && c.online.Satisfied(c.spec.Z, c.spec.RelErr) {
			c.stopped = true
		}
	}

	if c.stopped || c.done == c.st.Count() {
		c.finalizeLocked()
	}
}

// finalizeLocked seals the run. A whole-library run refolds the recorded
// per-point values in read order, reproducing the serial local fold bit
// for bit; a stopped run keeps the completion-order estimate (any prefix
// of a shuffled library is a valid sub-sample, §6.1).
func (c *Coordinator) finalizeLocked() {
	if c.finished {
		return
	}
	c.finished = true
	if c.started {
		// A run finalized during journal replay never issued a lease in
		// this incarnation; its wall clock stays zero.
		c.elapsed = time.Since(c.start)
	}
	if !c.stopped {
		if c.spec.Mode == ModeMatched {
			var mp sampling.MatchedPair
			for i := range c.baseVals {
				mp.Add(c.baseVals[i], c.expVals[i])
			}
			c.mp = mp
		} else {
			var est sampling.Estimate
			for _, v := range c.values {
				est.Add(v)
			}
			c.online = est
		}
	}
	close(c.doneCh)
}

// NewJournaledCoordinator is NewCoordinator with a crash-safe run
// journal at path. An empty (or absent) journal starts a fresh run and
// records its spec; a non-empty journal resumes the run it records: every
// journaled result is refolded in its original acceptance order (the
// resumed estimate is bit-equal to the crashed incarnation's), unfolded
// points are queued for re-leasing, and the epoch is bumped so results
// for leases issued before the restart are rejected with 410 instead of
// double-counted. Resuming requires the same spec and the same library
// the journal records; anything else is refused.
func NewJournaledCoordinator(st *lpstore.Store, spec RunSpec, opt Options, path string) (*Coordinator, error) {
	opt = opt.withDefaults()
	jr, recs, err := openJournal(path, opt.Metrics)
	if err != nil {
		return nil, err
	}
	c, err := NewCoordinator(st, spec, opt)
	if err != nil {
		jr.Close()
		return nil, err
	}
	c.jr = jr
	if len(recs) == 0 {
		// Fresh run: journal the spec (and the library's identity) first,
		// so a restart knows what it is resuming.
		err := jr.append(journalRecord{
			T: recRun, Spec: &c.spec, Benchmark: st.Meta().Benchmark, Points: st.Count(),
		})
		if err != nil {
			jr.Close()
			return nil, err
		}
		return c, nil
	}
	if err := c.replay(recs); err != nil {
		jr.Close()
		return nil, err
	}
	// Announce the new incarnation. From here on only current-epoch
	// results fold.
	if err := jr.append(journalRecord{T: recEpoch, Epoch: c.epoch}); err != nil {
		jr.Close()
		return nil, err
	}
	opt.Metrics.Gauge("lpcluster_run_epoch", "").Set(float64(c.epoch))
	return c, nil
}

// replay rebuilds the coordinator's fold state from journal records and
// queues the still-unfolded coverage as pending leases.
func (c *Coordinator) replay(recs []journalRecord) error {
	run := recs[0]
	if run.T != recRun || run.Spec == nil {
		return fmt.Errorf("lpcluster: journal does not start with a run record")
	}
	if *run.Spec != c.spec {
		return fmt.Errorf("lpcluster: journal records a different run spec (%+v); refusing to resume with %+v",
			*run.Spec, c.spec)
	}
	if run.Points != c.st.Count() || run.Benchmark != c.st.Meta().Benchmark {
		return fmt.Errorf("lpcluster: journal records library %q (%d points), store is %q (%d points)",
			run.Benchmark, run.Points, c.st.Meta().Benchmark, c.st.Count())
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	folded := make([]bool, c.st.Count())
	var lastEpoch uint64
	for _, rec := range recs[1:] {
		switch rec.T {
		case recEpoch:
			if rec.Epoch > lastEpoch {
				lastEpoch = rec.Epoch
			}
		case recResult:
			positions, err := c.recordPositions(rec)
			if err != nil {
				return err
			}
			for _, pos := range positions {
				if pos < 0 || pos >= len(folded) {
					return fmt.Errorf("lpcluster: journaled result covers position %d of %d", pos, len(folded))
				}
				if folded[pos] {
					return fmt.Errorf("lpcluster: journaled results fold position %d twice", pos)
				}
				folded[pos] = true
			}
			c.foldLocked(positions, &Result{
				CPIs: rec.CPIs, BaseCPIs: rec.BaseCPIs, ExpCPIs: rec.ExpCPIs,
				UnknownFetches: rec.UnknownFetches, UnknownLoads: rec.UnknownLoads,
				CaptureErrors: rec.CaptureErrors, LoadMillis: rec.LoadMillis, SimMillis: rec.SimMillis,
			})
			c.jr.mReplayed.Inc()
		default:
			return fmt.Errorf("lpcluster: unknown journal record type %q", rec.T)
		}
	}
	c.epoch = lastEpoch + 1
	if !c.finished {
		if err := c.rebuildPendingLocked(folded); err != nil {
			return err
		}
	}
	return nil
}

// recordPositions re-derives the read-order positions a journaled result
// covers: the journal stores lease coverage, not positions, because
// shard membership and read order are properties of the store.
func (c *Coordinator) recordPositions(rec journalRecord) ([]int, error) {
	switch rec.Kind {
	case LeaseShard:
		return c.st.ShardReadPositions(rec.Shard)
	case LeaseRange:
		if rec.Start < 0 || rec.Count <= 0 || rec.Start+rec.Count > c.st.Count() {
			return nil, fmt.Errorf("lpcluster: journaled range [%d,%d) exceeds library of %d points",
				rec.Start, rec.Start+rec.Count, c.st.Count())
		}
		positions := make([]int, rec.Count)
		for i := range positions {
			positions[i] = rec.Start + i
		}
		return positions, nil
	}
	return nil, fmt.Errorf("lpcluster: journaled result has unknown lease kind %q", rec.Kind)
}

// rebuildPendingLocked queues every unfolded position for re-leasing
// after a resume, in the shape the run's mode would have issued: whole
// shards for shard-major runs (a shard folds atomically, so it is either
// fully folded or fully pending), LeasePoints-sized read-order chunks
// for range-lease runs (gaps appear wherever a crashed incarnation's
// leases completed out of order). Fresh allocation is exhausted so
// Acquire serves only the reconstructed queue.
func (c *Coordinator) rebuildPendingLocked(folded []bool) error {
	if !c.stoppingActive() && c.st.NumShards() > 1 {
		c.nextShard = c.st.NumShards()
		for s := 0; s < c.st.NumShards(); s++ {
			positions, err := c.st.ShardReadPositions(s)
			if err != nil {
				return err
			}
			if len(positions) == 0 || folded[positions[0]] {
				continue
			}
			c.pending = append(c.pending, &lease{kind: LeaseShard, shard: s, positions: positions})
		}
		return nil
	}
	c.nextPos = c.st.Count()
	start := -1
	for pos := 0; pos <= len(folded); pos++ {
		unfolded := pos < len(folded) && !folded[pos]
		if unfolded && start < 0 {
			start = pos
		}
		if !unfolded && start >= 0 {
			for lo := start; lo < pos; lo += c.opt.LeasePoints {
				hi := lo + c.opt.LeasePoints
				if hi > pos {
					hi = pos
				}
				positions := make([]int, hi-lo)
				for i := range positions {
					positions[i] = lo + i
				}
				c.pending = append(c.pending, &lease{kind: LeaseRange, start: lo, positions: positions})
			}
			start = -1
		}
	}
	return nil
}

// Final returns the folded run result once the run has finished.
func (c *Coordinator) Final() (*ClusterResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.finished {
		return nil, false
	}
	return &ClusterResult{
		Est:             c.online,
		MP:              c.mp,
		Processed:       c.doneProcessedLocked(),
		Stopped:         c.stopped,
		StoppedNoImpact: c.noImpact,
		Reassigned:      c.reassigned,
		Elapsed:         c.elapsed,
		LoadTime:        c.loadTime,
		SimTime:         c.simTime,
		UnknownFetches:  c.unknownFetches,
		UnknownLoads:    c.unknownLoads,
		CaptureErrors:   c.captureErrors,
	}, true
}

// doneProcessedLocked is the number of observations in the final fold.
func (c *Coordinator) doneProcessedLocked() int {
	if c.spec.Mode == ModeMatched {
		return c.mp.N()
	}
	return c.online.N()
}

// State snapshots the run for GET /v1/run. Expired leases are reclaimed
// first, so ActiveLeases never counts a crashed worker whose points are
// already queued for reassignment. The estimate fields (N, Mean, RelCI —
// or the matched-pair set) are live in both phases: any prefix of a
// shuffled library is a valid sub-sample (§6.1), so the mid-run fold is a
// real estimate with a real confidence interval, not just a byte count.
func (c *Coordinator) State() RunState {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reclaimLocked()
	st := RunState{
		Spec:          c.spec,
		Points:        c.st.Count(),
		Phase:         PhaseRunning,
		Epoch:         c.epoch,
		Done:          c.done,
		ActiveLeases:  c.active,
		PendingLeases: len(c.pending),
		Reassigned:    c.reassigned,
	}
	st.N = c.doneProcessedLocked()
	if c.spec.Mode == ModeMatched {
		st.BaseMean = finite(c.mp.Base.Mean())
		st.ExpMean = finite(c.mp.Exp.Mean())
		st.RelDelta = finite(c.mp.RelDelta())
		st.DeltaCI = finite(c.mp.DeltaCI(c.spec.Z))
	} else {
		st.Mean = finite(c.online.Mean())
		st.RelCI = finite(c.online.RelCI(c.spec.Z))
	}
	st.TargetRelErr = c.spec.RelErr
	st.UnknownFetches = c.unknownFetches
	st.UnknownLoads = c.unknownLoads
	st.CaptureErrors = c.captureErrors
	st.LoadMillis = c.loadTime.Milliseconds()
	st.SimMillis = c.simTime.Milliseconds()
	if c.finished {
		st.Phase = PhaseDone
		st.Stopped = c.stopped
		st.StoppedNoImpact = c.noImpact
		st.ElapsedMillis = c.elapsed.Milliseconds()
		return st
	}
	if c.started {
		elapsed := time.Since(c.start)
		st.ElapsedMillis = elapsed.Milliseconds()
		if elapsed > 0 && c.done > 0 {
			st.PointsPerSec = float64(c.done) / elapsed.Seconds()
			// ETA is only honest for whole-library runs: a stopping rule
			// may fire at any fold, so its finish time is unknowable.
			if c.spec.RelErr <= 0 && !(c.spec.Mode == ModeMatched && c.spec.NoImpactThreshold > 0) {
				remaining := float64(c.st.Count() - c.done)
				st.EtaMillis = int64(remaining / st.PointsPerSec * 1000)
			}
		}
	}
	return st
}
