package lpcluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"livepoints/internal/lpstore"
	"livepoints/internal/sampling"
)

// Options tunes coordinator scheduling.
type Options struct {
	// LeasePoints is the range-lease size (default 64, matching the
	// client's ranged-fetch batch).
	LeasePoints int
	// LeaseTTL is how long a worker has to post a lease's result before
	// the points are reassigned (default 60s).
	LeaseTTL time.Duration
	// WaitHint is the retry delay suggested to workers when all
	// outstanding work is leased (default 200ms).
	WaitHint time.Duration
}

func (o Options) withDefaults() Options {
	if o.LeasePoints <= 0 {
		o.LeasePoints = 64
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 60 * time.Second
	}
	if o.WaitHint <= 0 {
		o.WaitHint = 200 * time.Millisecond
	}
	return o
}

// Result rejections, surfaced over HTTP as 410 and 409.
var (
	// ErrLeaseGone rejects a result for an unknown or reassigned lease —
	// the worker blew its deadline and the points now belong to a
	// replacement lease, so folding this copy would double-count.
	ErrLeaseGone = errors.New("lpcluster: lease expired or reassigned")
	// ErrDuplicate rejects a second result for a completed lease.
	ErrDuplicate = errors.New("lpcluster: duplicate result for completed lease")
)

// lease is the coordinator's view of one assigned work unit.
type lease struct {
	id        uint64
	kind      string
	shard     int
	start     int
	positions []int // global read-order positions covered
	worker    string
	deadline  time.Time
	done      bool
	revoked   bool
}

// ClusterResult is the folded outcome of a cluster run.
type ClusterResult struct {
	Est             sampling.Estimate   // absolute mode
	MP              sampling.MatchedPair // matched mode
	Processed       int
	Stopped         bool // §6.1 rule fired before exhausting the library
	StoppedNoImpact bool
	Reassigned      int // leases reissued after expiry

	Elapsed  time.Duration // first lease issued -> run finished
	LoadTime time.Duration // summed across workers
	SimTime  time.Duration

	UnknownFetches uint64
	UnknownLoads   uint64
	CaptureErrors  uint64
}

// Coordinator owns one cluster sampling run over a live-point store. It
// is driven entirely by worker requests: Acquire hands out leases
// (reclaiming expired ones first), Result folds posted partials and
// applies the fleet-wide stopping rule. All methods are safe for
// concurrent use.
type Coordinator struct {
	st   *lpstore.Store
	spec RunSpec
	opt  Options

	mu        sync.Mutex
	nextID    uint64
	nextPos   int // next unleased read-order position (range leases)
	nextShard int // next unleased shard (shard leases)
	leases    map[uint64]*lease
	pending   []*lease // reclaimed, awaiting reassignment
	active    int

	values   []float64 // per read-order position: CPI (absolute mode)
	baseVals []float64 // matched mode
	expVals  []float64
	done     int // positions completed

	online sampling.Estimate    // completion-order fold of partials
	mp     sampling.MatchedPair // matched-mode completion-order fold

	started    bool
	start      time.Time
	elapsed    time.Duration // sealed at finalize
	stopped    bool
	noImpact   bool
	finished   bool
	reassigned int
	doneCh     chan struct{}

	unknownFetches, unknownLoads, captureErrors uint64
	loadTime, simTime                           time.Duration
}

// NewCoordinator validates the spec against the store and returns an idle
// coordinator; the run starts when the first worker asks for a lease.
func NewCoordinator(st *lpstore.Store, spec RunSpec, opt Options) (*Coordinator, error) {
	spec = spec.withDefaults()
	if _, _, err := spec.Configs(); err != nil {
		return nil, err
	}
	if spec.Mode != ModeAbsolute && spec.Mode != ModeMatched {
		return nil, fmt.Errorf("lpcluster: unknown run mode %q", spec.Mode)
	}
	stopping := spec.RelErr > 0 || (spec.Mode == ModeMatched && spec.NoImpactThreshold > 0)
	if stopping && !st.Meta().Shuffled {
		return nil, fmt.Errorf("lpcluster: online stopping requires a shuffled library (lpstore.Shuffle)")
	}
	c := &Coordinator{
		st:     st,
		spec:   spec,
		opt:    opt.withDefaults(),
		leases: make(map[uint64]*lease),
		doneCh: make(chan struct{}),
	}
	n := st.Count()
	if spec.Mode == ModeMatched {
		c.baseVals = make([]float64, n)
		c.expVals = make([]float64, n)
	} else {
		c.values = make([]float64, n)
	}
	return c, nil
}

// Spec returns the run specification (defaults resolved).
func (c *Coordinator) Spec() RunSpec { return c.spec }

// Done returns a channel closed when the run finishes.
func (c *Coordinator) Done() <-chan struct{} { return c.doneCh }

// stoppingActive reports whether an online stopping rule constrains lease
// shape: truncated samples must be read-order prefixes (DESIGN §3.3), so
// shard-major leases are off the table.
func (c *Coordinator) stoppingActive() bool {
	return c.spec.RelErr > 0 || (c.spec.Mode == ModeMatched && c.spec.NoImpactThreshold > 0)
}

// reclaimLocked revokes expired leases and queues their points for
// reassignment under fresh lease ids. A late result for a revoked lease
// is rejected (ErrLeaseGone), so every position folds exactly once.
func (c *Coordinator) reclaimLocked() {
	now := time.Now()
	for _, l := range c.leases {
		if l.done || l.revoked || now.Before(l.deadline) {
			continue
		}
		l.revoked = true
		c.active--
		c.reassigned++
		c.pending = append(c.pending, &lease{
			kind:      l.kind,
			shard:     l.shard,
			start:     l.start,
			positions: l.positions,
		})
	}
}

// Acquire hands worker its next lease: a reclaimed lease first, then
// fresh work (shard-major for whole-library runs, read-order ranges while
// a stopping rule is active). With everything leased but unfinished it
// returns a wait hint; with the run finished it returns done.
func (c *Coordinator) Acquire(worker string) LeaseResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reclaimLocked()
	if c.finished {
		return LeaseResponse{Done: true}
	}
	if !c.started {
		c.started = true
		c.start = time.Now()
	}

	var l *lease
	switch {
	case len(c.pending) > 0:
		l = c.pending[0]
		c.pending = c.pending[1:]
	case !c.stoppingActive() && c.st.NumShards() > 1:
		if c.nextShard < c.st.NumShards() {
			positions, err := c.st.ShardReadPositions(c.nextShard)
			if err != nil { // cannot happen on a validated store
				return LeaseResponse{Wait: true, WaitMillis: c.opt.WaitHint.Milliseconds()}
			}
			l = &lease{kind: LeaseShard, shard: c.nextShard, positions: positions}
			c.nextShard++
		}
	default:
		if c.nextPos < c.st.Count() {
			n := c.opt.LeasePoints
			if c.nextPos+n > c.st.Count() {
				n = c.st.Count() - c.nextPos
			}
			positions := make([]int, n)
			for i := range positions {
				positions[i] = c.nextPos + i
			}
			l = &lease{kind: LeaseRange, start: c.nextPos, positions: positions}
			c.nextPos += n
		}
	}
	if l == nil {
		return LeaseResponse{Wait: true, WaitMillis: c.opt.WaitHint.Milliseconds()}
	}

	c.nextID++
	l.id = c.nextID
	l.worker = worker
	l.deadline = time.Now().Add(c.opt.LeaseTTL)
	c.leases[l.id] = l
	c.active++
	return LeaseResponse{Lease: &Lease{
		ID:        l.id,
		Kind:      l.kind,
		Shard:     l.shard,
		Start:     l.start,
		Count:     len(l.positions),
		Points:    len(l.positions),
		TTLMillis: c.opt.LeaseTTL.Milliseconds(),
	}}
}

// Result folds one completed lease's partial statistics. Partials fold in
// completion order; after each fold the §6.1 stopping rule is evaluated
// across everything the fleet has produced. Results for revoked leases
// are rejected with ErrLeaseGone (the replacement lease owns those points
// now), duplicates with ErrDuplicate.
func (c *Coordinator) Result(res *Result) (ResultResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	l, ok := c.leases[res.LeaseID]
	if !ok || l.revoked {
		return ResultResponse{}, ErrLeaseGone
	}
	if l.done {
		return ResultResponse{}, ErrDuplicate
	}
	if c.finished {
		// Stragglers after the stopping rule fired: nothing to fold.
		return ResultResponse{Accepted: false, Done: true}, nil
	}
	n := len(l.positions)
	matched := c.spec.Mode == ModeMatched
	if matched {
		if len(res.BaseCPIs) != n || len(res.ExpCPIs) != n {
			return ResultResponse{}, fmt.Errorf("lpcluster: lease %d: got %d/%d paired CPIs, want %d",
				res.LeaseID, len(res.BaseCPIs), len(res.ExpCPIs), n)
		}
	} else if len(res.CPIs) != n {
		return ResultResponse{}, fmt.Errorf("lpcluster: lease %d: got %d CPIs, want %d", res.LeaseID, len(res.CPIs), n)
	}

	l.done = true
	c.active--
	c.done += n
	c.unknownFetches += res.UnknownFetches
	c.unknownLoads += res.UnknownLoads
	c.captureErrors += res.CaptureErrors
	c.loadTime += time.Duration(res.LoadMillis) * time.Millisecond
	c.simTime += time.Duration(res.SimMillis) * time.Millisecond

	// Record per-point values at their read-order positions (for the
	// bit-equal whole-library refold) and fold the partial into the
	// fleet-wide running estimate (completion order).
	if matched {
		var part sampling.MatchedPair
		for i, pos := range l.positions {
			c.baseVals[pos] = res.BaseCPIs[i]
			c.expVals[pos] = res.ExpCPIs[i]
			part.Add(res.BaseCPIs[i], res.ExpCPIs[i])
		}
		c.mp.Merge(part)
		// Mirror RunMatchedSource: the no-impact screen is checked first.
		if c.spec.NoImpactThreshold > 0 && c.mp.NoImpact(c.spec.Z, c.spec.NoImpactThreshold) {
			c.stopped, c.noImpact = true, true
		} else if c.spec.RelErr > 0 && c.mp.DeltaSatisfied(c.spec.Z, c.spec.RelErr) {
			c.stopped = true
		}
	} else {
		var part sampling.Estimate
		for i, pos := range l.positions {
			c.values[pos] = res.CPIs[i]
			part.Add(res.CPIs[i])
		}
		c.online.Merge(part)
		if c.spec.RelErr > 0 && c.online.Satisfied(c.spec.Z, c.spec.RelErr) {
			c.stopped = true
		}
	}

	if c.stopped || c.done == c.st.Count() {
		c.finalizeLocked()
	}
	return ResultResponse{Accepted: true, Done: c.finished}, nil
}

// finalizeLocked seals the run. A whole-library run refolds the recorded
// per-point values in read order, reproducing the serial local fold bit
// for bit; a stopped run keeps the completion-order estimate (any prefix
// of a shuffled library is a valid sub-sample, §6.1).
func (c *Coordinator) finalizeLocked() {
	if c.finished {
		return
	}
	c.finished = true
	c.elapsed = time.Since(c.start)
	if !c.stopped {
		if c.spec.Mode == ModeMatched {
			var mp sampling.MatchedPair
			for i := range c.baseVals {
				mp.Add(c.baseVals[i], c.expVals[i])
			}
			c.mp = mp
		} else {
			var est sampling.Estimate
			for _, v := range c.values {
				est.Add(v)
			}
			c.online = est
		}
	}
	close(c.doneCh)
}

// Final returns the folded run result once the run has finished.
func (c *Coordinator) Final() (*ClusterResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.finished {
		return nil, false
	}
	return &ClusterResult{
		Est:             c.online,
		MP:              c.mp,
		Processed:       c.doneProcessedLocked(),
		Stopped:         c.stopped,
		StoppedNoImpact: c.noImpact,
		Reassigned:      c.reassigned,
		Elapsed:         c.elapsed,
		LoadTime:        c.loadTime,
		SimTime:         c.simTime,
		UnknownFetches:  c.unknownFetches,
		UnknownLoads:    c.unknownLoads,
		CaptureErrors:   c.captureErrors,
	}, true
}

// doneProcessedLocked is the number of observations in the final fold.
func (c *Coordinator) doneProcessedLocked() int {
	if c.spec.Mode == ModeMatched {
		return c.mp.N()
	}
	return c.online.N()
}

// State snapshots the run for GET /v1/run.
func (c *Coordinator) State() RunState {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := RunState{
		Spec:          c.spec,
		Points:        c.st.Count(),
		Phase:         PhaseRunning,
		Done:          c.done,
		ActiveLeases:  c.active,
		PendingLeases: len(c.pending),
		Reassigned:    c.reassigned,
	}
	if !c.finished {
		return st
	}
	st.Phase = PhaseDone
	st.Stopped = c.stopped
	st.StoppedNoImpact = c.noImpact
	st.N = c.doneProcessedLocked()
	if c.spec.Mode == ModeMatched {
		st.BaseMean = c.mp.Base.Mean()
		st.ExpMean = c.mp.Exp.Mean()
		st.RelDelta = c.mp.RelDelta()
		st.DeltaCI = c.mp.DeltaCI(c.spec.Z)
	} else {
		st.Mean = c.online.Mean()
		st.RelCI = c.online.RelCI(c.spec.Z)
	}
	st.UnknownFetches = c.unknownFetches
	st.UnknownLoads = c.unknownLoads
	st.CaptureErrors = c.captureErrors
	st.LoadMillis = c.loadTime.Milliseconds()
	st.SimMillis = c.simTime.Milliseconds()
	st.ElapsedMillis = c.elapsed.Milliseconds()
	return st
}
