package lpcluster

import (
	"context"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"livepoints/internal/livepoint"
	"livepoints/internal/lpserve"
	"livepoints/internal/lpstore"
	"livepoints/internal/obs"
	"livepoints/internal/uarch"
)

// synthCPI is the deterministic per-position observation the journal
// tests feed the coordinator: enough variance that no stopping rule
// fires by accident, and a pure function of the read-order position so
// any incarnation posts identical floats for the same coverage.
func synthCPI(pos int) float64 { return 1 + 0.01*float64(pos) }

// leaseResult builds the Result a well-behaved worker would post for l,
// with CPIs derived from the lease's read-order positions.
func leaseResult(t *testing.T, st *lpstore.Store, l *Lease) *Result {
	t.Helper()
	var positions []int
	if l.Kind == LeaseShard {
		var err error
		positions, err = st.ShardReadPositions(l.Shard)
		if err != nil {
			t.Fatal(err)
		}
	} else {
		positions = make([]int, l.Count)
		for i := range positions {
			positions[i] = l.Start + i
		}
	}
	res := &Result{LeaseID: l.ID, Epoch: l.Epoch, Worker: "w", CPIs: make([]float64, len(positions))}
	for i, pos := range positions {
		res.CPIs[i] = synthCPI(pos)
	}
	return res
}

// drain drives c to completion single-threadedly, posting the synthetic
// per-position CPIs for every lease it hands out.
func drain(t *testing.T, c *Coordinator, st *lpstore.Store) {
	t.Helper()
	for i := 0; i < 10_000; i++ {
		lr := c.Acquire("w")
		if lr.Done {
			return
		}
		if lr.Lease == nil {
			t.Fatalf("coordinator stalled with run unfinished: %+v", c.State())
		}
		if _, err := c.Result(leaseResult(t, st, lr.Lease)); err != nil {
			t.Fatal(err)
		}
	}
	t.Fatal("run did not finish")
}

// referenceEstimate is the uninterrupted baseline: the same synthetic
// run on a journal-free coordinator, folded to completion.
func referenceEstimate(t *testing.T, st *lpstore.Store, spec RunSpec, opt Options) *ClusterResult {
	t.Helper()
	opt.Metrics = obs.NewRegistry()
	c, err := NewCoordinator(st, spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	drain(t, c, st)
	res, ok := c.Final()
	if !ok {
		t.Fatal("reference run not finished")
	}
	return res
}

// TestJournalResumeParityShardMajor is the tentpole acceptance check at
// the coordinator API: a whole-library (shard-major) journaled run is
// killed after two folds, resumed, and completed — the estimate must be
// bit-equal to an uninterrupted run, nothing double-counted, and the
// pre-crash folds must survive as replayed state rather than re-leased
// work.
func TestJournalResumeParityShardMajor(t *testing.T) {
	st := synthStore(t, 40, 8, true)
	want := referenceEstimate(t, st, RunSpec{}, Options{})
	path := filepath.Join(t.TempDir(), "run.waj")

	c1, err := NewJournaledCoordinator(st, RunSpec{}, Options{Metrics: obs.NewRegistry()}, path)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Epoch() != 0 {
		t.Fatalf("fresh journaled run epoch %d, want 0", c1.Epoch())
	}
	var crashed int
	for i := 0; i < 2; i++ {
		lr := c1.Acquire("w")
		if lr.Lease == nil {
			t.Fatalf("no lease: %+v", lr)
		}
		if lr.Lease.Kind != LeaseShard {
			t.Fatalf("whole-library journaled run issued a %s lease", lr.Lease.Kind)
		}
		if _, err := c1.Result(leaseResult(t, st, lr.Lease)); err != nil {
			t.Fatal(err)
		}
		crashed += lr.Lease.Points
	}
	// A third lease is issued but its result never lands: the "crash"
	// happens with one lease in flight, the common case.
	inflight := c1.Acquire("w")
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	c2, err := NewJournaledCoordinator(st, RunSpec{}, Options{Metrics: reg}, path)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Epoch() != 1 {
		t.Fatalf("resumed epoch %d, want 1", c2.Epoch())
	}
	rs := c2.State()
	if rs.Done != crashed {
		t.Fatalf("resumed with %d points folded, want the %d journaled before the crash", rs.Done, crashed)
	}
	if got := reg.Counter("lpcluster_journal_replayed_results_total", "").Value(); got != 2 {
		t.Fatalf("replayed-results counter %d, want 2", got)
	}

	// The crashed incarnation's in-flight lease posts to the new one:
	// stale epoch, 410 semantics, counted under reason="epoch".
	if _, err := c2.Result(leaseResult(t, st, inflight.Lease)); err != ErrLeaseGone {
		t.Fatalf("stale-epoch result: %v, want ErrLeaseGone", err)
	}
	if got := reg.Counter("lpcluster_results_rejected_total", "", "reason", "epoch").Value(); got != 1 {
		t.Fatalf("epoch rejection counter %d, want 1", got)
	}

	drain(t, c2, st)
	res, ok := c2.Final()
	if !ok {
		t.Fatal("resumed run not finished")
	}
	if !reflect.DeepEqual(res.Est, want.Est) {
		t.Fatalf("resumed estimate not bit-equal to uninterrupted run: %.15f vs %.15f",
			res.Est.Mean(), want.Est.Mean())
	}
	if res.Processed != st.Count() {
		t.Fatalf("resumed run processed %d of %d points", res.Processed, st.Count())
	}
}

// TestJournalResumeRangeGaps resumes a range-lease (online stopping) run
// whose pre-crash folds completed out of order, so the unfolded coverage
// is a set of read-order gaps. The rebuilt pending queue must cover
// exactly those gaps and the completed run must match the uninterrupted
// baseline bit for bit.
func TestJournalResumeRangeGaps(t *testing.T) {
	st := synthStore(t, 50, 10, true)
	// RelErr far below what the synthetic variance can satisfy: range
	// leases are forced, but the run always exhausts the library.
	spec := RunSpec{RelErr: 1e-6}
	opt := Options{LeasePoints: 8}
	want := referenceEstimate(t, st, spec, opt)
	path := filepath.Join(t.TempDir(), "run.waj")

	c1, err := NewJournaledCoordinator(st, spec, Options{LeasePoints: 8, Metrics: obs.NewRegistry()}, path)
	if err != nil {
		t.Fatal(err)
	}
	la := c1.Acquire("w") // [0,8)
	lb := c1.Acquire("w") // [8,16)
	lc := c1.Acquire("w") // [16,24)
	if la.Lease == nil || lb.Lease == nil || lc.Lease == nil {
		t.Fatal("leases not issued")
	}
	// Fold a and c; b is lost with the crash, leaving a gap at [8,16).
	for _, lr := range []LeaseResponse{la, lc} {
		if _, err := c1.Result(leaseResult(t, st, lr.Lease)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := NewJournaledCoordinator(st, spec, Options{LeasePoints: 8, Metrics: obs.NewRegistry()}, path)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	rs := c2.State()
	if rs.Done != 16 {
		t.Fatalf("resumed with %d folded, want 16", rs.Done)
	}
	// Gaps: [8,16) and [24,50), chunked by LeasePoints=8 → 1 + 4 leases.
	if rs.PendingLeases != 5 {
		t.Fatalf("rebuilt %d pending leases, want 5: %+v", rs.PendingLeases, rs)
	}
	drain(t, c2, st)
	res, _ := c2.Final()
	if !reflect.DeepEqual(res.Est, want.Est) {
		t.Fatalf("resumed estimate not bit-equal: %.15f vs %.15f", res.Est.Mean(), want.Est.Mean())
	}
}

// TestJournalTornTail kills the write mid-record: a journal whose last
// line is a torn fragment (what a SIGKILL during append leaves behind)
// must resume from the last intact record, truncating the garbage.
func TestJournalTornTail(t *testing.T) {
	st := synthStore(t, 40, 8, true)
	path := filepath.Join(t.TempDir(), "run.waj")
	c1, err := NewJournaledCoordinator(st, RunSpec{}, Options{Metrics: obs.NewRegistry()}, path)
	if err != nil {
		t.Fatal(err)
	}
	lr := c1.Acquire("w")
	if _, err := c1.Result(leaseResult(t, st, lr.Lease)); err != nil {
		t.Fatal(err)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":"result","kind":"shard","sha`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	c2, err := NewJournaledCoordinator(st, RunSpec{}, Options{Metrics: obs.NewRegistry()}, path)
	if err != nil {
		t.Fatalf("torn tail refused resume: %v", err)
	}
	defer c2.Close()
	if got := c2.State().Done; got != lr.Lease.Points {
		t.Fatalf("resumed with %d folded, want %d (torn record must not fold)", got, lr.Lease.Points)
	}
	drain(t, c2, st)

	// The truncated-and-appended journal must itself be cleanly
	// replayable: a second resume sees only intact records.
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
	c3, err := NewJournaledCoordinator(st, RunSpec{}, Options{Metrics: obs.NewRegistry()}, path)
	if err != nil {
		t.Fatalf("journal not clean after torn-tail truncation: %v", err)
	}
	defer c3.Close()
	if c3.Epoch() != 2 {
		t.Fatalf("second resume epoch %d, want 2", c3.Epoch())
	}
	if got := c3.State().Done; got != st.Count() {
		t.Fatalf("finished run resumed with %d of %d folded", got, st.Count())
	}
}

// TestJournalMismatchRefused: a journal resumes only the run it records —
// different flags or a different library must be refused loudly, not
// silently folded into a corrupt estimate.
func TestJournalMismatchRefused(t *testing.T) {
	st := synthStore(t, 40, 8, true)
	path := filepath.Join(t.TempDir(), "run.waj")
	c1, err := NewJournaledCoordinator(st, RunSpec{}, Options{Metrics: obs.NewRegistry()}, path)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := NewJournaledCoordinator(st, RunSpec{RelErr: 0.5}, Options{Metrics: obs.NewRegistry()}, path); err == nil {
		t.Fatal("journal resumed under a different run spec")
	}
	other := synthStore(t, 23, 4, true)
	if _, err := NewJournaledCoordinator(other, RunSpec{}, Options{Metrics: obs.NewRegistry()}, path); err == nil {
		t.Fatal("journal resumed against a different library")
	}
}

// TestClusterJournalRestartHTTP is the end-to-end crash drill: a
// journaled coordinator serving a real library over HTTP is shut down
// mid-run — journal and listener torn down — while a worker is pulling.
// A new incarnation on the same address must resume, the worker must
// ride the outage out without a restart, and the finished run must be
// bit-equal to the serial local baseline.
func TestClusterJournalRestartHTTP(t *testing.T) {
	lib := testLibrary(t)
	local, err := livepoint.RunFile(lib, livepoint.RunOpts{Cfg: uarch.Config8Way()})
	if err != nil {
		t.Fatal(err)
	}
	st, err := lpstore.Open(lib)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	jpath := filepath.Join(t.TempDir(), "run.waj")

	boot := func(addr string) (*Coordinator, *lpserve.Server, string) {
		t.Helper()
		coord, err := NewJournaledCoordinator(st, RunSpec{}, Options{Metrics: obs.NewRegistry()}, jpath)
		if err != nil {
			t.Fatal(err)
		}
		srv := lpserve.NewServerWithMetrics(st, obs.NewRegistry())
		coord.Mount(srv)
		var l net.Listener
		deadline := time.Now().Add(5 * time.Second)
		for {
			l, err = net.Listen("tcp", addr)
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("relisten on %s: %v", addr, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
		go srv.Serve(l)
		return coord, srv, l.Addr().String()
	}

	coord1, srv1, addr := boot("127.0.0.1:0")
	cl, err := lpserve.Dial("http://" + addr)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	w := NewWorker("rider", cl)
	werr := make(chan error, 1)
	go func() { werr <- w.Run(ctx) }()

	// Let at least one fold land, then yank the coordinator.
	for coord1.State().Done == 0 {
		if ctx.Err() != nil {
			t.Fatal("no fold before timeout")
		}
		time.Sleep(time.Millisecond)
	}
	if err := srv1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := coord1.Close(); err != nil {
		t.Fatal(err)
	}
	// Hold the coordinator down for longer than the HTTP client's retry
	// budget, so the outage is a real one the worker must back off
	// through — not a blip its transport retries paper over.
	time.Sleep(1200 * time.Millisecond)

	coord2, srv2, _ := boot(addr)
	defer coord2.Close()
	defer srv2.Shutdown(context.Background())
	if coord2.Epoch() != 1 {
		t.Fatalf("restarted coordinator epoch %d, want 1", coord2.Epoch())
	}

	select {
	case err := <-werr:
		if err != nil {
			t.Fatalf("worker did not ride the restart out: %v", err)
		}
	case <-ctx.Done():
		t.Fatal("worker did not finish after coordinator restart")
	}
	select {
	case <-coord2.Done():
	case <-ctx.Done():
		t.Fatal("resumed run never finished")
	}
	res, ok := coord2.Final()
	if !ok {
		t.Fatal("resumed run not final")
	}
	if res.Processed != local.Processed {
		t.Fatalf("restarted run processed %d points, local %d", res.Processed, local.Processed)
	}
	if !reflect.DeepEqual(res.Est, local.Est) {
		t.Fatalf("restarted run estimate not bit-equal to local: %.15f vs %.15f",
			res.Est.Mean(), local.Est.Mean())
	}
	// The worker either hit the dead listener (a ridden-out outage) or
	// was mid-simulation the whole time and had its stale-epoch post
	// rejected; both leave a visible mark.
	if w.Reconnects+w.Expired < 1 {
		t.Fatal("worker shows no trace of the coordinator restart")
	}
}

// TestWorkerDrain: Drain must stop a worker at a lease boundary — the
// in-flight lease finished and posted, nothing newly acquired, Run
// returning nil — leaving no lease dangling for the TTL reaper.
func TestWorkerDrain(t *testing.T) {
	coord, cl := startCluster(t, RunSpec{}, Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	w := NewWorker("drainer", cl)
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()

	for coord.State().Done == 0 {
		if ctx.Err() != nil {
			t.Fatal("no fold before timeout")
		}
		time.Sleep(time.Millisecond)
	}
	w.Drain()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drained worker returned %v", err)
		}
	case <-ctx.Done():
		t.Fatal("worker did not stop after Drain")
	}
	rs := coord.State()
	if rs.ActiveLeases != 0 {
		t.Fatalf("drained worker left %d leases active", rs.ActiveLeases)
	}
	if w.Leases < 1 {
		t.Fatal("worker drained before posting anything")
	}
}
