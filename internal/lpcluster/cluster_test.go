package lpcluster

import (
	"bytes"
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"livepoints/internal/asn1der"
	"livepoints/internal/bpred"
	"livepoints/internal/livepoint"
	"livepoints/internal/lpserve"
	"livepoints/internal/lpstore"
	"livepoints/internal/obs"
	"livepoints/internal/prog"
	"livepoints/internal/sampling"
	"livepoints/internal/uarch"
	"livepoints/internal/warm"
)

// testLibrary lazily builds one small real (simulatable) shuffled v2
// library shared by all cluster tests; creation runs a full functional
// pass, so it happens once per test process.
var (
	libOnce sync.Once
	libPath string
	libErr  error
)

func testLibrary(t *testing.T) string {
	t.Helper()
	libOnce.Do(func() {
		dir, err := os.MkdirTemp("", "lpcluster-test")
		if err != nil {
			libErr = err
			return
		}
		// The temp dir leaks for the process lifetime; tests share it.
		cfg := uarch.Config8Way()
		spec, err := prog.ByName("syn.gzip")
		if err != nil {
			libErr = err
			return
		}
		p := prog.Generate(spec, 0.01)
		benchLen, err := warm.BenchLength(p, p.TargetLen*4+1_000_000)
		if err != nil {
			libErr = err
			return
		}
		design, err := sampling.NewSystematic(benchLen, uarch.MeasureLen, uint64(cfg.DetailedWarm), 2, 1)
		if err != nil {
			libErr = err
			return
		}
		opts := livepoint.CreateOpts{MaxHier: cfg.Hier, Preds: []bpred.Config{cfg.BP}}
		var blobs [][]byte
		err = livepoint.Create(p, design, opts, func(lp *livepoint.LivePoint) error {
			b, _ := livepoint.Encode(lp)
			blobs = append(blobs, b)
			return nil
		})
		if err != nil {
			libErr = err
			return
		}
		rng := rand.New(rand.NewSource(0x5EED))
		rng.Shuffle(len(blobs), func(i, j int) { blobs[i], blobs[j] = blobs[j], blobs[i] })
		meta := livepoint.Meta{Benchmark: "syn.gzip", UnitLen: design.UnitLen, WarmLen: design.WarmLen, Shuffled: true}
		libPath = filepath.Join(dir, "lib.lplib")
		_, libErr = lpstore.Write(libPath, meta, blobs, lpstore.WriteOpts{ShardPoints: 5})
	})
	if libErr != nil {
		t.Fatal(libErr)
	}
	return libPath
}

// startCluster opens the library, mounts a coordinator on an lpserve
// server, and dials a client against it.
func startCluster(t *testing.T, spec RunSpec, opt Options) (*Coordinator, *lpserve.Client) {
	t.Helper()
	st, err := lpstore.Open(testLibrary(t))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	coord, err := NewCoordinator(st, spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	srv := lpserve.NewServer(st)
	coord.Mount(srv)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	cl, err := lpserve.Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return coord, cl
}

// runWorkers drives n concurrent in-process workers to completion.
func runWorkers(t *testing.T, cl *lpserve.Client, n int) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		w := NewWorker(string(rune('a'+i)), cl)
		go func() { errs <- w.Run(ctx) }()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestClusterParity is the subsystem's acceptance check: a whole-library
// cluster run (coordinator + 2 workers over localhost HTTP) must produce
// a bit-equal estimate to the local serial RunFile path.
func TestClusterParity(t *testing.T) {
	lib := testLibrary(t)
	local, err := livepoint.RunFile(lib, livepoint.RunOpts{Cfg: uarch.Config8Way()})
	if err != nil {
		t.Fatal(err)
	}
	if local.Processed < 2*sampling.MinSampleSize {
		t.Fatalf("test library too small: %d points", local.Processed)
	}

	coord, cl := startCluster(t, RunSpec{}, Options{})
	runWorkers(t, cl, 2)

	res, ok := coord.Final()
	if !ok {
		t.Fatal("run not finished after workers exited")
	}
	if res.Processed != local.Processed {
		t.Fatalf("cluster processed %d points, local %d", res.Processed, local.Processed)
	}
	if !reflect.DeepEqual(res.Est, local.Est) {
		t.Fatalf("cluster estimate not bit-equal to local: %.12f vs %.12f", res.Est.Mean(), local.Est.Mean())
	}
	if res.UnknownFetches != local.UnknownFetches || res.UnknownLoads != local.UnknownLoads ||
		res.CaptureErrors != local.CaptureErrors {
		t.Fatalf("counter mismatch: cluster %d/%d/%d, local %d/%d/%d",
			res.UnknownFetches, res.UnknownLoads, res.CaptureErrors,
			local.UnknownFetches, local.UnknownLoads, local.CaptureErrors)
	}
	if res.Stopped {
		t.Fatal("whole-library run reported a stopping-rule stop")
	}
	// Whole-library runs must have leased shard-major (raw-gzip passthrough).
	coord.mu.Lock()
	shardLeased := coord.nextShard
	coord.mu.Unlock()
	if shardLeased == 0 {
		t.Fatal("whole-library run issued no shard leases")
	}
}

// TestClusterOnlineStopping runs the §6.1 rule across the fleet: the run
// must stop early, satisfy the same confidence target a single-process
// run satisfies, and must have used read-order range leases only.
func TestClusterOnlineStopping(t *testing.T) {
	const relErr = 0.5
	lib := testLibrary(t)
	local, err := livepoint.RunFile(lib, livepoint.RunOpts{Cfg: uarch.Config8Way(), RelErr: relErr})
	if err != nil {
		t.Fatal(err)
	}
	if !local.Satisfied(sampling.Z997, relErr) {
		t.Fatalf("local online run did not satisfy ±%.0f%%; library unusable for this test", 100*relErr)
	}

	coord, cl := startCluster(t, RunSpec{RelErr: relErr}, Options{LeasePoints: 8})
	runWorkers(t, cl, 2)

	res, ok := coord.Final()
	if !ok {
		t.Fatal("run not finished")
	}
	if !res.Stopped {
		t.Fatal("stopping rule did not fire before library exhaustion")
	}
	if !res.Est.Satisfied(sampling.Z997, relErr) {
		t.Fatalf("stopped estimate does not satisfy the target: n=%d relCI=%.3f",
			res.Est.N(), res.Est.RelCI(sampling.Z997))
	}
	if res.Est.N() < sampling.MinSampleSize {
		t.Fatalf("stopped below the CLT floor: n=%d", res.Est.N())
	}
	st, _ := lpstore.Open(lib)
	total := st.Count()
	st.Close()
	if res.Processed >= total {
		t.Fatalf("online stop processed the whole library (%d points)", total)
	}
	// Truncation bias rule: no shard-major lease may exist in a stopping run.
	coord.mu.Lock()
	shardLeased := coord.nextShard
	for _, l := range coord.leases {
		if l.kind != LeaseRange {
			t.Errorf("stopping run issued a %s lease", l.kind)
		}
	}
	coord.mu.Unlock()
	if shardLeased != 0 {
		t.Fatal("stopping run leased shard-major")
	}
}

// TestClusterMatchedParity checks matched-pair cluster runs are bit-equal
// to the local RunMatchedFile fold.
func TestClusterMatchedParity(t *testing.T) {
	lib := testLibrary(t)
	spec := RunSpec{Mode: ModeMatched, MemLat: 200}
	base, exp, err := spec.Configs()
	if err != nil {
		t.Fatal(err)
	}
	local, err := livepoint.RunMatchedFile(lib, livepoint.MatchedOpts{Base: base, Exp: exp, Z: sampling.Z997})
	if err != nil {
		t.Fatal(err)
	}

	coord, cl := startCluster(t, spec, Options{})
	runWorkers(t, cl, 2)

	res, ok := coord.Final()
	if !ok {
		t.Fatal("run not finished")
	}
	if !reflect.DeepEqual(res.MP, local.MP) {
		t.Fatalf("cluster matched pair not bit-equal: Δ %.12f vs %.12f", res.MP.MeanDelta(), local.MP.MeanDelta())
	}
	if res.Processed != local.Processed {
		t.Fatalf("cluster processed %d pairs, local %d", res.Processed, local.Processed)
	}
	// Matched-mode workers must report their runner stats like absolute
	// ones: a whole library of paired sims cannot have taken zero time.
	if res.SimTime <= 0 {
		t.Fatalf("matched cluster run dropped worker sim time: %v", res.SimTime)
	}
}

// TestLeaseExpiryReassignment injects a worker crash: a worker acquires a
// lease over HTTP and goes silent. The lease must expire, be reassigned
// to the surviving worker, and the final estimate must be identical to
// the local run — the crash changes nothing but turnaround. A late post
// from the crashed worker is rejected with 410.
func TestLeaseExpiryReassignment(t *testing.T) {
	lib := testLibrary(t)
	local, err := livepoint.RunFile(lib, livepoint.RunOpts{Cfg: uarch.Config8Way()})
	if err != nil {
		t.Fatal(err)
	}

	coord, cl := startCluster(t, RunSpec{}, Options{LeaseTTL: 150 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// The "crashed" worker: takes the first lease and never posts.
	var lr LeaseResponse
	if err := cl.DoJSON(ctx, http.MethodPost, "/v1/leases", LeaseRequest{Worker: "crash"}, &lr); err != nil {
		t.Fatal(err)
	}
	if lr.Lease == nil {
		t.Fatalf("crashed worker got no lease: %+v", lr)
	}

	// The surviving worker drains everything, including the reassigned
	// lease once its TTL passes.
	var logBuf bytes.Buffer
	w := NewWorker("survivor", cl)
	w.Log = obs.NewLogger(&logBuf, obs.LevelDebug, "worker")
	if err := w.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(logBuf.String(), `msg="lease done"`) {
		t.Errorf("worker logged no per-lease progress lines:\n%s", logBuf.String())
	}

	res, ok := coord.Final()
	if !ok {
		t.Fatal("run not finished")
	}
	if res.Reassigned < 1 {
		t.Fatal("crashed lease was never reassigned")
	}
	if !reflect.DeepEqual(res.Est, local.Est) {
		t.Fatalf("estimate after crash not bit-equal to local: %.12f vs %.12f", res.Est.Mean(), local.Est.Mean())
	}

	// The crashed worker finally wakes up and posts: 410 Gone, no refold.
	late := &Result{LeaseID: lr.Lease.ID, Worker: "crash", CPIs: make([]float64, lr.Lease.Points)}
	err = cl.DoJSON(ctx, http.MethodPost, "/v1/results", late, nil)
	if !lpserve.IsStatus(err, http.StatusGone) {
		t.Fatalf("late post for revoked lease: %v, want 410", err)
	}
	after, _ := coord.Final()
	if !reflect.DeepEqual(after.Est, res.Est) {
		t.Fatal("late post changed the sealed estimate")
	}
}

// synthStore writes a store of synthetic DER blobs — fine for driving the
// coordinator API directly, where nothing is simulated.
func synthStore(t *testing.T, n, shardPoints int, shuffled bool) *lpstore.Store {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	blobs := make([][]byte, n)
	for i := range blobs {
		payload := make([]byte, 40+rng.Intn(100))
		rng.Read(payload)
		b := asn1der.NewBuilder()
		b.OctetString(payload)
		blobs[i] = b.Bytes()
	}
	path := filepath.Join(t.TempDir(), "synth.lplib")
	meta := livepoint.Meta{Benchmark: "syn.protocol", UnitLen: 10, WarmLen: 20, Shuffled: shuffled}
	if _, err := lpstore.Write(path, meta, blobs, lpstore.WriteOpts{ShardPoints: shardPoints}); err != nil {
		t.Fatal(err)
	}
	st, err := lpstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func TestResultRejection(t *testing.T) {
	st := synthStore(t, 23, 4, true)
	coord, err := NewCoordinator(st, RunSpec{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lr := coord.Acquire("w")
	if lr.Lease == nil {
		t.Fatalf("no lease: %+v", lr)
	}

	// Wrong observation count.
	if _, err := coord.Result(&Result{LeaseID: lr.Lease.ID, CPIs: []float64{1}}); err == nil {
		t.Fatal("short result accepted")
	}
	// Unknown lease.
	if _, err := coord.Result(&Result{LeaseID: 999, CPIs: []float64{1}}); err != ErrLeaseGone {
		t.Fatalf("unknown lease: %v, want ErrLeaseGone", err)
	}
	// Correct result folds once...
	good := &Result{LeaseID: lr.Lease.ID, CPIs: make([]float64, lr.Lease.Points)}
	for i := range good.CPIs {
		good.CPIs[i] = 1 + float64(i)
	}
	resp, err := coord.Result(good)
	if err != nil || !resp.Accepted {
		t.Fatalf("good result rejected: %+v, %v", resp, err)
	}
	// ...and a duplicate is refused.
	if _, err := coord.Result(good); err != ErrDuplicate {
		t.Fatalf("duplicate: %v, want ErrDuplicate", err)
	}
}

// TestStragglerAfterFinish covers the late-result path once the stopping
// rule has fired: the straggler's lease must resolve (leave the active
// count, answer 409 to a duplicate) without perturbing the sealed
// estimate.
func TestStragglerAfterFinish(t *testing.T) {
	st := synthStore(t, 60, 8, true)
	reg := obs.NewRegistry()
	coord, err := NewCoordinator(st, RunSpec{RelErr: 0.5}, Options{LeasePoints: 30, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	la := coord.Acquire("w1")
	lb := coord.Acquire("w2")
	if la.Lease == nil || lb.Lease == nil {
		t.Fatalf("leases not issued: %+v / %+v", la, lb)
	}

	// Constant CPIs: zero variance, so the fold satisfies any relative
	// target the moment n reaches the CLT floor (LeasePoints ==
	// MinSampleSize makes that this very post).
	cpis := make([]float64, la.Lease.Points)
	for i := range cpis {
		cpis[i] = 1
	}
	resp, err := coord.Result(&Result{LeaseID: la.Lease.ID, Worker: "w1", CPIs: cpis})
	if err != nil || !resp.Accepted || !resp.Done {
		t.Fatalf("finishing result: %+v, %v", resp, err)
	}
	mid := coord.State()
	if mid.Phase != PhaseDone {
		t.Fatalf("run not done after zero-variance fold: %+v", mid)
	}
	if mid.ActiveLeases != 1 {
		t.Fatalf("straggling lease should still be active: %+v", mid)
	}

	// The straggler posts after the finish line: acknowledged but not
	// folded, and accounted out of the active set.
	bcpis := make([]float64, lb.Lease.Points)
	resp, err = coord.Result(&Result{LeaseID: lb.Lease.ID, Worker: "w2", CPIs: bcpis})
	if err != nil {
		t.Fatalf("straggler result: %v", err)
	}
	if resp.Accepted || !resp.Done {
		t.Fatalf("straggler verdict %+v, want accepted=false done=true", resp)
	}
	if got := coord.State().ActiveLeases; got != 0 {
		t.Fatalf("straggler left active-lease count at %d", got)
	}
	res, _ := coord.Final()
	if res.Est.N() != la.Lease.Points {
		t.Fatalf("straggler was folded: n=%d, want %d", res.Est.N(), la.Lease.Points)
	}
	if _, err := coord.Result(&Result{LeaseID: lb.Lease.ID, Worker: "w2", CPIs: bcpis}); err != ErrDuplicate {
		t.Fatalf("straggler repost: %v, want ErrDuplicate", err)
	}
	if got := reg.Counter("lpcluster_straggler_results_total", "").Value(); got != 1 {
		t.Fatalf("straggler counter %d, want 1", got)
	}
}

// TestOversizedLeaseClamp checks a lease can never cover more points than
// one /v1/points response may carry: Options.LeasePoints above
// lpserve.MaxBatchPoints is clamped, not passed through.
func TestOversizedLeaseClamp(t *testing.T) {
	st := synthStore(t, lpserve.MaxBatchPoints+200, 512, true)
	coord, err := NewCoordinator(st, RunSpec{RelErr: 0.01}, Options{LeasePoints: 100_000, Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if coord.opt.LeasePoints != lpserve.MaxBatchPoints {
		t.Fatalf("LeasePoints %d, want clamp to %d", coord.opt.LeasePoints, lpserve.MaxBatchPoints)
	}
	lr := coord.Acquire("w")
	if lr.Lease == nil {
		t.Fatalf("no lease: %+v", lr)
	}
	if lr.Lease.Kind != LeaseRange || lr.Lease.Points != lpserve.MaxBatchPoints {
		t.Fatalf("lease %+v, want a %d-point range", lr.Lease, lpserve.MaxBatchPoints)
	}
}

// TestStateReclaimsExpiredLeases: a scrape or /v1/run poll alone — no
// Acquire traffic — must surface a crashed worker's lease as pending, not
// leave it active forever.
func TestStateReclaimsExpiredLeases(t *testing.T) {
	st := synthStore(t, 40, 8, true)
	coord, err := NewCoordinator(st, RunSpec{}, Options{LeaseTTL: 30 * time.Millisecond, Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if lr := coord.Acquire("crash"); lr.Lease == nil {
		t.Fatalf("no lease: %+v", lr)
	}
	time.Sleep(60 * time.Millisecond)
	rs := coord.State()
	if rs.ActiveLeases != 0 || rs.PendingLeases != 1 || rs.Reassigned != 1 {
		t.Fatalf("State did not reclaim the expired lease: %+v", rs)
	}
}

// TestRunStateProgress covers GET /v1/run mid-run: the zero-fold state
// must round-trip JSON (regression: an empty estimate's relative CI is
// +Inf, which encoding/json refuses — the response body came back empty),
// and after one partial the live estimate and fold rate must be visible.
func TestRunStateProgress(t *testing.T) {
	st := synthStore(t, 60, 8, true)
	coord, err := NewCoordinator(st, RunSpec{RelErr: 0.01}, Options{LeasePoints: 20, Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	srv := lpserve.NewServerWithMetrics(st, obs.NewRegistry())
	coord.Mount(srv)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl, err := lpserve.Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	var rs RunState
	if err := cl.DoJSON(ctx, http.MethodGet, "/v1/run", nil, &rs); err != nil {
		t.Fatalf("zero-fold /v1/run failed to round-trip: %v", err)
	}
	if rs.Phase != PhaseRunning || rs.N != 0 || rs.RelCI != 0 || rs.Mean != 0 {
		t.Fatalf("zero-fold state %+v", rs)
	}
	if rs.TargetRelErr != 0.01 {
		t.Fatalf("TargetRelErr %v, want 0.01", rs.TargetRelErr)
	}

	// Fold one partial with real variance (far from the 1% target, and
	// below MinSampleSize, so the run keeps going).
	var lr LeaseResponse
	if err := cl.DoJSON(ctx, http.MethodPost, "/v1/leases", LeaseRequest{Worker: "w"}, &lr); err != nil {
		t.Fatal(err)
	}
	if lr.Lease == nil {
		t.Fatalf("no lease: %+v", lr)
	}
	cpis := make([]float64, lr.Lease.Points)
	for i := range cpis {
		cpis[i] = 1 + float64(i%5)
	}
	if err := cl.DoJSON(ctx, http.MethodPost, "/v1/results",
		&Result{LeaseID: lr.Lease.ID, Worker: "w", CPIs: cpis}, nil); err != nil {
		t.Fatal(err)
	}

	if err := cl.DoJSON(ctx, http.MethodGet, "/v1/run", nil, &rs); err != nil {
		t.Fatal(err)
	}
	if rs.Phase != PhaseRunning {
		t.Fatalf("run finished prematurely: %+v", rs)
	}
	if rs.N != lr.Lease.Points || rs.Mean <= 0 || rs.RelCI <= 0 {
		t.Fatalf("mid-run estimate not live: %+v", rs)
	}
	if rs.PointsPerSec <= 0 {
		t.Fatalf("mid-run fold rate missing: %+v", rs)
	}
}

func TestStoppingRequiresShuffledLibrary(t *testing.T) {
	st := synthStore(t, 16, 4, false)
	if _, err := NewCoordinator(st, RunSpec{RelErr: 0.1}, Options{}); err == nil {
		t.Fatal("unshuffled library accepted for an online-stopping run")
	}
	if _, err := NewCoordinator(st, RunSpec{}, Options{}); err != nil {
		t.Fatalf("whole-library run on unshuffled library refused: %v", err)
	}
}
