// Package lpcluster distributes a live-point sampling run across a fleet
// of worker processes — the paper's §7.2 scale-out claim made concrete:
// simulation turnaround drops from the length of one serial pass to the
// length of the slowest lease once points are simulated concurrently on
// many machines.
//
// The design is a lease-based coordinator. One coordinator owns the run:
// it partitions the library into leases with an expiry deadline, hands
// them to whichever worker asks (POST /v1/leases), folds posted partial
// statistics in completion order (POST /v1/results), applies the §6.1
// online stopping rule across the whole fleet, and reassigns leases whose
// workers crashed or stalled past the deadline. Workers are stateless
// pullers: fetch a lease, fetch the leased bytes through lpserve's raw
// gzip endpoints, simulate locally, post per-point CPIs back, repeat.
//
// Lease shapes follow the bias rules of DESIGN.md §3.3:
//
//   - Whole-library runs (no stopping rule) issue shard-major leases, so
//     workers ride the stored-gzip passthrough and every shard is
//     decompressed exactly once, by exactly one worker.
//   - Runs with an online stopping rule issue read-order range leases.
//     A truncated shard-major prefix groups physically consecutive
//     points, which on an index-reshuffled store is not an unbiased
//     sample; a read-order prefix is.
//
// Whole-library cluster runs are bit-equal to the local RunFile path: the
// coordinator records every per-point CPI at its read-order position and,
// once the library is exhausted, refolds them in read order — the same
// float operations, in the same order, as a serial local run. Online-
// stopped runs fold partials in completion order (like local parallel
// runs, the exact stopping point is scheduling-dependent but every prefix
// is a valid random sub-sample).
package lpcluster

import (
	"fmt"

	"livepoints/internal/sampling"
	"livepoints/internal/uarch"
)

// Run modes.
const (
	ModeAbsolute = "absolute" // single-configuration CPI estimate
	ModeMatched  = "matched"  // §6.2 matched-pair comparison
)

// Lease kinds.
const (
	LeaseShard = "shard" // one whole shard, fetched via raw-gzip passthrough
	LeaseRange = "range" // read-order positions [Start, Start+Count)
)

// RunSpec describes the experiment a cluster executes. Workers receive it
// from GET /v1/run and resolve the configurations locally, so the wire
// carries names and overrides, not microarchitectural state.
type RunSpec struct {
	Mode   string  `json:"mode"`   // ModeAbsolute (default) or ModeMatched
	Config string  `json:"config"` // "8way" (default) or "16way"
	Z      float64 `json:"z"`      // confidence quantile (default sampling.Z997)
	RelErr float64 `json:"relErr"` // online stopping target; 0 = whole library

	// Matched-mode experimental overrides, mirroring lpsim's flags.
	MemLat int `json:"memLat,omitempty"` // memory latency (cycles)
	L2KB   int `json:"l2kb,omitempty"`   // L2 size (KB)
	RUU    int `json:"ruu,omitempty"`    // RUU entries
	// NoImpactThreshold, when positive, also stops once the delta is
	// confidently within ±threshold of zero (the §6.2 screen).
	NoImpactThreshold float64 `json:"noImpactThreshold,omitempty"`
}

// withDefaults fills the defaulted fields in.
func (s RunSpec) withDefaults() RunSpec {
	if s.Mode == "" {
		s.Mode = ModeAbsolute
	}
	if s.Config == "" {
		s.Config = "8way"
	}
	if s.Z == 0 {
		s.Z = sampling.Z997
	}
	return s
}

// Configs resolves the spec's baseline and (for matched mode)
// experimental microarchitectural configurations.
func (s RunSpec) Configs() (base, exp uarch.Config, err error) {
	switch s.Config {
	case "", "8way":
		base = uarch.Config8Way()
	case "16way":
		base = uarch.Config16Way()
	default:
		return base, exp, fmt.Errorf("lpcluster: unknown configuration %q", s.Config)
	}
	exp = base
	if s.Mode == ModeMatched {
		exp.Name = "experimental"
		if s.MemLat > 0 {
			exp.Hier.MemLat = s.MemLat
		}
		if s.L2KB > 0 {
			exp.Hier.L2.SizeBytes = int64(s.L2KB) << 10
		}
		if s.RUU > 0 {
			exp.RUUSize = s.RUU
		}
	}
	return base, exp, nil
}

// LeaseRequest asks the coordinator for work.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// Lease is one unit of assigned work. The worker must post its Result
// before the lease's deadline (TTLMillis from issue) or the coordinator
// reassigns the same points under a new lease id.
//
// Epoch is the coordinator incarnation that issued the lease; the worker
// echoes it in the Result. A journaled coordinator that is restarted
// bumps its epoch, so results for pre-restart leases — whose ids may
// collide with fresh ones — are rejected with 410 instead of folded
// twice.
type Lease struct {
	ID        uint64 `json:"id"`
	Epoch     uint64 `json:"epoch"`
	Kind      string `json:"kind"` // LeaseShard or LeaseRange
	Shard     int    `json:"shard,omitempty"`
	Start     int    `json:"start,omitempty"` // range: first read-order position
	Count     int    `json:"count,omitempty"` // range: number of positions
	Points    int    `json:"points"`          // points covered (either kind)
	TTLMillis int64  `json:"ttlMillis"`
}

// LeaseResponse answers POST /v1/leases: a lease, a wait hint (work is
// outstanding but all of it is leased), or done (run complete — the
// worker should exit).
type LeaseResponse struct {
	Lease      *Lease `json:"lease,omitempty"`
	Wait       bool   `json:"wait,omitempty"`
	WaitMillis int64  `json:"waitMillis,omitempty"`
	Done       bool   `json:"done,omitempty"`
}

// Result carries one completed lease's partial statistics back to the
// coordinator: per-point CPIs in the lease's read order (both
// configurations for matched mode) plus aggregated counters and timings.
type Result struct {
	LeaseID uint64 `json:"leaseId"`
	// Epoch must echo the lease's Epoch; a stale epoch is rejected 410.
	Epoch  uint64 `json:"epoch"`
	Worker string `json:"worker"`

	CPIs     []float64 `json:"cpis,omitempty"`     // absolute mode
	BaseCPIs []float64 `json:"baseCpis,omitempty"` // matched mode
	ExpCPIs  []float64 `json:"expCpis,omitempty"`  // matched mode

	UnknownFetches uint64 `json:"unknownFetches,omitempty"`
	UnknownLoads   uint64 `json:"unknownLoads,omitempty"`
	CaptureErrors  uint64 `json:"captureErrors,omitempty"`
	LoadMillis     int64  `json:"loadMillis,omitempty"`
	SimMillis      int64  `json:"simMillis,omitempty"`
}

// ResultResponse answers POST /v1/results. Done tells the worker the run
// is complete (e.g. the stopping rule fired on this very partial).
type ResultResponse struct {
	Accepted bool `json:"accepted"`
	Done     bool `json:"done,omitempty"`
}

// Run phases reported by GET /v1/run.
const (
	PhaseRunning = "running"
	PhaseDone    = "done"
)

// RunState is the coordinator's public snapshot (GET /v1/run): live
// progress while running, the folded fleet-wide result once done.
// lpsim -coord polls it; workers read Spec from it at startup.
//
// The estimate fields (N, Mean, RelCI, and the matched-pair set) are
// populated in *both* phases: mid-run they report the fleet's running
// fold — a valid estimate over the prefix seen so far (§6.1) — so
// operators can watch the confidence interval close on TargetRelErr.
type RunState struct {
	Spec   RunSpec `json:"spec"`
	Points int     `json:"points"` // library size
	Phase  string  `json:"phase"`
	Epoch  uint64  `json:"epoch"` // coordinator incarnation (>0 after a journal resume)

	Done          int `json:"done"` // positions completed
	ActiveLeases  int `json:"activeLeases"`
	PendingLeases int `json:"pendingLeases"` // reclaimed, awaiting reassignment
	Reassigned    int `json:"reassigned"`    // expired leases reissued so far

	// Stopping-rule progress, live while running.
	TargetRelErr float64 `json:"targetRelErr,omitempty"` // 0 = whole library
	PointsPerSec float64 `json:"pointsPerSec,omitempty"` // fleet-wide fold rate
	EtaMillis    int64   `json:"etaMillis,omitempty"`    // whole-library runs only

	// Estimate so far (live) / final result (Phase == PhaseDone).
	Stopped         bool    `json:"stopped,omitempty"` // §6.1 rule fired
	StoppedNoImpact bool    `json:"stoppedNoImpact,omitempty"`
	N               int     `json:"n,omitempty"`
	Mean            float64 `json:"mean,omitempty"`
	RelCI           float64 `json:"relCI,omitempty"`
	BaseMean        float64 `json:"baseMean,omitempty"` // matched mode
	ExpMean         float64 `json:"expMean,omitempty"`
	RelDelta        float64 `json:"relDelta,omitempty"`
	DeltaCI         float64 `json:"deltaCI,omitempty"`

	UnknownFetches uint64 `json:"unknownFetches,omitempty"`
	UnknownLoads   uint64 `json:"unknownLoads,omitempty"`
	CaptureErrors  uint64 `json:"captureErrors,omitempty"`
	LoadMillis     int64  `json:"loadMillis,omitempty"`
	SimMillis      int64  `json:"simMillis,omitempty"`
	ElapsedMillis  int64  `json:"elapsedMillis,omitempty"`
}
