package lpcluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"livepoints/internal/livepoint"
	"livepoints/internal/lpserve"
	"livepoints/internal/obs"
	"livepoints/internal/uarch"
)

// Reconnect backoff while the coordinator is unreachable: capped
// exponential with full jitter, so a restarted coordinator is not hit by
// the whole fleet in the same instant.
const (
	reconnectBase = 500 * time.Millisecond
	reconnectCap  = 15 * time.Second
)

// Worker is one stateless lease puller: it reads the run spec from the
// coordinator, then loops acquire → fetch → simulate → post until the
// coordinator reports the run done. All coordinator traffic rides the
// lpserve client's retry policy (per-request timeouts, capped exponential
// backoff); beyond that, a worker outlives the coordinator itself — when
// the server becomes unreachable (crash, restart, network partition) the
// worker backs off with jitter, re-fetches the run spec once the
// coordinator answers again, and continues pulling. A journaled
// coordinator restart therefore needs no fleet restart: the worker's
// pre-restart lease is rejected with 410 (stale epoch), counted under
// Expired, and replaced by a fresh one.
//
// A worker that loses a lease race — its lease expired and was reassigned
// while it was still simulating — discards that work and moves on; the
// coordinator has already promised those points to a replacement.
type Worker struct {
	// ID names the worker in leases (for operability; uniqueness is not
	// required for correctness).
	ID string

	// Log, when set, receives a debug line per completed lease
	// (points/s for the lease, cumulative totals). Nil logs nothing.
	Log *obs.Logger

	// ReconnectBase and ReconnectCap override the coordinator-outage
	// backoff schedule. Zero values keep the production defaults; fault
	// soaks shrink them so a run spends its wall clock simulating, not
	// sleeping.
	ReconnectBase, ReconnectCap time.Duration

	cl      *lpserve.Client
	base    uarch.Config
	exp     uarch.Config
	matched bool

	draining atomic.Bool

	// Leases and Points count successfully posted work.
	Leases, Points int
	// Expired counts leases lost to expiry or a coordinator restart
	// (work discarded).
	Expired int
	// Reconnects counts coordinator outages ridden out.
	Reconnects int
}

// NewWorker returns a worker pulling from the coordinator behind cl's
// base URL (the same server that streams the library bytes).
func NewWorker(id string, cl *lpserve.Client) *Worker {
	return &Worker{ID: id, cl: cl}
}

// Drain asks the worker to stop at the next lease boundary: the
// in-flight lease (if any) is finished and posted, no further lease is
// acquired, and Run returns nil. Safe to call from any goroutine; this
// is the graceful half of lpworker's SIGTERM handling.
func (w *Worker) Drain() { w.draining.Store(true) }

// transient reports whether a coordinator request failed in a way worth
// outwaiting: a transport-level error (connection refused, reset, timeout
// — the coordinator may be restarting) or a 5xx verdict. 4xx responses
// and protocol errors — a 2xx reply whose body failed to decode — are
// not outages: the coordinator is up and answering, it is the exchange
// itself that is broken, and retrying the same exchange forever would
// pin the worker in a reconnect loop it can never leave.
func transient(err error) bool {
	var se *lpserve.StatusError
	if errors.As(err, &se) {
		return se.Code >= 500
	}
	var pe *lpserve.ProtocolError
	if errors.As(err, &pe) {
		return false
	}
	var te *lpserve.TransportError
	if errors.As(err, &te) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) ||
		errors.Is(err, context.DeadlineExceeded) {
		// Connection severed mid-body or a per-request timeout: the
		// classic shapes of a coordinator dying under us.
		return true
	}
	return false
}

// Run pulls and simulates leases until the run completes, Drain is
// called, the context is cancelled, or a non-recoverable error occurs.
// While the coordinator is unreachable it waits with jittered capped
// backoff and re-fetches the run spec before pulling again.
func (w *Worker) Run(ctx context.Context) error {
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	outage := 0
	for {
		if w.draining.Load() {
			return nil
		}
		var state RunState
		if err := w.cl.DoJSON(ctx, http.MethodGet, "/v1/run", nil, &state); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if transient(err) {
				if err := w.awaitCoordinator(ctx, rng, &outage, err); err != nil {
					return err
				}
				continue
			}
			return fmt.Errorf("lpcluster: worker %s: fetching run spec: %w", w.ID, err)
		}
		outage = 0
		base, exp, err := state.Spec.Configs()
		if err != nil {
			return fmt.Errorf("lpcluster: worker %s: %w", w.ID, err)
		}
		w.base, w.exp, w.matched = base, exp, state.Spec.Mode == ModeMatched

		err = w.pull(ctx)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if transient(err) {
			// Coordinator lost mid-pull: outwait it, then re-enter the
			// outer loop to re-read the (possibly resumed) run spec.
			if err := w.awaitCoordinator(ctx, rng, &outage, err); err != nil {
				return err
			}
			continue
		}
		return err
	}
}

// awaitCoordinator sleeps one jittered backoff step, logging the outage.
func (w *Worker) awaitCoordinator(ctx context.Context, rng *rand.Rand, outage *int, cause error) error {
	base, cap := w.ReconnectBase, w.ReconnectCap
	if base <= 0 {
		base = reconnectBase
	}
	if cap <= 0 {
		cap = reconnectCap
	}
	d := base << uint(*outage)
	if d > cap || d <= 0 {
		d = cap
	}
	// Full jitter: anywhere in (0, d], desynchronizing the fleet's
	// reconnect stampede.
	d = time.Duration(1 + rng.Int63n(int64(d)))
	if *outage == 0 {
		w.Reconnects++
	}
	*outage++
	w.Log.Warn("coordinator unreachable; backing off",
		"worker", w.ID, "wait", d, "attempt", *outage, "err", cause)
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(d):
		return nil
	}
}

// pull loops acquire → simulate → post until the run is done (returns
// nil), the worker is draining (nil), the context is cancelled, or a
// request fails (the caller decides whether the failure is an outage
// worth outwaiting).
func (w *Worker) pull(ctx context.Context) error {
	for {
		if w.draining.Load() {
			return nil
		}
		var lr LeaseResponse
		if err := w.cl.DoJSON(ctx, http.MethodPost, "/v1/leases", LeaseRequest{Worker: w.ID}, &lr); err != nil {
			return fmt.Errorf("lpcluster: worker %s: acquiring lease: %w", w.ID, err)
		}
		if lr.Done {
			return nil
		}
		if lr.Lease == nil {
			wait := time.Duration(lr.WaitMillis) * time.Millisecond
			if wait <= 0 {
				wait = 100 * time.Millisecond
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(wait):
			}
			continue
		}

		t0 := time.Now()
		res, err := w.simulate(ctx, lr.Lease)
		if err != nil {
			return fmt.Errorf("lpcluster: worker %s: lease %d: %w", w.ID, lr.Lease.ID, err)
		}
		var rr ResultResponse
		err = w.cl.DoJSON(ctx, http.MethodPost, "/v1/results", res, &rr)
		if lpserve.IsStatus(err, http.StatusGone) || lpserve.IsStatus(err, http.StatusConflict) {
			// Deadline blown mid-simulation, or the coordinator restarted
			// under this lease; either way the points belong to a newer
			// lease now.
			w.Expired++
			continue
		}
		if err != nil {
			return fmt.Errorf("lpcluster: worker %s: posting lease %d: %w", w.ID, lr.Lease.ID, err)
		}
		if rr.Accepted {
			w.Leases++
			w.Points += lr.Lease.Points
			if d := time.Since(t0); d > 0 {
				w.Log.Debug("lease done", "worker", w.ID, "lease", lr.Lease.ID,
					"points", lr.Lease.Points, "pointsPerSec", float64(lr.Lease.Points)/d.Seconds(),
					"totalPoints", w.Points)
			}
		}
		if rr.Done {
			return nil
		}
	}
}

// simulate fetches a lease's blobs (raw-gzip shard passthrough for shard
// leases, chunked ranged fetch for range leases — the server caps one
// /v1/points response at MaxBatchPoints, so a range lease larger than the
// cap arrives in several batches) and runs them locally.
func (w *Worker) simulate(ctx context.Context, l *Lease) (*Result, error) {
	t0 := time.Now()
	var blobs [][]byte
	var err error
	if l.Kind == LeaseShard {
		blobs, err = w.cl.ShardBlobs(ctx, l.Shard)
	} else {
		blobs, err = w.cl.FetchRange(ctx, l.Start, l.Count)
	}
	if err != nil {
		return nil, err
	}
	if len(blobs) != l.Points {
		return nil, fmt.Errorf("lease covers %d points but fetch returned %d", l.Points, len(blobs))
	}
	fetch := time.Since(t0)

	res := &Result{LeaseID: l.ID, Epoch: l.Epoch, Worker: w.ID}
	if w.matched {
		baseCPIs, expCPIs, rr, err := livepoint.SimBlobsMatched(blobs, w.base, w.exp)
		if err != nil {
			return nil, err
		}
		res.BaseCPIs, res.ExpCPIs = baseCPIs, expCPIs
		res.UnknownFetches = rr.UnknownFetches
		res.UnknownLoads = rr.UnknownLoads
		res.CaptureErrors = rr.CaptureErrors
		res.LoadMillis = (fetch + rr.LoadTime).Milliseconds()
		res.SimMillis = rr.SimTime.Milliseconds()
	} else {
		cpis, rr, err := livepoint.SimBlobs(blobs, w.base)
		if err != nil {
			return nil, err
		}
		res.CPIs = cpis
		res.UnknownFetches = rr.UnknownFetches
		res.UnknownLoads = rr.UnknownLoads
		res.CaptureErrors = rr.CaptureErrors
		res.LoadMillis = (fetch + rr.LoadTime).Milliseconds()
		res.SimMillis = rr.SimTime.Milliseconds()
	}
	return res, nil
}
