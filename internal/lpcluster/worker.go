package lpcluster

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"livepoints/internal/livepoint"
	"livepoints/internal/lpserve"
	"livepoints/internal/obs"
	"livepoints/internal/uarch"
)

// Worker is one stateless lease puller: it reads the run spec from the
// coordinator, then loops acquire → fetch → simulate → post until the
// coordinator reports the run done. All coordinator traffic rides the
// lpserve client's retry policy (per-request timeouts, capped exponential
// backoff), so transient network failures and coordinator restarts under
// a load balancer do not kill the fleet.
//
// A worker that loses a lease race — its lease expired and was reassigned
// while it was still simulating — discards that work and moves on; the
// coordinator has already promised those points to a replacement.
type Worker struct {
	// ID names the worker in leases (for operability; uniqueness is not
	// required for correctness).
	ID string

	// Log, when set, receives a debug line per completed lease
	// (points/s for the lease, cumulative totals). Nil logs nothing.
	Log *obs.Logger

	cl      *lpserve.Client
	base    uarch.Config
	exp     uarch.Config
	matched bool

	// Leases and Points count successfully posted work.
	Leases, Points int
	// Expired counts leases lost to expiry (work discarded).
	Expired int
}

// NewWorker returns a worker pulling from the coordinator behind cl's
// base URL (the same server that streams the library bytes).
func NewWorker(id string, cl *lpserve.Client) *Worker {
	return &Worker{ID: id, cl: cl}
}

// Run pulls and simulates leases until the run completes, the context is
// cancelled, or a non-recoverable error occurs.
func (w *Worker) Run(ctx context.Context) error {
	var state RunState
	if err := w.cl.DoJSON(ctx, http.MethodGet, "/v1/run", nil, &state); err != nil {
		return fmt.Errorf("lpcluster: worker %s: fetching run spec: %w", w.ID, err)
	}
	base, exp, err := state.Spec.Configs()
	if err != nil {
		return fmt.Errorf("lpcluster: worker %s: %w", w.ID, err)
	}
	w.base, w.exp, w.matched = base, exp, state.Spec.Mode == ModeMatched

	for {
		var lr LeaseResponse
		if err := w.cl.DoJSON(ctx, http.MethodPost, "/v1/leases", LeaseRequest{Worker: w.ID}, &lr); err != nil {
			return fmt.Errorf("lpcluster: worker %s: acquiring lease: %w", w.ID, err)
		}
		if lr.Done {
			return nil
		}
		if lr.Lease == nil {
			wait := time.Duration(lr.WaitMillis) * time.Millisecond
			if wait <= 0 {
				wait = 100 * time.Millisecond
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(wait):
			}
			continue
		}

		t0 := time.Now()
		res, err := w.simulate(ctx, lr.Lease)
		if err != nil {
			return fmt.Errorf("lpcluster: worker %s: lease %d: %w", w.ID, lr.Lease.ID, err)
		}
		var rr ResultResponse
		err = w.cl.DoJSON(ctx, http.MethodPost, "/v1/results", res, &rr)
		if lpserve.IsStatus(err, http.StatusGone) || lpserve.IsStatus(err, http.StatusConflict) {
			// Deadline blown mid-simulation; the points were reassigned.
			w.Expired++
			continue
		}
		if err != nil {
			return fmt.Errorf("lpcluster: worker %s: posting lease %d: %w", w.ID, lr.Lease.ID, err)
		}
		if rr.Accepted {
			w.Leases++
			w.Points += lr.Lease.Points
			if d := time.Since(t0); d > 0 {
				w.Log.Debug("lease done", "worker", w.ID, "lease", lr.Lease.ID,
					"points", lr.Lease.Points, "pointsPerSec", float64(lr.Lease.Points)/d.Seconds(),
					"totalPoints", w.Points)
			}
		}
		if rr.Done {
			return nil
		}
	}
}

// simulate fetches a lease's blobs (raw-gzip shard passthrough for shard
// leases, chunked ranged fetch for range leases — the server caps one
// /v1/points response at MaxBatchPoints, so a range lease larger than the
// cap arrives in several batches) and runs them locally.
func (w *Worker) simulate(ctx context.Context, l *Lease) (*Result, error) {
	t0 := time.Now()
	var blobs [][]byte
	var err error
	if l.Kind == LeaseShard {
		blobs, err = w.cl.ShardBlobs(ctx, l.Shard)
	} else {
		blobs, err = w.cl.FetchRange(ctx, l.Start, l.Count)
	}
	if err != nil {
		return nil, err
	}
	if len(blobs) != l.Points {
		return nil, fmt.Errorf("lease covers %d points but fetch returned %d", l.Points, len(blobs))
	}
	fetch := time.Since(t0)

	res := &Result{LeaseID: l.ID, Worker: w.ID}
	if w.matched {
		baseCPIs, expCPIs, rr, err := livepoint.SimBlobsMatched(blobs, w.base, w.exp)
		if err != nil {
			return nil, err
		}
		res.BaseCPIs, res.ExpCPIs = baseCPIs, expCPIs
		res.UnknownFetches = rr.UnknownFetches
		res.UnknownLoads = rr.UnknownLoads
		res.CaptureErrors = rr.CaptureErrors
		res.LoadMillis = (fetch + rr.LoadTime).Milliseconds()
		res.SimMillis = rr.SimTime.Milliseconds()
	} else {
		cpis, rr, err := livepoint.SimBlobs(blobs, w.base)
		if err != nil {
			return nil, err
		}
		res.CPIs = cpis
		res.UnknownFetches = rr.UnknownFetches
		res.UnknownLoads = rr.UnknownLoads
		res.CaptureErrors = rr.CaptureErrors
		res.LoadMillis = (fetch + rr.LoadTime).Milliseconds()
		res.SimMillis = rr.SimTime.Milliseconds()
	}
	return res, nil
}
