package isa

import (
	"encoding/binary"
	"fmt"
)

// EncodeInst serializes one instruction into the fixed 16-byte wire form
// used when instruction text is embedded in a live-point:
//
//	byte 0      opcode
//	byte 1..3   rd, rs1, rs2
//	byte 4..7   reserved (zero)
//	byte 8..15  imm, little-endian two's complement
func EncodeInst(in Inst, dst []byte) {
	_ = dst[InstBytes-1]
	dst[0] = byte(in.Op)
	dst[1] = in.Rd
	dst[2] = in.Rs1
	dst[3] = in.Rs2
	dst[4], dst[5], dst[6], dst[7] = 0, 0, 0, 0
	binary.LittleEndian.PutUint64(dst[8:16], uint64(in.Imm))
}

// DecodeInst deserializes one instruction from its 16-byte wire form.
func DecodeInst(src []byte) (Inst, error) {
	if len(src) < InstBytes {
		return Inst{}, fmt.Errorf("isa: short instruction encoding: %d bytes", len(src))
	}
	in := Inst{
		Op:  Op(src[0]),
		Rd:  src[1],
		Rs1: src[2],
		Rs2: src[3],
		Imm: int64(binary.LittleEndian.Uint64(src[8:16])),
	}
	if !in.Op.Valid() {
		return Inst{}, fmt.Errorf("isa: invalid opcode %d", src[0])
	}
	return in, nil
}

// EncodeText serializes a run of instructions into contiguous wire form.
func EncodeText(text []Inst) []byte {
	buf := make([]byte, len(text)*InstBytes)
	for i := range text {
		EncodeInst(text[i], buf[i*InstBytes:])
	}
	return buf
}

// DecodeText deserializes a contiguous run of instructions.
func DecodeText(buf []byte) ([]Inst, error) {
	return AppendText(nil, buf)
}

// AppendText deserializes a contiguous run of instructions, appending them
// to dst and returning the extended slice. Passing a slice with spare
// capacity (typically text[:0] from a previous decode) keeps the call
// allocation-free in steady state.
func AppendText(dst []Inst, buf []byte) ([]Inst, error) {
	if len(buf)%InstBytes != 0 {
		return nil, fmt.Errorf("isa: text length %d not a multiple of %d", len(buf), InstBytes)
	}
	n := len(buf) / InstBytes
	for i := 0; i < n; i++ {
		in, err := DecodeInst(buf[i*InstBytes:])
		if err != nil {
			return nil, fmt.Errorf("isa: instruction %d: %w", i, err)
		}
		dst = append(dst, in)
	}
	return dst, nil
}
