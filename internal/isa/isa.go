// Package isa defines the synthetic 64-bit RISC instruction set executed by
// both the functional and the detailed simulators.
//
// The ISA deliberately mirrors the subset of a classic RISC (Alpha-like)
// machine that matters for warming studies: integer and floating-point
// arithmetic with distinct functional-unit classes and latencies, loads and
// stores with base+displacement addressing, conditional branches, direct and
// indirect jumps, and call/return for return-address-stack behaviour.
//
// Instructions are held pre-decoded in memory as Inst values. A fixed-width
// 16-byte binary encoding (see codec.go) is used when instruction text is
// stored inside live-points, so that a live-point is a self-contained byte
// artifact exactly as in the paper.
package isa

import "fmt"

// Op enumerates the operations of the synthetic ISA.
type Op uint8

// Operation codes. The order groups operations by functional-unit class;
// see Class for the mapping.
const (
	// OpNop performs no work but still occupies pipeline slots.
	OpNop Op = iota

	// Integer ALU operations (class ClassIntALU).
	OpAdd  // rd = rs1 + rs2
	OpSub  // rd = rs1 - rs2
	OpAnd  // rd = rs1 & rs2
	OpOr   // rd = rs1 | rs2
	OpXor  // rd = rs1 ^ rs2
	OpShl  // rd = rs1 << (rs2 & 63)
	OpShr  // rd = rs1 >> (rs2 & 63)
	OpAddI // rd = rs1 + imm
	OpAndI // rd = rs1 & imm
	OpShlI // rd = rs1 << (imm & 63)
	OpShrI // rd = rs1 >> (imm & 63)
	OpLui  // rd = imm (load immediate)
	OpSlt  // rd = (rs1 < rs2) ? 1 : 0, signed
	OpSltI // rd = (rs1 < imm) ? 1 : 0, signed

	// Integer multiply / divide (class ClassIntMul).
	OpMul // rd = rs1 * rs2
	OpDiv // rd = rs1 / rs2 (signed; divide by zero yields 0)
	OpRem // rd = rs1 % rs2 (signed; modulo zero yields 0)

	// Floating point (bit patterns live in the shared register file).
	OpFAdd // rd = rs1 +. rs2   (class ClassFPALU)
	OpFSub // rd = rs1 -. rs2   (class ClassFPALU)
	OpFMul // rd = rs1 *. rs2   (class ClassFPMul)
	OpFDiv // rd = rs1 /. rs2   (class ClassFPMul)
	OpFCmp // rd = (rs1 <. rs2) ? 1 : 0 (class ClassFPALU)

	// Memory operations (class ClassMem). Effective address rs1 + imm.
	OpLoad  // rd = mem64[rs1+imm]
	OpStore // mem64[rs1+imm] = rs2

	// Control transfer (class ClassBranch).
	OpBeq  // if rs1 == rs2: pc = imm (absolute instruction index)
	OpBne  // if rs1 != rs2: pc = imm
	OpBltz // if int64(rs1) < 0: pc = imm
	OpBgez // if int64(rs1) >= 0: pc = imm
	OpJmp  // pc = imm (unconditional direct)
	OpJr   // pc = rs1 (unconditional indirect)
	OpCall // rd = pc+1; pc = imm (direct call, rd is the link register)
	OpRet  // pc = rs1 (return; semantically Jr but hints the RAS)

	// OpHalt terminates the program.
	OpHalt

	opCount // sentinel; must be last
)

// NumOps is the number of defined operations.
const NumOps = int(opCount)

// Class is the functional-unit class of an operation, which determines
// issue latency and which functional unit pool executes it.
type Class uint8

// Functional-unit classes.
const (
	ClassIntALU Class = iota // single-cycle integer
	ClassIntMul              // integer multiply/divide
	ClassFPALU               // floating-point add/compare
	ClassFPMul               // floating-point multiply/divide
	ClassMem                 // loads and stores (address generation on IntALU port)
	ClassBranch              // control transfer (resolved on an IntALU)
	ClassNone                // nop, halt
)

// NumClasses is the number of functional-unit classes.
const NumClasses = int(ClassNone) + 1

var opClasses = [opCount]Class{
	OpNop:   ClassNone,
	OpAdd:   ClassIntALU,
	OpSub:   ClassIntALU,
	OpAnd:   ClassIntALU,
	OpOr:    ClassIntALU,
	OpXor:   ClassIntALU,
	OpShl:   ClassIntALU,
	OpShr:   ClassIntALU,
	OpAddI:  ClassIntALU,
	OpAndI:  ClassIntALU,
	OpShlI:  ClassIntALU,
	OpShrI:  ClassIntALU,
	OpLui:   ClassIntALU,
	OpSlt:   ClassIntALU,
	OpSltI:  ClassIntALU,
	OpMul:   ClassIntMul,
	OpDiv:   ClassIntMul,
	OpRem:   ClassIntMul,
	OpFAdd:  ClassFPALU,
	OpFSub:  ClassFPALU,
	OpFMul:  ClassFPMul,
	OpFDiv:  ClassFPMul,
	OpFCmp:  ClassFPALU,
	OpLoad:  ClassMem,
	OpStore: ClassMem,
	OpBeq:   ClassBranch,
	OpBne:   ClassBranch,
	OpBltz:  ClassBranch,
	OpBgez:  ClassBranch,
	OpJmp:   ClassBranch,
	OpJr:    ClassBranch,
	OpCall:  ClassBranch,
	OpRet:   ClassBranch,
	OpHalt:  ClassNone,
}

var opNames = [opCount]string{
	OpNop: "nop", OpAdd: "add", OpSub: "sub", OpAnd: "and", OpOr: "or",
	OpXor: "xor", OpShl: "shl", OpShr: "shr", OpAddI: "addi", OpAndI: "andi",
	OpShlI: "shli", OpShrI: "shri", OpLui: "lui", OpSlt: "slt", OpSltI: "slti",
	OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv", OpFCmp: "fcmp",
	OpLoad: "ld", OpStore: "st",
	OpBeq: "beq", OpBne: "bne", OpBltz: "bltz", OpBgez: "bgez",
	OpJmp: "jmp", OpJr: "jr", OpCall: "call", OpRet: "ret",
	OpHalt: "halt",
}

// Class reports the functional-unit class of the operation.
func (o Op) Class() Class {
	if int(o) >= NumOps {
		return ClassNone
	}
	return opClasses[o]
}

// Valid reports whether o is a defined operation.
func (o Op) Valid() bool { return int(o) < NumOps }

// String returns the assembler mnemonic of the operation.
func (o Op) String() string {
	if int(o) >= NumOps {
		return fmt.Sprintf("op(%d)", uint8(o))
	}
	return opNames[o]
}

// IsBranch reports whether the operation is any control transfer.
func (o Op) IsBranch() bool { return o.Class() == ClassBranch }

// IsCondBranch reports whether the operation is a conditional branch.
func (o Op) IsCondBranch() bool {
	switch o {
	case OpBeq, OpBne, OpBltz, OpBgez:
		return true
	}
	return false
}

// IsUncond reports whether the operation is an unconditional control transfer.
func (o Op) IsUncond() bool {
	switch o {
	case OpJmp, OpJr, OpCall, OpRet:
		return true
	}
	return false
}

// IsIndirect reports whether the branch target comes from a register.
func (o Op) IsIndirect() bool { return o == OpJr || o == OpRet }

// IsMem reports whether the operation accesses data memory.
func (o Op) IsMem() bool { return o == OpLoad || o == OpStore }

// NumRegs is the number of architectural registers. Register 0 is hardwired
// to zero, mirroring classic RISC machines.
const NumRegs = 64

// RegZero is the hardwired zero register.
const RegZero = 0

// RegLink is the conventional link register used by generated code for
// call/return sequences.
const RegLink = 63

// Inst is one pre-decoded instruction.
//
// Rd is the destination register (0 if none), Rs1/Rs2 the sources. Imm is an
// immediate operand; for direct control transfer it is an absolute
// instruction index, for memory operations a byte displacement.
type Inst struct {
	Op  Op
	Rd  uint8
	Rs1 uint8
	Rs2 uint8
	Imm int64
}

// WritesReg reports whether the instruction writes Rd.
func (in *Inst) WritesReg() bool {
	switch in.Op.Class() {
	case ClassIntALU, ClassIntMul, ClassFPALU, ClassFPMul:
		return in.Rd != RegZero
	case ClassMem:
		return in.Op == OpLoad && in.Rd != RegZero
	case ClassBranch:
		return in.Op == OpCall && in.Rd != RegZero
	}
	return false
}

// SrcRegs appends the source registers read by the instruction to dst and
// returns the extended slice. Register 0 reads are included (they are free
// but uniform handling keeps the pipeline model simple).
func (in *Inst) SrcRegs(dst []uint8) []uint8 {
	switch in.Op {
	case OpNop, OpHalt, OpLui, OpJmp, OpCall:
		return dst
	case OpAddI, OpAndI, OpShlI, OpShrI, OpSltI, OpLoad, OpBltz, OpBgez, OpJr, OpRet:
		return append(dst, in.Rs1)
	case OpStore:
		return append(dst, in.Rs1, in.Rs2)
	default:
		return append(dst, in.Rs1, in.Rs2)
	}
}

// String renders the instruction in a readable assembler-like form.
func (in *Inst) String() string {
	switch {
	case in.Op == OpNop || in.Op == OpHalt:
		return in.Op.String()
	case in.Op == OpLoad:
		return fmt.Sprintf("%s r%d, [r%d%+d]", in.Op, in.Rd, in.Rs1, in.Imm)
	case in.Op == OpStore:
		return fmt.Sprintf("%s r%d, [r%d%+d]", in.Op, in.Rs2, in.Rs1, in.Imm)
	case in.Op.IsCondBranch():
		return fmt.Sprintf("%s r%d, r%d, @%d", in.Op, in.Rs1, in.Rs2, in.Imm)
	case in.Op == OpJmp:
		return fmt.Sprintf("%s @%d", in.Op, in.Imm)
	case in.Op == OpCall:
		return fmt.Sprintf("%s r%d, @%d", in.Op, in.Rd, in.Imm)
	case in.Op == OpJr || in.Op == OpRet:
		return fmt.Sprintf("%s r%d", in.Op, in.Rs1)
	case in.Op == OpLui:
		return fmt.Sprintf("%s r%d, %d", in.Op, in.Rd, in.Imm)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d(%d)", in.Op, in.Rd, in.Rs1, in.Rs2, in.Imm)
	}
}

// InstBytes is the size of one instruction in the simulated address space.
// Instruction fetch, I-cache behaviour and the live-point text sections all
// use this width.
const InstBytes = 16

// TextBase is the base byte address of the text segment in the simulated
// address space. PCToAddr and AddrToPC convert between instruction indices
// (used by the simulators) and byte addresses (used by the I-cache and TLB).
const TextBase = 0x0040_0000

// DataBase is the base byte address of the statically generated data
// segment.
const DataBase = 0x1000_0000

// StackBase is the base byte address of the downward-growing stack region
// used by generated programs.
const StackBase = 0x7fff_0000

// PCToAddr converts an instruction index to its byte address.
func PCToAddr(pc uint64) uint64 { return TextBase + pc*InstBytes }

// AddrToPC converts a text byte address to an instruction index.
func AddrToPC(addr uint64) uint64 { return (addr - TextBase) / InstBytes }
