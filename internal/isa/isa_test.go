package isa

import (
	"testing"
	"testing/quick"
)

func TestOpClassesComplete(t *testing.T) {
	for op := 0; op < NumOps; op++ {
		o := Op(op)
		if o.String() == "" {
			t.Errorf("op %d has no mnemonic", op)
		}
		if o.Class() > ClassNone {
			t.Errorf("op %s has invalid class", o)
		}
	}
	if Op(200).Valid() {
		t.Error("op 200 should be invalid")
	}
}

func TestBranchClassification(t *testing.T) {
	cond := []Op{OpBeq, OpBne, OpBltz, OpBgez}
	uncond := []Op{OpJmp, OpJr, OpCall, OpRet}
	for _, o := range cond {
		if !o.IsBranch() || !o.IsCondBranch() || o.IsUncond() {
			t.Errorf("%s misclassified", o)
		}
	}
	for _, o := range uncond {
		if !o.IsBranch() || o.IsCondBranch() || !o.IsUncond() {
			t.Errorf("%s misclassified", o)
		}
	}
	if !OpJr.IsIndirect() || !OpRet.IsIndirect() || OpJmp.IsIndirect() {
		t.Error("indirect classification broken")
	}
	if !OpLoad.IsMem() || !OpStore.IsMem() || OpAdd.IsMem() {
		t.Error("memory classification broken")
	}
}

func TestWritesReg(t *testing.T) {
	cases := []struct {
		in   Inst
		want bool
	}{
		{Inst{Op: OpAdd, Rd: 5}, true},
		{Inst{Op: OpAdd, Rd: RegZero}, false},
		{Inst{Op: OpLoad, Rd: 5}, true},
		{Inst{Op: OpStore, Rs1: 5, Rs2: 6}, false},
		{Inst{Op: OpCall, Rd: RegLink}, true},
		{Inst{Op: OpJmp}, false},
		{Inst{Op: OpNop}, false},
		{Inst{Op: OpHalt}, false},
		{Inst{Op: OpFMul, Rd: 9}, true},
	}
	for _, c := range cases {
		if got := c.in.WritesReg(); got != c.want {
			t.Errorf("%s: WritesReg=%v, want %v", c.in.String(), got, c.want)
		}
	}
}

func TestSrcRegs(t *testing.T) {
	var buf [2]uint8
	if got := (&Inst{Op: OpStore, Rs1: 3, Rs2: 4}).SrcRegs(buf[:0]); len(got) != 2 {
		t.Errorf("store should read two registers, got %v", got)
	}
	if got := (&Inst{Op: OpLoad, Rs1: 3}).SrcRegs(buf[:0]); len(got) != 1 || got[0] != 3 {
		t.Errorf("load should read base register, got %v", got)
	}
	if got := (&Inst{Op: OpJmp}).SrcRegs(buf[:0]); len(got) != 0 {
		t.Errorf("jmp reads no registers, got %v", got)
	}
	if got := (&Inst{Op: OpLui, Rd: 1}).SrcRegs(buf[:0]); len(got) != 0 {
		t.Errorf("lui reads no registers, got %v", got)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	f := func(op uint8, rd, rs1, rs2 uint8, imm int64) bool {
		in := Inst{Op: Op(op % uint8(NumOps)), Rd: rd, Rs1: rs1, Rs2: rs2, Imm: imm}
		var buf [InstBytes]byte
		EncodeInst(in, buf[:])
		got, err := DecodeInst(buf[:])
		return err == nil && got == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCodecRejectsBadInput(t *testing.T) {
	if _, err := DecodeInst(make([]byte, 3)); err == nil {
		t.Error("short buffer accepted")
	}
	bad := make([]byte, InstBytes)
	bad[0] = 250 // invalid opcode
	if _, err := DecodeInst(bad); err == nil {
		t.Error("invalid opcode accepted")
	}
	if _, err := DecodeText(make([]byte, InstBytes+1)); err == nil {
		t.Error("misaligned text accepted")
	}
}

func TestTextRoundTrip(t *testing.T) {
	text := []Inst{
		{Op: OpLui, Rd: 1, Imm: 12345},
		{Op: OpLoad, Rd: 2, Rs1: 1, Imm: -8},
		{Op: OpBne, Rs1: 2, Rs2: 0, Imm: 7},
		{Op: OpHalt},
	}
	got, err := DecodeText(EncodeText(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(text) {
		t.Fatalf("length %d, want %d", len(got), len(text))
	}
	for i := range text {
		if got[i] != text[i] {
			t.Fatalf("instruction %d: %v != %v", i, got[i], text[i])
		}
	}
}

func TestPCAddrConversion(t *testing.T) {
	for _, pc := range []uint64{0, 1, 1000, 1 << 20} {
		if AddrToPC(PCToAddr(pc)) != pc {
			t.Fatalf("pc %d does not round-trip", pc)
		}
	}
	if PCToAddr(0) != TextBase {
		t.Error("pc 0 should map to the text base")
	}
}
