// Package csr implements the adaptable warmed-cache representations of
// §4.3: the Cache Set Record (CSR), which stores the recency-ordered
// resident blocks of a maximum cache configuration and can exactly
// reconstruct any smaller and/or less associative configuration under LRU;
// and the Memory Timestamp Record (MTR), which stores the last-access
// timestamp of every block ever touched and trades footprint-proportional
// storage for geometry-independent reconstruction.
package csr

import (
	"fmt"
	"sort"

	"livepoints/internal/cache"
)

// Entry is one recorded cache block: full block address, last-access
// timestamp in the capture clock domain, and dirtiness.
type Entry struct {
	Block uint64
	Last  uint64
	Dirty bool
}

// SetRecord is a Cache Set Record: the visible state of a cache captured
// at its maximum configuration. Storage is proportional to the captured
// cache's tag array, independent of application footprint.
type SetRecord struct {
	Cfg     cache.Config // the configuration the state was captured at
	Entries []Entry      // sorted by (Block) for deterministic encoding
}

// Capture snapshots a cache's visible state into a SetRecord.
func Capture(c *cache.Cache) *SetRecord {
	sr := &SetRecord{Cfg: c.Config()}
	c.VisitLines(func(l cache.Line) {
		sr.Entries = append(sr.Entries, Entry{Block: l.Block, Last: l.Last, Dirty: l.Dirty})
	})
	sort.Slice(sr.Entries, func(i, j int) bool { return sr.Entries[i].Block < sr.Entries[j].Block })
	return sr
}

// CanReconstruct reports whether the target geometry is exactly
// reconstructible from this record: same block size, no more sets, and no
// higher associativity than the captured configuration (the LRU
// set-refinement property).
func (sr *SetRecord) CanReconstruct(target cache.Config) error {
	if err := target.Validate(); err != nil {
		return err
	}
	if target.LineBytes != sr.Cfg.LineBytes {
		return fmt.Errorf("csr: target line size %d differs from captured %d", target.LineBytes, sr.Cfg.LineBytes)
	}
	if target.Sets() > sr.Cfg.Sets() {
		return fmt.Errorf("csr: target has %d sets, captured only %d", target.Sets(), sr.Cfg.Sets())
	}
	if target.Assoc > sr.Cfg.Assoc {
		return fmt.Errorf("csr: target associativity %d exceeds captured %d", target.Assoc, sr.Cfg.Assoc)
	}
	return nil
}

// Reconstruct builds a warmed cache of the target configuration from the
// record. The target must satisfy CanReconstruct. Under LRU the
// reconstructed contents and recency are identical to having warmed the
// target configuration directly (verified by tests against direct
// warming). Dirty bits are a conservative superset: a smaller cache may
// have evicted (written back) and re-fetched a block clean, while the
// larger captured configuration still holds it dirty. This can only
// overstate writeback traffic, never change hits or misses.
func (sr *SetRecord) Reconstruct(target cache.Config) (*cache.Cache, error) {
	if err := sr.CanReconstruct(target); err != nil {
		return nil, err
	}
	c := cache.New(target)
	// Install preserves the most recent Assoc blocks per target set; feed
	// entries in any order and let recency-aware installation sort it out.
	for _, e := range sr.Entries {
		c.Install(cache.Line{Block: e.Block, Valid: true, Dirty: e.Dirty, Last: e.Last})
	}
	return c, nil
}

// ReconstructInto is Reconstruct into a caller-owned cache: the cache is
// reset to the target configuration (reusing its line array) and the
// record's entries are installed. The resulting state is identical to
// Reconstruct's — per-worker arenas use this to rebuild warmed caches
// with no per-point allocation.
func (sr *SetRecord) ReconstructInto(c *cache.Cache, target cache.Config) error {
	if err := sr.CanReconstruct(target); err != nil {
		return err
	}
	if err := c.ResetTo(target); err != nil {
		return err
	}
	for _, e := range sr.Entries {
		c.Install(cache.Line{Block: e.Block, Valid: true, Dirty: e.Dirty, Last: e.Last})
	}
	return nil
}

// Restrict returns a copy of the record containing only blocks present in
// keep (block addresses at this record's granularity). Used to build the
// paper's "restricted live-state" ablation (§5, Figure 5), which drops
// microarchitectural state not touched by the correct path.
func (sr *SetRecord) Restrict(keep map[uint64]bool) *SetRecord {
	out := &SetRecord{Cfg: sr.Cfg}
	for _, e := range sr.Entries {
		if keep[e.Block] {
			out.Entries = append(out.Entries, e)
		}
	}
	return out
}

// Len returns the number of recorded blocks.
func (sr *SetRecord) Len() int { return len(sr.Entries) }

// StorageBytes returns the uncompressed storage cost: block address,
// timestamp and dirty flag per entry (the paper's "same storage as the tag
// array" property).
func (sr *SetRecord) StorageBytes() int { return len(sr.Entries) * 17 }

// MTR is a Memory Timestamp Record: last-access timestamp and dirtiness of
// every block ever touched, at a fixed block granularity. Storage grows
// with application footprint; reconstruction works for any geometry with
// line size equal to the record granularity.
type MTR struct {
	LineBytes int64
	blocks    map[uint64]Entry
	clock     uint64
}

// NewMTR returns an empty record at the given block granularity.
func NewMTR(lineBytes int64) *MTR {
	return &MTR{LineBytes: lineBytes, blocks: make(map[uint64]Entry)}
}

// Touch records an access to a byte address.
func (m *MTR) Touch(addr uint64, write bool) {
	m.clock++
	b := addr / uint64(m.LineBytes)
	e := m.blocks[b]
	e.Block = b
	e.Last = m.clock
	if write {
		e.Dirty = true
	}
	m.blocks[b] = e
}

// Len returns the number of distinct blocks recorded.
func (m *MTR) Len() int { return len(m.blocks) }

// StorageBytes returns the uncompressed storage cost.
func (m *MTR) StorageBytes() int { return len(m.blocks) * 17 }

// Reconstruct builds a warmed cache of the target configuration by ranking
// the recorded blocks per target set by recency. For a single-level cache
// observing the raw access stream this matches direct warming; for lower
// hierarchy levels (which observe a filtered stream) it is the
// approximation quantified by the CSR-vs-MTR ablation bench.
func (m *MTR) Reconstruct(target cache.Config) (*cache.Cache, error) {
	if err := target.Validate(); err != nil {
		return nil, err
	}
	if target.LineBytes != m.LineBytes {
		return nil, fmt.Errorf("csr: MTR granularity %d differs from target line %d", m.LineBytes, target.LineBytes)
	}
	c := cache.New(target)
	// Deterministic order: sort blocks, then install (recency decides).
	blocks := make([]Entry, 0, len(m.blocks))
	for _, e := range m.blocks {
		blocks = append(blocks, e)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].Block < blocks[j].Block })
	for _, e := range blocks {
		c.Install(cache.Line{Block: e.Block, Valid: true, Dirty: e.Dirty, Last: e.Last})
	}
	return c, nil
}
