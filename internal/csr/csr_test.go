package csr

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"livepoints/internal/cache"
)

// warmWithStream drives an access stream into a cache.
func warmWithStream(c *cache.Cache, addrs []uint64, writes []bool) {
	for i, a := range addrs {
		c.Access(a, writes[i])
	}
}

// randomStream builds a deterministic pseudo-random access stream with
// locality (mix of sequential runs and random jumps).
func randomStream(seed int64, n int, span uint64) ([]uint64, []bool) {
	rng := rand.New(rand.NewSource(seed))
	addrs := make([]uint64, n)
	writes := make([]bool, n)
	cur := uint64(0)
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0:
			cur = rng.Uint64() % span
		default:
			cur = (cur + 64) % span
		}
		addrs[i] = cur &^ 7
		writes[i] = rng.Intn(4) == 0
	}
	return addrs, writes
}

func lineSet(c *cache.Cache) []cache.Line {
	var ls []cache.Line
	c.VisitLines(func(l cache.Line) { ls = append(ls, l) })
	sort.Slice(ls, func(i, j int) bool { return ls[i].Block < ls[j].Block })
	return ls
}

// TestCSRReconstructionExact is the load-bearing CSR property (§4.3): for
// any smaller and/or less associative target, reconstructing from a CSR
// captured at the maximum configuration yields exactly the cache contents
// direct warming of the target would have produced.
func TestCSRReconstructionExact(t *testing.T) {
	maxCfg := cache.Config{Name: "l2", SizeBytes: 1 << 20, Assoc: 8, LineBytes: 128, HitLat: 12}
	targets := []cache.Config{
		{Name: "l2", SizeBytes: 1 << 20, Assoc: 8, LineBytes: 128, HitLat: 12}, // identity
		{Name: "l2", SizeBytes: 512 << 10, Assoc: 8, LineBytes: 128, HitLat: 12},
		{Name: "l2", SizeBytes: 512 << 10, Assoc: 4, LineBytes: 128, HitLat: 12},
		{Name: "l2", SizeBytes: 256 << 10, Assoc: 2, LineBytes: 128, HitLat: 12},
		{Name: "l2", SizeBytes: 128 << 10, Assoc: 1, LineBytes: 128, HitLat: 12},
	}
	for seed := int64(1); seed <= 5; seed++ {
		addrs, writes := randomStream(seed, 60_000, 8<<20)
		big := cache.New(maxCfg)
		warmWithStream(big, addrs, writes)
		sr := Capture(big)

		for _, target := range targets {
			direct := cache.New(target)
			warmWithStream(direct, addrs, writes)

			rec, err := sr.Reconstruct(target)
			if err != nil {
				t.Fatalf("seed %d target %+v: %v", seed, target, err)
			}
			want, got := lineSet(direct), lineSet(rec)
			if len(want) != len(got) {
				t.Fatalf("seed %d %dKB/%d-way: %d lines reconstructed, want %d",
					seed, target.SizeBytes>>10, target.Assoc, len(got), len(want))
			}
			for i := range want {
				if want[i].Block != got[i].Block || want[i].Last != got[i].Last {
					t.Fatalf("seed %d %dKB/%d-way: line %d differs: got %+v want %+v",
						seed, target.SizeBytes>>10, target.Assoc, i, got[i], want[i])
				}
				// Dirty bits are a conservative superset (see package doc).
				if want[i].Dirty && !got[i].Dirty {
					t.Fatalf("seed %d %dKB/%d-way: line %d lost dirtiness: got %+v want %+v",
						seed, target.SizeBytes>>10, target.Assoc, i, got[i], want[i])
				}
			}
		}
	}
}

// TestCSRRejectsUnreconstructible checks the §4.3 bounds are enforced.
func TestCSRRejectsUnreconstructible(t *testing.T) {
	maxCfg := cache.Config{Name: "l2", SizeBytes: 512 << 10, Assoc: 4, LineBytes: 128, HitLat: 12}
	sr := Capture(cache.New(maxCfg))

	bad := []cache.Config{
		{Name: "l2", SizeBytes: 1 << 20, Assoc: 4, LineBytes: 128, HitLat: 12},   // bigger
		{Name: "l2", SizeBytes: 512 << 10, Assoc: 8, LineBytes: 128, HitLat: 12}, // more assoc
		{Name: "l2", SizeBytes: 512 << 10, Assoc: 4, LineBytes: 64, HitLat: 12},  // other line
		{Name: "l2", SizeBytes: 512 << 10, Assoc: 1, LineBytes: 128, HitLat: 12}, // more sets
	}
	for _, cfg := range bad {
		if err := sr.CanReconstruct(cfg); err == nil {
			t.Errorf("config %+v should be rejected", cfg)
		}
	}
	ok := cache.Config{Name: "l2", SizeBytes: 256 << 10, Assoc: 4, LineBytes: 128, HitLat: 12}
	if err := sr.CanReconstruct(ok); err != nil {
		t.Errorf("config %+v should be reconstructible: %v", ok, err)
	}
}

// TestCSRRestrict checks the restricted-live-state filter keeps exactly the
// requested blocks.
func TestCSRRestrict(t *testing.T) {
	cfg := cache.Config{Name: "l1d", SizeBytes: 32 << 10, Assoc: 2, LineBytes: 32, HitLat: 1}
	c := cache.New(cfg)
	addrs, writes := randomStream(7, 10_000, 1<<20)
	warmWithStream(c, addrs, writes)
	sr := Capture(c)

	keep := map[uint64]bool{}
	for i := 0; i < len(sr.Entries); i += 2 {
		keep[sr.Entries[i].Block] = true
	}
	restricted := sr.Restrict(keep)
	if restricted.Len() != len(keep) {
		t.Fatalf("restricted to %d blocks, got %d", len(keep), restricted.Len())
	}
	for _, e := range restricted.Entries {
		if !keep[e.Block] {
			t.Fatalf("block %d survived restriction but was not kept", e.Block)
		}
	}
}

// TestMTRMatchesDirectWarmingForL1 checks MTR reconstruction is exact for a
// cache observing the raw reference stream.
func TestMTRMatchesDirectWarmingForL1(t *testing.T) {
	cfg := cache.Config{Name: "l1d", SizeBytes: 32 << 10, Assoc: 2, LineBytes: 32, HitLat: 1}
	addrs, writes := randomStream(11, 40_000, 4<<20)

	direct := cache.New(cfg)
	mtr := NewMTR(cfg.LineBytes)
	for i, a := range addrs {
		direct.Access(a, writes[i])
		mtr.Touch(a, writes[i])
	}
	rec, err := mtr.Reconstruct(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, got := lineSet(direct), lineSet(rec)
	if len(want) != len(got) {
		t.Fatalf("MTR reconstructed %d lines, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i].Block != got[i].Block {
			t.Fatalf("line %d differs: got %+v want %+v", i, got[i], want[i])
		}
		if want[i].Dirty && !got[i].Dirty {
			t.Fatalf("line %d lost dirtiness: got %+v want %+v", i, got[i], want[i])
		}
	}
}

// TestMTRStorageGrowsWithFootprint demonstrates the MTR-vs-CSR storage
// trade-off the paper describes: MTR cost tracks footprint, CSR cost is
// capped by the captured cache size.
func TestMTRStorageGrowsWithFootprint(t *testing.T) {
	cfg := cache.Config{Name: "l2", SizeBytes: 256 << 10, Assoc: 4, LineBytes: 128, HitLat: 12}
	small, _ := randomStream(3, 30_000, 1<<20)
	large, _ := randomStream(3, 30_000, 16<<20)

	mtrSmall, mtrLarge := NewMTR(128), NewMTR(128)
	cSmall, cLarge := cache.New(cfg), cache.New(cfg)
	for _, a := range small {
		mtrSmall.Touch(a, false)
		cSmall.Access(a, false)
	}
	for _, a := range large {
		mtrLarge.Touch(a, false)
		cLarge.Access(a, false)
	}
	if mtrLarge.StorageBytes() <= mtrSmall.StorageBytes()*2 {
		t.Errorf("MTR storage should grow with footprint: %d vs %d",
			mtrLarge.StorageBytes(), mtrSmall.StorageBytes())
	}
	csrSmall, csrLarge := Capture(cSmall), Capture(cLarge)
	capBytes := int(cfg.Lines()) * 17
	if csrLarge.StorageBytes() > capBytes || csrSmall.StorageBytes() > capBytes {
		t.Errorf("CSR storage must be capped by tag-array size %d: got %d / %d",
			capBytes, csrSmall.StorageBytes(), csrLarge.StorageBytes())
	}
}

// TestCSRQuickProperty drives randomized geometry/stream combinations
// through capture-and-reconstruct, checking block-content equality with
// direct warming.
func TestCSRQuickProperty(t *testing.T) {
	f := func(seed int64, pick uint8) bool {
		maxCfg := cache.Config{Name: "c", SizeBytes: 128 << 10, Assoc: 4, LineBytes: 64, HitLat: 1}
		targetChoices := []cache.Config{
			{Name: "c", SizeBytes: 64 << 10, Assoc: 4, LineBytes: 64, HitLat: 1},
			{Name: "c", SizeBytes: 64 << 10, Assoc: 2, LineBytes: 64, HitLat: 1},
			{Name: "c", SizeBytes: 32 << 10, Assoc: 1, LineBytes: 64, HitLat: 1},
			{Name: "c", SizeBytes: 32 << 10, Assoc: 2, LineBytes: 64, HitLat: 1},
		}
		target := targetChoices[int(pick)%len(targetChoices)]
		addrs, writes := randomStream(seed, 8_000, 2<<20)

		big := cache.New(maxCfg)
		direct := cache.New(target)
		for i := range addrs {
			big.Access(addrs[i], writes[i])
			direct.Access(addrs[i], writes[i])
		}
		rec, err := Capture(big).Reconstruct(target)
		if err != nil {
			return false
		}
		want, got := lineSet(direct), lineSet(rec)
		if len(want) != len(got) {
			return false
		}
		for i := range want {
			if want[i].Block != got[i].Block || want[i].Last != got[i].Last {
				return false
			}
			if want[i].Dirty && !got[i].Dirty {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
