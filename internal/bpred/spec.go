package bpred

import "livepoints/internal/isa"

// SpecLite is the cheap per-branch fetch-time checkpoint used by the
// detailed core: global history plus the return-address-stack top. This
// mirrors hardware checkpointing schemes that save only the RAS top
// pointer — deeper wrong-path RAS corruption persists after recovery,
// exactly as on a real machine.
type SpecLite struct {
	GHR    uint64
	RASTop int
	TOS    uint64
}

// SaveLite captures the lightweight speculative state.
func (p *Predictor) SaveLite() SpecLite {
	return SpecLite{GHR: p.ghr, RASTop: p.rasTop, TOS: p.ras[p.rasTop]}
}

// RestoreLite rolls back to a SaveLite checkpoint.
func (p *Predictor) RestoreLite(s SpecLite) {
	p.ghr = s.GHR
	p.rasTop = s.RASTop
	p.ras[p.rasTop] = s.TOS
}

// ApplyOutcome re-applies the speculative side effects of a branch's
// resolved outcome after RestoreLite: the history shift for conditional
// branches and the RAS push/pop for calls and returns. Counter training is
// separate (Update, at commit).
func (p *Predictor) ApplyOutcome(pc uint64, in isa.Inst, taken bool) {
	switch {
	case in.Op == isa.OpCall:
		p.rasPush(pc + isa.InstBytes)
	case in.Op == isa.OpRet:
		p.rasPop()
	case in.Op.IsCondBranch():
		p.ghr = p.ghr<<1 | boolBit(taken)
	}
}
