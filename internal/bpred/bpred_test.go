package bpred

import (
	"testing"

	"livepoints/internal/isa"
)

func testCfg() Config {
	return Config{Name: "t", Kind: Combined, TableSize: 256, HistBits: 8,
		BTBSets: 64, BTBAssoc: 2, RASSize: 8}
}

func TestConfigValidate(t *testing.T) {
	good := testCfg()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{},
		{Name: "x", TableSize: 100, BTBSets: 64, BTBAssoc: 2, RASSize: 8},               // non-pow2 table
		{Name: "x", TableSize: 256, BTBSets: 63, BTBAssoc: 2, RASSize: 8},               // non-pow2 BTB
		{Name: "x", TableSize: 256, HistBits: 40, BTBSets: 64, BTBAssoc: 2, RASSize: 8}, // hist too long
		{Name: "x", TableSize: 256, BTBSets: 64, BTBAssoc: 2, RASSize: 0},               // no RAS
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", c)
		}
	}
}

// trainLoop trains the predictor on a biased branch and reports the final
// prediction.
func trainLoop(p *Predictor, pc uint64, taken bool, n int) bool {
	in := isa.Inst{Op: isa.OpBne, Rs1: 1, Imm: 100}
	for i := 0; i < n; i++ {
		p.UpdateWithSpec(pc, in, taken, 0)
	}
	dir, _, _ := p.predictDir(pc)
	return dir
}

func TestBimodalLearnsBias(t *testing.T) {
	for _, kind := range []Kind{Bimodal, GShare, Combined} {
		cfg := testCfg()
		cfg.Kind = kind
		p := New(cfg)
		if got := trainLoop(p, 0x1000, true, 32); !got {
			t.Errorf("%v: did not learn always-taken", kind)
		}
		p.Reset()
		if got := trainLoop(p, 0x1000, false, 32); got {
			t.Errorf("%v: did not learn never-taken", kind)
		}
	}
}

func TestGShareLearnsPattern(t *testing.T) {
	// Alternating T/N branch: gshare with history learns it, bimodal
	// cannot exceed ~50%.
	for _, kind := range []Kind{GShare, Bimodal} {
		cfg := testCfg()
		cfg.Kind = kind
		p := New(cfg)
		in := isa.Inst{Op: isa.OpBne, Rs1: 1, Imm: 100}
		correct := 0
		taken := false
		for i := 0; i < 2000; i++ {
			taken = !taken
			dir, _, _ := p.predictDir(0x2000)
			if dir == taken {
				correct++
			}
			p.UpdateWithSpec(0x2000, in, taken, 0)
		}
		acc := float64(correct) / 2000
		if kind == GShare && acc < 0.95 {
			t.Errorf("gshare alternating accuracy %.2f", acc)
		}
		if kind == Bimodal && acc > 0.75 {
			t.Errorf("bimodal alternating accuracy %.2f suspiciously high", acc)
		}
	}
}

func TestRASPredictsReturns(t *testing.T) {
	p := New(testCfg())
	call := isa.Inst{Op: isa.OpCall, Rd: isa.RegLink, Imm: 500}
	ret := isa.Inst{Op: isa.OpRet, Rs1: isa.RegLink}

	// Nested calls at distinct sites; returns must pop in LIFO order.
	sites := []uint64{0x100, 0x200, 0x300}
	for _, pc := range sites {
		taken, _, _ := p.Lookup(pc, call)
		if !taken {
			t.Fatal("call not predicted taken")
		}
	}
	for i := len(sites) - 1; i >= 0; i-- {
		_, target, ok := p.Lookup(0x400+uint64(i), ret)
		if !ok {
			t.Fatal("RAS empty on return")
		}
		if target != sites[i]+isa.InstBytes {
			t.Fatalf("return to %#x, want %#x", target, sites[i]+isa.InstBytes)
		}
	}
}

func TestBTBLearnsIndirectTargets(t *testing.T) {
	p := New(testCfg())
	jr := isa.Inst{Op: isa.OpJr, Rs1: 5}
	if _, _, known := p.Lookup(0x1000, jr); known {
		t.Fatal("cold BTB predicted a target")
	}
	p.Update(0x1000, jr, true, 0xBEEF0)
	_, target, known := p.Lookup(0x1000, jr)
	if !known || target != 0xBEEF0 {
		t.Fatalf("BTB: known=%v target=%#x", known, target)
	}
}

func TestSpecLiteSaveRestore(t *testing.T) {
	p := New(testCfg())
	in := isa.Inst{Op: isa.OpBne, Rs1: 1, Imm: 100}
	for i := 0; i < 10; i++ {
		p.UpdateWithSpec(0x100, in, i%2 == 0, 0)
	}
	saved := p.SaveLite()
	// Corrupt speculative state.
	p.Lookup(0x200, in)
	p.Lookup(0x300, isa.Inst{Op: isa.OpCall, Rd: 63, Imm: 5})
	p.RestoreLite(saved)
	if p.ghr != saved.GHR || p.rasTop != saved.RASTop {
		t.Fatal("RestoreLite did not restore state")
	}
}

func TestApplyOutcome(t *testing.T) {
	p := New(testCfg())
	before := p.ghr
	p.ApplyOutcome(0x100, isa.Inst{Op: isa.OpBne}, true)
	if p.ghr != before<<1|1 {
		t.Fatal("history not shifted by outcome")
	}
	top := p.rasTop
	p.ApplyOutcome(0x200, isa.Inst{Op: isa.OpCall, Rd: 63}, true)
	if p.rasTop == top {
		t.Fatal("call did not push RAS")
	}
	p.ApplyOutcome(0x300, isa.Inst{Op: isa.OpRet, Rs1: 63}, true)
	if p.rasTop != top {
		t.Fatal("return did not pop RAS")
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	p := New(testCfg())
	in := isa.Inst{Op: isa.OpBne, Rs1: 1, Imm: 100}
	jr := isa.Inst{Op: isa.OpJr, Rs1: 5}
	for i := 0; i < 500; i++ {
		pc := uint64(0x100 + (i%37)*16)
		p.UpdateWithSpec(pc, in, i%3 == 0, 0)
		if i%7 == 0 {
			p.Update(pc+4, jr, true, uint64(i)*16)
		}
	}
	snap := p.Snapshot()
	q := New(testCfg())
	if err := q.Restore(snap); err != nil {
		t.Fatal(err)
	}
	// The restored predictor must predict identically.
	for i := 0; i < 37; i++ {
		pc := uint64(0x100 + i*16)
		d1, b1, g1 := p.predictDir(pc)
		d2, b2, g2 := q.predictDir(pc)
		if d1 != d2 || b1 != b2 || g1 != g2 {
			t.Fatalf("pc %#x: predictions differ after restore", pc)
		}
	}
	if p.ghr != q.ghr {
		t.Fatal("history differs after restore")
	}
	if len(snap) > SnapshotBytes(testCfg()) {
		t.Fatalf("snapshot %d bytes exceeds worst-case bound %d", len(snap), SnapshotBytes(testCfg()))
	}
}

func TestRestoreRejectsWrongConfig(t *testing.T) {
	p := New(testCfg())
	other := testCfg()
	other.TableSize = 512
	q := New(other)
	if err := q.Restore(p.Snapshot()); err == nil {
		t.Fatal("restore across configs accepted")
	}
	snap := p.Snapshot()
	snap[0] ^= 0xFF // corrupt magic
	r := New(testCfg())
	if err := r.Restore(snap); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}

func TestRestrictDropsUntouchedEntries(t *testing.T) {
	p := New(testCfg())
	in := isa.Inst{Op: isa.OpBne, Rs1: 1, Imm: 100}
	// Train two branches.
	for i := 0; i < 50; i++ {
		p.UpdateWithSpec(0x100, in, true, 0)
		p.UpdateWithSpec(0x900, in, true, 0)
	}
	// Restrict to a window containing only the branch at 0x100.
	restricted := p.Restrict([]BranchOutcome{{PC: 0x100, In: in, Taken: true}})
	if d, _, _ := restricted.predictDir(0x100); !d {
		t.Fatal("window branch entry lost by restriction")
	}
	// The untouched branch's bimodal entry must be back at weak.
	if restricted.bimodal[restricted.bimodalIdx(0x900)] != 1 {
		t.Fatal("untouched entry survived restriction")
	}
	// Original must be unmodified.
	if p.bimodal[p.bimodalIdx(0x900)] == 1 {
		t.Fatal("restriction modified the source predictor")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := New(testCfg())
	in := isa.Inst{Op: isa.OpBne, Rs1: 1, Imm: 100}
	p.UpdateWithSpec(0x100, in, true, 0)
	q := p.Clone()
	q.UpdateWithSpec(0x100, in, true, 0)
	q.UpdateWithSpec(0x100, in, true, 0)
	if p.bimodal[p.bimodalIdx(0x100)] == q.bimodal[q.bimodalIdx(0x100)] {
		t.Fatal("clone shares table storage")
	}
}

func TestStatsCount(t *testing.T) {
	p := New(testCfg())
	in := isa.Inst{Op: isa.OpBne, Rs1: 1, Imm: 100}
	p.Lookup(0x100, in)
	p.Lookup(0x100, in)
	if p.Stat.Lookups != 2 || p.Stat.CondBranches != 2 {
		t.Fatalf("stats %+v", p.Stat)
	}
}
