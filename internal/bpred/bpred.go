// Package bpred implements the branch prediction structures whose
// long-history state the paper's warming strategies must manage: a bimodal
// predictor, a gshare-style two-level predictor, the SimpleScalar-style
// combined predictor with a meta chooser, a branch target buffer, and a
// return address stack.
//
// Predictor state is snapshot-able to a flat byte image; live-points store
// one snapshot per predictor configuration of interest (the paper's
// "storing multiple configurations" approach, §4.3).
package bpred

import (
	"encoding/binary"
	"fmt"

	"livepoints/internal/isa"
)

// Kind selects the directional predictor organization.
type Kind uint8

// Predictor kinds.
const (
	Bimodal Kind = iota
	GShare
	Combined
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Bimodal:
		return "bimodal"
	case GShare:
		return "gshare"
	case Combined:
		return "combined"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Config describes a predictor instance.
type Config struct {
	Name      string // identifies the configuration inside live-points
	Kind      Kind
	TableSize int // entries per directional table (power of two)
	HistBits  int // global history bits for GShare/Combined
	BTBSets   int // power of two
	BTBAssoc  int
	RASSize   int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("bpred: config needs a name")
	}
	if c.TableSize <= 0 || c.TableSize&(c.TableSize-1) != 0 {
		return fmt.Errorf("bpred %s: table size %d not a power of two", c.Name, c.TableSize)
	}
	if c.HistBits < 0 || c.HistBits > 30 {
		return fmt.Errorf("bpred %s: history bits %d out of range", c.Name, c.HistBits)
	}
	if c.BTBSets <= 0 || c.BTBSets&(c.BTBSets-1) != 0 || c.BTBAssoc <= 0 {
		return fmt.Errorf("bpred %s: bad BTB geometry %d x %d", c.Name, c.BTBSets, c.BTBAssoc)
	}
	if c.RASSize <= 0 {
		return fmt.Errorf("bpred %s: RAS size must be positive", c.Name)
	}
	return nil
}

// btbEntry is one branch-target-buffer way.
type btbEntry struct {
	pc     uint64
	target uint64
	valid  bool
	last   uint64
}

// Stats counts prediction events.
type Stats struct {
	Lookups        uint64
	CondBranches   uint64
	DirMispredicts uint64
	TgtMispredicts uint64
}

// Predictor is an instantiated branch predictor.
type Predictor struct {
	cfg     Config
	bimodal []uint8 // 2-bit saturating counters
	pht     []uint8 // gshare pattern history table
	meta    []uint8 // combined-predictor chooser
	ghr     uint64
	btb     []btbEntry // BTBSets * BTBAssoc, set-major
	btbClk  uint64
	ras     []uint64
	rasTop  int
	Stat    Stats
}

// New builds a predictor with all counters weakly not-taken and an empty
// BTB and RAS.
func New(cfg Config) *Predictor {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	p := &Predictor{
		cfg: cfg,
		ras: make([]uint64, cfg.RASSize),
		btb: make([]btbEntry, cfg.BTBSets*cfg.BTBAssoc),
	}
	switch cfg.Kind {
	case Bimodal:
		p.bimodal = weak(cfg.TableSize)
	case GShare:
		p.pht = weak(cfg.TableSize)
	case Combined:
		p.bimodal = weak(cfg.TableSize)
		p.pht = weak(cfg.TableSize)
		p.meta = weak(cfg.TableSize)
	}
	return p
}

func weak(n int) []uint8 {
	t := make([]uint8, n)
	for i := range t {
		t[i] = 1 // weakly not-taken
	}
	return t
}

// Config returns the predictor configuration.
func (p *Predictor) Config() Config { return p.cfg }

func (p *Predictor) bimodalIdx(pc uint64) int {
	return int((pc >> 4) & uint64(p.cfg.TableSize-1))
}

func (p *Predictor) gshareIdx(pc uint64) int {
	h := p.ghr & ((1 << uint(p.cfg.HistBits)) - 1)
	return int(((pc >> 4) ^ h) & uint64(p.cfg.TableSize-1))
}

// predictDir returns the direction prediction and the component
// predictions (needed for meta-table training).
func (p *Predictor) predictDir(pc uint64) (pred, bimPred, gsPred bool) {
	switch p.cfg.Kind {
	case Bimodal:
		b := p.bimodal[p.bimodalIdx(pc)] >= 2
		return b, b, b
	case GShare:
		g := p.pht[p.gshareIdx(pc)] >= 2
		return g, g, g
	default: // Combined
		bimPred = p.bimodal[p.bimodalIdx(pc)] >= 2
		gsPred = p.pht[p.gshareIdx(pc)] >= 2
		if p.meta[p.bimodalIdx(pc)] >= 2 {
			return gsPred, bimPred, gsPred
		}
		return bimPred, bimPred, gsPred
	}
}

// Lookup produces the fetch-time prediction for the branch at byte address
// pc. For conditional branches it returns the predicted direction; for
// unconditional transfers taken is always true. predTarget is the
// predicted target byte address and targetKnown reports whether the
// predictor has any target for a taken prediction (from the instruction's
// immediate for direct branches, the RAS for returns, the BTB for other
// indirect jumps).
//
// Lookup speculatively updates the global history and the RAS exactly as a
// real fetch engine would; the core must checkpoint with SaveSpec/
// RestoreSpec around branches to recover from misprediction.
func (p *Predictor) Lookup(pc uint64, in isa.Inst) (taken bool, predTarget uint64, targetKnown bool) {
	p.Stat.Lookups++
	switch {
	case in.Op == isa.OpCall:
		p.rasPush(pc + isa.InstBytes)
		return true, isa.PCToAddr(uint64(in.Imm)), true
	case in.Op == isa.OpRet:
		t, ok := p.rasPop()
		return true, t, ok
	case in.Op == isa.OpJr:
		t, ok := p.btbLookup(pc)
		return true, t, ok
	case in.Op == isa.OpJmp:
		return true, isa.PCToAddr(uint64(in.Imm)), true
	case in.Op.IsCondBranch():
		p.Stat.CondBranches++
		dir, _, _ := p.predictDir(pc)
		p.ghr = p.ghr<<1 | boolBit(dir)
		return dir, isa.PCToAddr(uint64(in.Imm)), true
	}
	return false, 0, false
}

// Update trains the predictor with the resolved outcome of the branch at
// byte address pc: actual direction and actual target byte address. It is
// called at commit by the detailed core and per-branch by functional
// warming. Functional warming additionally performs the speculative
// bookkeeping, so warming calls UpdateWithSpec instead.
func (p *Predictor) Update(pc uint64, in isa.Inst, taken bool, target uint64) {
	if in.Op.IsCondBranch() {
		_, bimPred, gsPred := p.predictDir(pc)
		switch p.cfg.Kind {
		case Bimodal:
			sat(&p.bimodal[p.bimodalIdx(pc)], taken)
		case GShare:
			sat(&p.pht[p.gshareIdx(pc)], taken)
		default:
			// Train the chooser toward whichever component was right.
			if bimPred != gsPred {
				sat(&p.meta[p.bimodalIdx(pc)], gsPred == taken)
			}
			sat(&p.bimodal[p.bimodalIdx(pc)], taken)
			sat(&p.pht[p.gshareIdx(pc)], taken)
		}
	}
	if in.Op == isa.OpJr && taken {
		p.btbInsert(pc, target)
	}
}

// UpdateWithSpec performs the complete warming update for one executed
// branch: prediction-free history update, counter training, RAS and BTB
// maintenance. This keeps warmed state identical to the state a detailed
// simulation of the same path would produce at commit.
func (p *Predictor) UpdateWithSpec(pc uint64, in isa.Inst, taken bool, target uint64) {
	p.Update(pc, in, taken, target)
	switch {
	case in.Op == isa.OpCall:
		p.rasPush(pc + isa.InstBytes)
	case in.Op == isa.OpRet:
		p.rasPop()
	case in.Op.IsCondBranch():
		p.ghr = p.ghr<<1 | boolBit(taken)
	}
}

func sat(c *uint8, up bool) {
	if up {
		if *c < 3 {
			*c++
		}
	} else if *c > 0 {
		*c--
	}
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// --- RAS ----------------------------------------------------------------

func (p *Predictor) rasPush(retAddr uint64) {
	p.rasTop = (p.rasTop + 1) % len(p.ras)
	p.ras[p.rasTop] = retAddr
}

func (p *Predictor) rasPop() (uint64, bool) {
	v := p.ras[p.rasTop]
	p.rasTop = (p.rasTop - 1 + len(p.ras)) % len(p.ras)
	return v, v != 0
}

// --- BTB ----------------------------------------------------------------

func (p *Predictor) btbSet(pc uint64) []btbEntry {
	s := int((pc >> 4) & uint64(p.cfg.BTBSets-1))
	base := s * p.cfg.BTBAssoc
	return p.btb[base : base+p.cfg.BTBAssoc]
}

func (p *Predictor) btbLookup(pc uint64) (uint64, bool) {
	set := p.btbSet(pc)
	p.btbClk++
	for i := range set {
		if set[i].valid && set[i].pc == pc {
			set[i].last = p.btbClk
			return set[i].target, true
		}
	}
	return 0, false
}

func (p *Predictor) btbInsert(pc, target uint64) {
	set := p.btbSet(pc)
	p.btbClk++
	vi := 0
	for i := range set {
		if set[i].valid && set[i].pc == pc {
			set[i].target = target
			set[i].last = p.btbClk
			return
		}
		if !set[i].valid {
			vi = i
			break
		}
		if set[i].last < set[vi].last {
			vi = i
		}
	}
	set[vi] = btbEntry{pc: pc, target: target, valid: true, last: p.btbClk}
}

// --- Speculation checkpointing ------------------------------------------

// SpecState is the fetch-time speculative state checkpointed per branch.
type SpecState struct {
	GHR    uint64
	RASTop int
	RAS    []uint64
}

// SaveSpec captures history and RAS state.
func (p *Predictor) SaveSpec() SpecState {
	s := SpecState{GHR: p.ghr, RASTop: p.rasTop, RAS: make([]uint64, len(p.ras))}
	copy(s.RAS, p.ras)
	return s
}

// RestoreSpec rolls back to a previously saved state.
func (p *Predictor) RestoreSpec(s SpecState) {
	p.ghr = s.GHR
	p.rasTop = s.RASTop
	copy(p.ras, s.RAS)
}

// --- Snapshot (checkpointed warming) --------------------------------------

// snapshot layout: magic(8) ghr(8) rasTop(8) ras(n*8) tables, then the
// valid BTB entries sparsely as count(8) + (index, pc, target) triples —
// most BTB slots are empty, so dense encoding would waste the bulk of the
// live-point's predictor section.
const snapMagic = uint64(0x4250524544_0002) // "BPRED" v2

// Snapshot serializes the complete predictor state to a flat byte image.
func (p *Predictor) Snapshot() []byte {
	valid := 0
	for i := range p.btb {
		if p.btb[i].valid {
			valid++
		}
	}
	size := 8 + 8 + 8 + len(p.ras)*8 + len(p.bimodal) + len(p.pht) + len(p.meta) + 8 + valid*24
	buf := make([]byte, 0, size)
	var w [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(w[:], v)
		buf = append(buf, w[:]...)
	}
	put(snapMagic)
	put(p.ghr)
	put(uint64(p.rasTop))
	for _, v := range p.ras {
		put(v)
	}
	buf = append(buf, p.bimodal...)
	buf = append(buf, p.pht...)
	buf = append(buf, p.meta...)
	put(uint64(valid))
	for i := range p.btb {
		if p.btb[i].valid {
			put(uint64(i))
			put(p.btb[i].pc)
			put(p.btb[i].target)
		}
	}
	return buf
}

// Restore loads a snapshot produced by a predictor with the same Config.
func (p *Predictor) Restore(buf []byte) error {
	fixed := 8 + 8 + 8 + len(p.ras)*8 + len(p.bimodal) + len(p.pht) + len(p.meta) + 8
	if len(buf) < fixed || (len(buf)-fixed)%24 != 0 {
		return fmt.Errorf("bpred %s: snapshot size %d not valid for this config", p.cfg.Name, len(buf))
	}
	get := func() uint64 {
		v := binary.LittleEndian.Uint64(buf[:8])
		buf = buf[8:]
		return v
	}
	if m := get(); m != snapMagic {
		return fmt.Errorf("bpred %s: bad snapshot magic %#x", p.cfg.Name, m)
	}
	p.ghr = get()
	p.rasTop = int(get())
	if p.rasTop < 0 || p.rasTop >= len(p.ras) {
		return fmt.Errorf("bpred %s: snapshot RAS top %d out of range", p.cfg.Name, p.rasTop)
	}
	for i := range p.ras {
		p.ras[i] = get()
	}
	copy(p.bimodal, buf[:len(p.bimodal)])
	buf = buf[len(p.bimodal):]
	copy(p.pht, buf[:len(p.pht)])
	buf = buf[len(p.pht):]
	copy(p.meta, buf[:len(p.meta)])
	buf = buf[len(p.meta):]
	for i := range p.btb {
		p.btb[i] = btbEntry{}
	}
	valid := int(get())
	if len(buf) != valid*24 {
		return fmt.Errorf("bpred %s: snapshot BTB section %d bytes for %d entries", p.cfg.Name, len(buf), valid)
	}
	for k := 0; k < valid; k++ {
		i := int(get())
		if i < 0 || i >= len(p.btb) {
			return fmt.Errorf("bpred %s: snapshot BTB index %d out of range", p.cfg.Name, i)
		}
		p.btb[i].pc = get()
		p.btb[i].target = get()
		p.btb[i].valid = true
		p.btb[i].last = uint64(k) // recency order is not preserved; harmless
	}
	return nil
}

// Clone deep-copies the predictor including statistics.
func (p *Predictor) Clone() *Predictor {
	n := New(p.cfg)
	n.ghr = p.ghr
	n.rasTop = p.rasTop
	copy(n.ras, p.ras)
	copy(n.bimodal, p.bimodal)
	copy(n.pht, p.pht)
	copy(n.meta, p.meta)
	copy(n.btb, p.btb)
	n.btbClk = p.btbClk
	n.Stat = p.Stat
	return n
}

// Reset restores the power-on state.
func (p *Predictor) Reset() {
	p.ghr = 0
	p.rasTop = 0
	for i := range p.ras {
		p.ras[i] = 0
	}
	for _, t := range [][]uint8{p.bimodal, p.pht, p.meta} {
		for i := range t {
			t[i] = 1
		}
	}
	for i := range p.btb {
		p.btb[i] = btbEntry{}
	}
	p.btbClk = 0
	p.Stat = Stats{}
}

// ResetTo reconfigures the predictor to cfg and resets it to power-on
// state, reusing table, RAS, and BTB backing arrays whenever capacities
// allow. A predictor reset to a configuration is indistinguishable from
// one freshly built with New.
func (p *Predictor) ResetTo(cfg Config) error {
	if cfg != p.cfg {
		if err := cfg.Validate(); err != nil {
			return err
		}
		p.cfg = cfg
		p.ras = resizeU64(p.ras, cfg.RASSize)
		p.btb = resizeBTB(p.btb, cfg.BTBSets*cfg.BTBAssoc)
		switch cfg.Kind {
		case Bimodal:
			p.bimodal = resizeU8(p.bimodal, cfg.TableSize)
			p.pht = p.pht[:0]
			p.meta = p.meta[:0]
		case GShare:
			p.bimodal = p.bimodal[:0]
			p.pht = resizeU8(p.pht, cfg.TableSize)
			p.meta = p.meta[:0]
		default: // Combined
			p.bimodal = resizeU8(p.bimodal, cfg.TableSize)
			p.pht = resizeU8(p.pht, cfg.TableSize)
			p.meta = resizeU8(p.meta, cfg.TableSize)
		}
	}
	p.Reset() // re-initializes every (possibly stale) slot
	return nil
}

func resizeU8(s []uint8, n int) []uint8 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]uint8, n)
}

func resizeU64(s []uint64, n int) []uint64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]uint64, n)
}

func resizeBTB(s []btbEntry, n int) []btbEntry {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]btbEntry, n)
}

// SnapshotBytes returns the worst-case uncompressed snapshot size for a
// config (all BTB entries valid), without building a predictor. Used for
// storage accounting.
func SnapshotBytes(cfg Config) int {
	tables := 0
	switch cfg.Kind {
	case Bimodal, GShare:
		tables = cfg.TableSize
	case Combined:
		tables = 3 * cfg.TableSize
	}
	return 8 + 8 + 8 + cfg.RASSize*8 + tables + 8 + cfg.BTBSets*cfg.BTBAssoc*24
}
