package bpred

import "livepoints/internal/isa"

// BranchOutcome is one commit-order branch execution inside a live-point's
// window, used to compute which predictor entries the correct path will
// touch.
type BranchOutcome struct {
	PC    uint64 // byte address
	In    isa.Inst
	Taken bool
}

// Restrict returns a copy of the predictor in which every table entry NOT
// indexed by the given commit-order branch sequence is reset to its
// power-on value. This realizes the paper's "restricted live-state"
// ablation (§5, Figure 5): state reachable only via wrong paths is dropped,
// so wrong-path branches see effectively unwarmed entries.
//
// The pattern-history indices the correct path will use are computed by
// replaying the global history forward from the predictor's current state
// with the actual outcomes — exactly the commit-order evolution.
func (p *Predictor) Restrict(branches []BranchOutcome) *Predictor {
	n := p.Clone()
	if len(n.bimodal) == 0 && len(n.pht) == 0 && len(n.btb) == 0 {
		return n
	}
	keepBim := make(map[int]bool)
	keepPHT := make(map[int]bool)
	keepBTB := make(map[uint64]bool)

	hist := p.ghr
	mask := uint64(1)<<uint(p.cfg.HistBits) - 1
	for _, br := range branches {
		switch {
		case br.In.Op.IsCondBranch():
			keepBim[p.bimodalIdx(br.PC)] = true
			idx := int(((br.PC >> 4) ^ (hist & mask)) & uint64(p.cfg.TableSize-1))
			keepPHT[idx] = true
			hist = hist<<1 | boolBit(br.Taken)
		case br.In.Op == isa.OpJr:
			keepBTB[br.PC] = true
		}
	}

	for i := range n.bimodal {
		if !keepBim[i] {
			n.bimodal[i] = 1
		}
	}
	for i := range n.meta {
		if !keepBim[i] {
			n.meta[i] = 1
		}
	}
	for i := range n.pht {
		if !keepPHT[i] {
			n.pht[i] = 1
		}
	}
	for i := range n.btb {
		if n.btb[i].valid && !keepBTB[n.btb[i].pc] {
			n.btb[i] = btbEntry{}
		}
	}
	return n
}
