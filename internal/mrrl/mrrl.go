// Package mrrl implements Memory Reference Reuse Latency analysis (Haskins
// & Skadron) and the adaptive-warming simulation engine built on it — the
// paper's §4.2 alternative to checkpointed warming.
//
// The offline analysis pass observes the complete reference stream once and
// computes, for every detailed window of a sample design, the functional
// warming length sufficient to cover a target fraction (typically 99.9 %)
// of the reuse distances observed inside the window. The simulation engine
// then warms each window for only that long, either stitching cache state
// between consecutive windows (program order, dependent windows — low bias)
// or starting each warming period cold (independent windows — the paper
// measures much higher bias, Table 3 footnote).
package mrrl

import (
	"fmt"
	"sort"
	"time"

	"livepoints/internal/bpred"
	"livepoints/internal/cache"
	"livepoints/internal/functional"
	"livepoints/internal/mem"
	"livepoints/internal/prog"
	"livepoints/internal/sampling"
	"livepoints/internal/uarch"
	"livepoints/internal/warm"
)

// DefaultReuseProb is the reuse-coverage threshold recommended by the MRRL
// authors and used in the paper's evaluation.
const DefaultReuseProb = 0.999

// DefaultGranularity is the block granularity at which reuse is measured.
// Finer granularity is conservative for coarser structures (covering a
// 128-byte block reuse covers its page's reuse), so the L2 line size is
// used.
const DefaultGranularity = 128

// Analysis is the outcome of the offline MRRL pass for one benchmark and
// sample design.
type Analysis struct {
	ReuseProb   float64
	Granularity int64
	// WarmLens[j] is the functional-warming length (instructions) for
	// design unit j, already clamped to the available gap.
	WarmLens []uint64
	// TotalRefs is the number of references observed in windows.
	TotalRefs uint64
}

// AvgWarmLen returns the mean warming length across windows.
func (a *Analysis) AvgWarmLen() float64 {
	if len(a.WarmLens) == 0 {
		return 0
	}
	var s uint64
	for _, w := range a.WarmLens {
		s += w
	}
	return float64(s) / float64(len(a.WarmLens))
}

// Analyze performs the offline MRRL pass: a single functional simulation of
// the benchmark observing every instruction fetch and data reference, and a
// per-window reuse-distance histogram. The reported warming length for a
// window is the reuseProb quantile of the window's reuse distances, capped
// at the distance back to the previous window (stitching covers anything
// older) and at the window start.
func Analyze(p *prog.Program, design sampling.Design, reuseProb float64, granularity int64) (*Analysis, error) {
	if reuseProb <= 0 || reuseProb > 1 {
		return nil, fmt.Errorf("mrrl: reuse probability %v out of (0,1]", reuseProb)
	}
	if granularity <= 0 {
		granularity = DefaultGranularity
	}
	an := &Analysis{
		ReuseProb:   reuseProb,
		Granularity: granularity,
		WarmLens:    make([]uint64, design.Units()),
	}

	cpu := functional.New(p, p.NewMemory())
	last := make(map[uint64]uint64, 1<<16) // block -> instruction index of last access

	curWin := 0
	var reuses []uint64
	const neverSeen = ^uint64(0)

	record := func(addr uint64) {
		i := cpu.InstRet
		b := addr / uint64(granularity)
		prev, seen := last[b]
		last[b] = i
		if curWin >= design.Units() {
			return
		}
		start, end := design.WindowStart(curWin), design.Positions[curWin]+design.UnitLen
		if i < start || i >= end {
			return
		}
		an.TotalRefs++
		if !seen {
			reuses = append(reuses, neverSeen)
			return
		}
		reuses = append(reuses, i-prev)
	}

	w := &warm.Warmer{
		OnMem:   func(addr uint64, write bool) { record(addr) },
		OnFetch: func(addr uint64) { record(addr) },
	}
	cpu.Warm = w

	finishWindow := func(j int) {
		start := design.WindowStart(j)
		// Cap: stitching carries state from the previous window's end (or
		// the program start for the first window).
		capAt := start
		if j > 0 {
			capAt = start - (design.Positions[j-1] + design.UnitLen)
		}
		an.WarmLens[j] = quantile(reuses, reuseProb, capAt)
		reuses = reuses[:0]
	}

	for !cpu.Halted {
		if curWin < design.Units() {
			end := design.Positions[curWin] + design.UnitLen
			if cpu.InstRet >= end {
				finishWindow(curWin)
				curWin++
				continue
			}
		}
		if err := cpu.Step(); err != nil {
			return nil, fmt.Errorf("mrrl: analysis pass: %w", err)
		}
	}
	if curWin < design.Units() {
		return nil, fmt.Errorf("mrrl: benchmark halted before window %d of %d", curWin, design.Units())
	}
	return an, nil
}

// quantile returns the q-quantile of reuse distances, treating never-seen
// blocks as requiring the full cap, and clamping the result to cap.
func quantile(reuses []uint64, q float64, capAt uint64) uint64 {
	if len(reuses) == 0 {
		return 0
	}
	s := make([]uint64, len(reuses))
	copy(s, reuses)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q * float64(len(s)))
	if idx >= len(s) {
		idx = len(s) - 1
	}
	w := s[idx]
	if w > capAt {
		w = capAt
	}
	return w
}

// AWOpts tunes the adaptive-warming engine.
type AWOpts struct {
	// Stitched carries cache and predictor state across windows in
	// program order (the accurate but dependent mode). When false, every
	// warming period starts from cold structures, making windows
	// independent at the cost of much higher bias.
	Stitched bool
	// CheckHandoff verifies the architectural handoff after each window.
	CheckHandoff bool
	// MaxUnits, when positive, limits the number of windows simulated.
	MaxUnits int
}

// AWResult is the outcome of an adaptive-warming sampled simulation.
type AWResult struct {
	UnitCPIs []float64
	Est      sampling.Estimate

	WarmInsts     uint64 // functional-warming instructions executed
	DetailedInsts uint64
	FFInsts       uint64 // fast-forward instructions (checkpoint-jump equivalent)

	WarmTime     time.Duration
	DetailedTime time.Duration
	FFTime       time.Duration
}

// RunAW performs adaptive-warming simulation sampling: for each window,
// fast-forward (architecturally only) to the window's warming start, warm
// functionally for the analysis-prescribed length, then run the detailed
// window. Fast-forward time is accounted separately because a
// checkpoint-based implementation (the one whose storage Figure 7/8
// measures) replaces it with a constant-time load.
func RunAW(cfg uarch.Config, p *prog.Program, design sampling.Design, an *Analysis, opts AWOpts) (*AWResult, error) {
	if len(an.WarmLens) < design.Units() {
		return nil, fmt.Errorf("mrrl: analysis has %d windows, design has %d", len(an.WarmLens), design.Units())
	}
	m := p.NewMemory()
	hier := cache.NewHier(cfg.Hier)
	bp := bpred.New(cfg.BP)
	warmer := &warm.Warmer{H: hier, BP: bp}
	cpu := functional.New(p, m)
	cpu.Warm = nil // warming only inside prescribed periods

	res := &AWResult{}
	prevEnd := uint64(0)
	for j := 0; j < design.Units(); j++ {
		if opts.MaxUnits > 0 && j >= opts.MaxUnits {
			break
		}
		start := design.WindowStart(j)
		warmStart := start - min64(an.WarmLens[j], start)
		if warmStart < prevEnd {
			warmStart = prevEnd
		}
		if cpu.InstRet > warmStart {
			return nil, fmt.Errorf("mrrl: window %d warming overlaps previous window", j)
		}

		t0 := time.Now()
		ff := warmStart - cpu.InstRet
		if n, err := cpu.Run(ff); err != nil || n != ff {
			return nil, fmt.Errorf("mrrl: fast-forward to window %d failed: %v", j, err)
		}
		res.FFInsts += ff
		res.FFTime += time.Since(t0)

		if !opts.Stitched {
			hier.Reset()
			bp.Reset()
		}

		t0 = time.Now()
		wlen := start - warmStart
		cpu.Warm = warmer
		if n, err := cpu.Run(wlen); err != nil || n != wlen {
			return nil, fmt.Errorf("mrrl: warming for window %d failed: %v", j, err)
		}
		cpu.Warm = nil
		res.WarmInsts += wlen
		res.WarmTime += time.Since(t0)

		t0 = time.Now()
		overlay := mem.NewOverlay(m)
		core := uarch.NewCore(cfg, p, overlay, cpu.State, hier, bp)
		wr, err := warm.RunWindow(core, design.WarmLen, design.UnitLen)
		if err != nil {
			return nil, fmt.Errorf("mrrl: window %d: %w", j, err)
		}
		res.UnitCPIs = append(res.UnitCPIs, wr.UnitCPI)
		res.Est.Add(wr.UnitCPI)
		res.DetailedInsts += design.WindowLen()
		res.DetailedTime += time.Since(t0)

		winLen := design.WindowLen()
		if n, err := cpu.Run(winLen); err != nil || n != winLen {
			return nil, fmt.Errorf("mrrl: advance over window %d failed: %v", j, err)
		}
		prevEnd = cpu.InstRet

		if opts.CheckHandoff {
			cs := core.CommittedState()
			if cs.PC != cpu.PC || cs.Regs != cpu.Regs {
				return nil, fmt.Errorf("mrrl: handoff invariant violated at window %d", j)
			}
		}
	}
	return res, nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
