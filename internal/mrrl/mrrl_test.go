package mrrl

import (
	"testing"

	"livepoints/internal/prog"
	"livepoints/internal/sampling"
	"livepoints/internal/uarch"
	"livepoints/internal/warm"
)

func setup(t *testing.T, name string, scale float64) (*prog.Program, sampling.Design, uarch.Config) {
	t.Helper()
	cfg := uarch.Config8Way()
	spec, err := prog.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	p := prog.Generate(spec, scale)
	benchLen, err := warm.BenchLength(p, p.TargetLen*4+1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	design, err := sampling.NewSystematic(benchLen, uarch.MeasureLen, uint64(cfg.DetailedWarm), 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	return p, design, cfg
}

func TestAnalyzeProducesBoundedWarmLens(t *testing.T) {
	p, design, _ := setup(t, "syn.gzip", 0.01)
	an, err := Analyze(p, design, DefaultReuseProb, DefaultGranularity)
	if err != nil {
		t.Fatal(err)
	}
	if len(an.WarmLens) != design.Units() {
		t.Fatalf("%d warm lengths for %d units", len(an.WarmLens), design.Units())
	}
	for j, w := range an.WarmLens {
		capAt := design.WindowStart(j)
		if j > 0 {
			capAt = design.WindowStart(j) - (design.Positions[j-1] + design.UnitLen)
		}
		if w > capAt {
			t.Fatalf("window %d: warming %d exceeds cap %d", j, w, capAt)
		}
	}
	if an.TotalRefs == 0 {
		t.Fatal("no references observed")
	}
	if an.AvgWarmLen() <= 0 {
		t.Fatal("zero average warming")
	}
}

func TestAnalyzeRejectsBadReuseProb(t *testing.T) {
	p, design, _ := setup(t, "syn.gzip", 0.005)
	if _, err := Analyze(p, design, 0, 128); err == nil {
		t.Fatal("reuse probability 0 accepted")
	}
	if _, err := Analyze(p, design, 1.5, 128); err == nil {
		t.Fatal("reuse probability 1.5 accepted")
	}
}

func TestHigherReuseProbNeedsMoreWarming(t *testing.T) {
	p, design, _ := setup(t, "syn.mcf", 0.01)
	lo, err := Analyze(p, design, 0.9, DefaultGranularity)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Analyze(p, design, 0.999, DefaultGranularity)
	if err != nil {
		t.Fatal(err)
	}
	if hi.AvgWarmLen() < lo.AvgWarmLen() {
		t.Fatalf("99.9%% warming (%f) below 90%% warming (%f)", hi.AvgWarmLen(), lo.AvgWarmLen())
	}
}

func TestRunAWProducesEstimates(t *testing.T) {
	p, design, cfg := setup(t, "syn.gzip", 0.01)
	an, err := Analyze(p, design, DefaultReuseProb, DefaultGranularity)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunAW(cfg, p, design, an, AWOpts{Stitched: true, CheckHandoff: true, MaxUnits: 10})
	if err != nil {
		t.Fatal(err)
	}
	want := design.Units()
	if want > 10 {
		want = 10
	}
	if len(res.UnitCPIs) != want {
		t.Fatalf("%d units, want %d", len(res.UnitCPIs), want)
	}
	for i, c := range res.UnitCPIs {
		if c <= 0 {
			t.Fatalf("unit %d: CPI %f", i, c)
		}
	}
	if res.WarmInsts == 0 {
		t.Fatal("no functional warming executed")
	}
}

// TestUnstitchedBiasExceedsStitched reproduces the paper's Table 3
// footnote: breaking window dependence (empty caches at each warming
// start) substantially increases bias on a memory-sensitive workload.
func TestUnstitchedBiasExceedsStitched(t *testing.T) {
	p, design, cfg := setup(t, "syn.mcf", 0.02)

	full, err := warm.RunSMARTS(cfg, p, design, warm.SMARTSOpts{})
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(p, design, DefaultReuseProb, DefaultGranularity)
	if err != nil {
		t.Fatal(err)
	}
	st, err := RunAW(cfg, p, design, an, AWOpts{Stitched: true})
	if err != nil {
		t.Fatal(err)
	}
	un, err := RunAW(cfg, p, design, an, AWOpts{Stitched: false})
	if err != nil {
		t.Fatal(err)
	}
	ref := full.Est.Mean()
	stErr := abs(st.Est.Mean()-ref) / ref
	unErr := abs(un.Est.Mean()-ref) / ref
	t.Logf("stitched err %.2f%%, unstitched err %.2f%% (vs full warming %f)", 100*stErr, 100*unErr, ref)
	if unErr < stErr {
		t.Errorf("unstitched (%f) should not beat stitched (%f)", unErr, stErr)
	}
}

// TestAWFasterThanSMARTSWarming checks adaptive warming actually reduces
// warming work (the paper's ~20% of full warming).
func TestAWReducesWarmingInstructions(t *testing.T) {
	p, design, cfg := setup(t, "syn.gzip", 0.02)
	full, err := warm.RunSMARTS(cfg, p, design, warm.SMARTSOpts{})
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(p, design, DefaultReuseProb, DefaultGranularity)
	if err != nil {
		t.Fatal(err)
	}
	aw, err := RunAW(cfg, p, design, an, AWOpts{Stitched: true})
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(aw.WarmInsts) / float64(full.FuncWarmInsts)
	t.Logf("AW warms %.1f%% of the instructions SMARTS warms", 100*frac)
	if frac >= 1.0 {
		t.Errorf("adaptive warming (%d) should warm fewer instructions than SMARTS (%d)",
			aw.WarmInsts, full.FuncWarmInsts)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
