module livepoints

go 1.22
