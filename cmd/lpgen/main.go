// Command lpgen creates a live-point library for one benchmark.
//
//	lpgen -bench syn.gcc -scale 0.5 -points 500 -o gcc.lplib
//	lpgen -bench syn.mcf -config 16way -restricted -o mcf-r.lplib
//
// The library stores cache and TLB state at the chosen configuration's
// maxima plus one snapshot of its branch predictor; simulations may later
// use any configuration within those bounds (§4.3).
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"livepoints"
)

func main() {
	var (
		bench      = flag.String("bench", "syn.gcc", "benchmark name (see suite in DESIGN.md)")
		scale      = flag.Float64("scale", 0.5, "benchmark length scale factor")
		points     = flag.Int("points", 500, "maximum live-points in the library")
		configName = flag.String("config", "8way", "maximum configuration: 8way or 16way")
		restricted = flag.Bool("restricted", false, "restricted live-state (Figure 5 ablation)")
		format     = flag.String("format", "v2", "library format: v2 (sharded, random-access) or v1 (legacy sequential stream)")
		out        = flag.String("o", "", "output library path (default <bench>.lplib)")
	)
	flag.Parse()

	cfg := livepoints.Config8Way()
	if *configName == "16way" {
		cfg = livepoints.Config16Way()
	}
	path := *out
	if path == "" {
		path = *bench + ".lplib"
	}

	log.Printf("generating %s at scale %.2f...", *bench, *scale)
	p := livepoints.GenerateBenchmark(*bench, *scale)
	design, err := livepoints.NewDesignFor(p, cfg, *points)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("creating %d live-points (max config %s)...", design.Units(), cfg.Name)

	t0 := time.Now()
	opts := livepoints.CreateOpts{MaxHier: cfg.Hier, Preds: []livepoints.PredictorConfig{cfg.BP}, Restricted: *restricted}
	var info livepoints.LibraryInfo
	switch *format {
	case "v2":
		info, err = livepoints.CreateLibraryOpts(p, design, opts, path)
	case "v1":
		info, err = livepoints.CreateLibraryLegacy(p, design, opts, path)
	default:
		log.Fatalf("lpgen: unknown -format %q (want v1 or v2)", *format)
	}
	if err != nil {
		log.Fatal(err)
	}
	shards := fmt.Sprintf(" in %d shards", info.Shards)
	if info.Shards == 0 { // legacy v1: one sequential stream, no shards
		shards = ""
	}
	fmt.Printf("%s: %d live-points%s, %.1f MB compressed (%.1f KB/point, %.1fx gzip), created in %v\n",
		info.Path, info.Points, shards,
		float64(info.CompressedBytes)/(1<<20),
		float64(info.CompressedBytes)/1024/float64(info.Points),
		float64(info.UncompressedBytes)/float64(info.CompressedBytes),
		time.Since(t0).Round(time.Millisecond))
}
