// Command smarts runs the full-warming (SMARTS) reference simulator over a
// benchmark: the technique live-points accelerate. Useful for validating a
// library against its baseline and for feeling the functional-warming
// bottleneck first-hand.
//
//	smarts -bench syn.gcc -scale 0.5
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"livepoints"
)

func main() {
	var (
		bench      = flag.String("bench", "syn.gcc", "benchmark name")
		scale      = flag.Float64("scale", 0.5, "benchmark length scale factor")
		points     = flag.Int("points", 500, "measurement units")
		configName = flag.String("config", "8way", "configuration: 8way or 16way")
		full       = flag.Bool("complete", false, "also run complete detailed simulation for comparison")
	)
	flag.Parse()

	cfg := livepoints.Config8Way()
	if *configName == "16way" {
		cfg = livepoints.Config16Way()
	}

	p := livepoints.GenerateBenchmark(*bench, *scale)
	design, err := livepoints.NewDesignFor(p, cfg, *points)
	if err != nil {
		log.Fatal(err)
	}

	log.Printf("SMARTS over %s: %d units of %d instructions...", *bench, design.Units(), design.UnitLen)
	t0 := time.Now()
	res, err := livepoints.SMARTS(cfg, p, design)
	if err != nil {
		log.Fatal(err)
	}
	total := time.Since(t0)
	fmt.Printf("CPI = %.4f ±%.2f%% (99.7%%) from %d units in %v\n",
		res.Est.Mean(), 100*res.Est.RelCI(livepoints.Z997), res.Est.N(), total.Round(time.Millisecond))
	fmt.Printf("functional warming: %d instructions, %v (%.1f%% of runtime)\n",
		res.FuncWarmInsts, res.FuncWarmTime.Round(time.Millisecond),
		100*res.FuncWarmTime.Seconds()/total.Seconds())
	fmt.Printf("detailed windows:   %d instructions, %v\n",
		res.DetailedInsts, res.DetailedTime.Round(time.Millisecond))

	if *full {
		t0 = time.Now()
		truth, err := livepoints.CompleteSimulation(cfg, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("complete simulation: CPI %.4f in %v; SMARTS error %+.2f%%\n",
			truth, time.Since(t0).Round(time.Millisecond), 100*(res.Est.Mean()-truth)/truth)
	}
}
