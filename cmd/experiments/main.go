// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -exp all                       # everything, full suite
//	experiments -exp table2 -bench syn.mcf     # one experiment, one benchmark
//	experiments -exp fig4,fig5 -scale 0.1      # quick pass at reduced scale
//
// Each experiment prints the same rows/series the paper reports; see
// DESIGN.md §4 for the experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured results.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"livepoints/internal/harness"
	"livepoints/internal/uarch"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "comma-separated experiments: table1,fig1,fig4,fig5,fig7,fig8,table2,table3,accuracy,matched,scaling,online,all")
		out      = flag.String("out", "out", "output directory for libraries and caches")
		scale    = flag.Float64("scale", 0.5, "benchmark length scale factor")
		benches  = flag.String("bench", "", "comma-separated benchmark subset (default: full suite)")
		maxLib   = flag.Int("maxlib", 500, "maximum live-points per library")
		offsets  = flag.Int("offsets", 2, "independent sample offsets for bias averaging")
		parallel = flag.Int("parallel", 8, "concurrent benchmark-level workers")
		verbose  = flag.Bool("v", false, "log progress to stderr")
	)
	flag.Parse()

	ctx := harness.NewContext(*out, *scale)
	ctx.MaxLibPoints = *maxLib
	ctx.Offsets = *offsets
	ctx.Parallel = *parallel
	if *benches != "" {
		ctx.Benches = strings.Split(*benches, ",")
	}
	if *verbose {
		ctx.Log = os.Stderr
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]

	cfg8 := uarch.Config8Way()
	cfg16 := uarch.Config16Way()

	fail := func(name string, err error) {
		fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
		os.Exit(1)
	}
	section := func(s string) { fmt.Printf("\n%s\n%s\n", s, strings.Repeat("=", len(s))) }

	if all || want["table1"] {
		section("Table 1")
		fmt.Print(harness.Table1())
	}
	if all || want["fig1"] {
		section("Figure 1")
		r, err := ctx.RunFigure1(cfg8)
		if err != nil {
			fail("fig1", err)
		}
		fmt.Print(r)
	}

	var fig4, fig4u, fig5 *harness.BiasResult
	var err error
	if all || want["fig4"] || want["table3"] {
		section("Figure 4")
		if fig4, err = ctx.RunFigure4(cfg8, true); err != nil {
			fail("fig4", err)
		}
		fmt.Print(fig4)
		if fig4u, err = ctx.RunFigure4(cfg8, false); err != nil {
			fail("fig4-unstitched", err)
		}
		fmt.Println()
		fmt.Print(fig4u)
	}
	if all || want["fig5"] || want["table3"] {
		section("Figure 5")
		if fig5, err = ctx.RunFigure5(cfg8); err != nil {
			fail("fig5", err)
		}
		fmt.Print(fig5)
	}
	if all || want["fig7"] {
		section("Figure 7")
		r, err := ctx.RunFigure7("syn.gcc", cfg8)
		if err != nil {
			fail("fig7", err)
		}
		fmt.Print(r)
	}
	if all || want["fig8"] {
		section("Figure 8")
		r, err := ctx.RunFigure8("syn.mcf")
		if err != nil {
			fail("fig8", err)
		}
		fmt.Print(r)
	}

	var t2 *harness.Table2Result
	if all || want["table2"] || want["table3"] {
		section("Table 2 (8-way)")
		if t2, err = ctx.RunTable2(cfg8); err != nil {
			fail("table2", err)
		}
		fmt.Print(t2)
		if all || want["table2"] {
			section("Table 2 (16-way)")
			t216, err := ctx.RunTable2(cfg16)
			if err != nil {
				fail("table2-16", err)
			}
			fmt.Print(t216)
		}
	}
	if all || want["table3"] {
		section("Table 3")
		r, err := ctx.RunTable3(fig4, fig4u, fig5, t2, cfg8)
		if err != nil {
			fail("table3", err)
		}
		fmt.Print(r)
	}
	if all || want["accuracy"] {
		section("Accuracy headline")
		r, err := ctx.RunAccuracy(cfg8)
		if err != nil {
			fail("accuracy", err)
		}
		fmt.Print(r)
	}
	if all || want["matched"] {
		section("Matched-pair comparison (§6.2)")
		r, err := ctx.RunMatchedPair("syn.gcc", cfg8)
		if err != nil {
			fail("matched", err)
		}
		fmt.Print(r)
	}
	if all || want["scaling"] {
		section("Scaling with benchmark length")
		r, err := ctx.RunScaling("syn.gzip", cfg8, []float64{0.2, 0.4, 0.8, 1.6})
		if err != nil {
			fail("scaling", err)
		}
		fmt.Print(r)
	}
	if all || want["online"] {
		section("Online results (§6.1)")
		r, err := ctx.RunOnlineDemo("syn.gcc", cfg8)
		if err != nil {
			fail("online", err)
		}
		fmt.Print(r)
	}
}
