// Command lpworker is one node of a distributed sampling fleet: it pulls
// simulation leases from a cluster coordinator (lpserved -cluster),
// fetches the leased live-points over the same HTTP listener, simulates
// them locally, and posts per-point results back until the coordinator
// declares the run done.
//
//	lpworker -coord http://host:8147                # one puller
//	lpworker -coord http://host:8147 -parallel 8    # eight pullers
//
// Workers are stateless and crash-safe: a worker that dies mid-lease is
// simply outwaited — the coordinator reassigns its lease after the TTL.
// The reverse also holds: if the coordinator dies, workers back off with
// jitter and resume pulling when it returns (a journaled coordinator
// restart rejects their stale leases with 410, which they shrug off).
//
// The first SIGINT/SIGTERM drains gracefully: each puller finishes and
// posts its in-flight lease, acquires nothing new, and exits. A second
// signal aborts immediately, discarding in-flight work (the coordinator
// reassigns those leases after the TTL).
//
// While pulling, the process emits a structured (logfmt) fleet-progress
// line every -progress interval — points folded fleet-wide, fold rate,
// the live confidence interval against its target, and the ETA on
// whole-library runs — read straight from the coordinator's GET /v1/run.
// -v adds a debug line per completed lease.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"livepoints/internal/faultinject"
	"livepoints/internal/lpcluster"
	"livepoints/internal/lpserve"
	"livepoints/internal/obs"
)

func main() {
	var (
		coord    = flag.String("coord", "", "coordinator base URL (required), e.g. http://host:8147")
		parallel = flag.Int("parallel", 1, "concurrent lease pullers in this process")
		id       = flag.String("id", "", "worker id reported in leases (default host-pid)")
		progress = flag.Duration("progress", 10*time.Second, "fleet progress report interval (0 disables)")
		verbose  = flag.Bool("v", false, "log every completed lease")
		chaos    = flag.Uint64("chaos", 0, "seed deterministic fault injection into this worker's coordinator traffic (testing only; 0 disables)")
	)
	flag.Parse()
	if *coord == "" {
		log.Fatal("lpworker: -coord is required")
	}
	if *id == "" {
		host, _ := os.Hostname()
		*id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	cl, err := lpserve.DialContext(ctx, *coord)
	if err != nil {
		log.Fatal(err)
	}
	stat := cl.Stat()
	log.Printf("pulling leases from %s (%s, %d points, %d shards)",
		*coord, stat.Benchmark, stat.Points, stat.Shards)
	if *chaos != 0 {
		// Injected after the dial so startup sees the real coordinator;
		// from here on every exchange rolls against the seeded schedule.
		sched := faultinject.NewSchedule(*chaos, faultinject.DefaultRates(3*time.Second))
		cl.SetTransport(&faultinject.Transport{Base: http.DefaultTransport, Sched: sched})
		log.Printf("chaos: fault injection armed with seed %#x — results remain exact, expect noisy logs", *chaos)
	}

	level := obs.LevelInfo
	if *verbose {
		level = obs.LevelDebug
	}
	logger := obs.NewLogger(os.Stderr, level, "lpworker")

	t0 := time.Now()
	workers := make([]*lpcluster.Worker, *parallel)
	var wg sync.WaitGroup
	errs := make(chan error, *parallel)
	for i := range workers {
		w := lpcluster.NewWorker(fmt.Sprintf("%s/%d", *id, i), cl)
		w.Log = logger
		workers[i] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(ctx); err != nil {
				errs <- err
			}
		}()
	}
	// Two-stage signal handling: the first signal drains (finish and post
	// the in-flight lease, take nothing new), a second one hard-cancels.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		s := <-sig
		log.Printf("%s: draining — finishing in-flight leases (signal again to abort)", s)
		for _, w := range workers {
			w.Drain()
		}
		s = <-sig
		log.Printf("%s: aborting", s)
		cancel()
	}()
	if *progress > 0 {
		go reportProgress(ctx, cl, logger, *progress)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		if ctx.Err() != nil {
			log.Printf("interrupted: %v", err)
		} else {
			log.Fatal(err)
		}
	}

	var leases, points, expired, reconnects int
	for _, w := range workers {
		leases += w.Leases
		points += w.Points
		expired += w.Expired
		reconnects += w.Reconnects
	}
	log.Printf("done: %d leases, %d points simulated (%d leases lost to expiry, %d coordinator outages ridden out) in %v",
		leases, points, expired, reconnects, time.Since(t0).Round(time.Millisecond))
}

// reportProgress polls the coordinator's run state and logs one logfmt
// progress line per interval until the run finishes or ctx is cancelled.
func reportProgress(ctx context.Context, cl *lpserve.Client, logger *obs.Logger, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		var st lpcluster.RunState
		if err := cl.DoJSON(ctx, http.MethodGet, "/v1/run", nil, &st); err != nil {
			logger.Warn("progress poll failed", "err", err)
			continue
		}
		if st.Phase == lpcluster.PhaseDone {
			return
		}
		kv := []any{
			"done", st.Done, "total", st.Points,
			"active", st.ActiveLeases, "reassigned", st.Reassigned,
			"pointsPerSec", st.PointsPerSec,
		}
		if st.TargetRelErr > 0 {
			kv = append(kv, "relCI", st.RelCI, "target", st.TargetRelErr)
		}
		if st.EtaMillis > 0 {
			kv = append(kv, "eta", time.Duration(st.EtaMillis)*time.Millisecond)
		}
		logger.Info("fleet progress", kv...)
	}
}
