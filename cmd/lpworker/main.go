// Command lpworker is one node of a distributed sampling fleet: it pulls
// simulation leases from a cluster coordinator (lpserved -cluster),
// fetches the leased live-points over the same HTTP listener, simulates
// them locally, and posts per-point results back until the coordinator
// declares the run done.
//
//	lpworker -coord http://host:8147                # one puller
//	lpworker -coord http://host:8147 -parallel 8    # eight pullers
//
// Workers are stateless and crash-safe: a worker that dies mid-lease is
// simply outwaited — the coordinator reassigns its lease after the TTL.
// SIGINT/SIGTERM stop the pullers at the next lease boundary.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"livepoints/internal/lpcluster"
	"livepoints/internal/lpserve"
)

func main() {
	var (
		coord    = flag.String("coord", "", "coordinator base URL (required), e.g. http://host:8147")
		parallel = flag.Int("parallel", 1, "concurrent lease pullers in this process")
		id       = flag.String("id", "", "worker id reported in leases (default host-pid)")
	)
	flag.Parse()
	if *coord == "" {
		log.Fatal("lpworker: -coord is required")
	}
	if *id == "" {
		host, _ := os.Hostname()
		*id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	cl, err := lpserve.DialContext(ctx, *coord)
	if err != nil {
		log.Fatal(err)
	}
	stat := cl.Stat()
	log.Printf("pulling leases from %s (%s, %d points, %d shards)",
		*coord, stat.Benchmark, stat.Points, stat.Shards)

	t0 := time.Now()
	workers := make([]*lpcluster.Worker, *parallel)
	var wg sync.WaitGroup
	errs := make(chan error, *parallel)
	for i := range workers {
		w := lpcluster.NewWorker(fmt.Sprintf("%s/%d", *id, i), cl)
		workers[i] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(ctx); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		if ctx.Err() != nil {
			log.Printf("interrupted: %v", err)
		} else {
			log.Fatal(err)
		}
	}

	var leases, points, expired int
	for _, w := range workers {
		leases += w.Leases
		points += w.Points
		expired += w.Expired
	}
	log.Printf("done: %d leases, %d points simulated (%d leases lost to expiry) in %v",
		leases, points, expired, time.Since(t0).Round(time.Millisecond))
}
