// Command lpserved serves a live-point library to remote simulation
// workers over HTTP.
//
//	lpserved -lib gcc.lplib                 # serve on :8147
//	lpserved -lib gcc.lplib -addr :9000
//	lpsim -server http://host:8147          # remote worker pulls points
//
// With -cluster the same process also coordinates a distributed sampling
// run: it issues point leases to lpworker fleets, folds their posted
// partial statistics, applies the §6.1 online stopping rule fleet-wide,
// and reassigns leases from crashed workers. `lpsim -coord URL` polls the
// run for the final fleet-wide estimate.
//
//	lpserved -lib gcc.lplib -cluster -err 0.03      # coordinate to ±3%
//	lpserved -lib gcc.lplib -cluster -matched -memlat 150
//
// With -journal the cluster run is crash-safe: the run spec and every
// accepted result are appended (and fsynced) to a write-ahead journal
// before they are folded. If the coordinator is killed mid-run —
// SIGKILL included — restarting it with the same flags replays the
// journal and resumes the run with a bit-equal estimate; workers ride
// the restart out and results for pre-restart leases are rejected (410)
// rather than double-counted.
//
//	lpserved -lib gcc.lplib -cluster -err 0.03 -journal run.waj
//
// Legacy v1 (sequential gzip) libraries are migrated to the sharded v2
// format on startup — written next to the source by default — so every
// served library supports random access, ranged batch fetch, and raw-shard
// passthrough (stored gzip bytes stream to clients verbatim; the server
// never recompresses). SIGINT/SIGTERM drain in-flight requests before
// exit.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"livepoints/internal/lpcluster"
	"livepoints/internal/lpserve"
	"livepoints/internal/lpstore"
	"livepoints/internal/sampling"
)

func main() {
	var (
		lib         = flag.String("lib", "", "live-point library path, v1 or v2 (required)")
		addr        = flag.String("addr", ":8147", "listen address")
		migrateOut  = flag.String("migrate-out", "", "where to write the v2 migration of a v1 library (default <lib>.v2)")
		shardPoints = flag.Int("shard-points", 0, "points per shard when migrating (default 64)")
		drainWait   = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")

		cluster     = flag.Bool("cluster", false, "also coordinate a distributed sampling run over this library")
		configName  = flag.String("config", "8way", "cluster: simulated configuration, 8way or 16way")
		relErr      = flag.Float64("err", 0, "cluster: online stopping target (0 = whole library)")
		matched     = flag.Bool("matched", false, "cluster: matched-pair comparison against a modified configuration")
		memLat      = flag.Int("memlat", 0, "cluster matched: override memory latency")
		l2KB        = flag.Int("l2kb", 0, "cluster matched: override L2 size (KB)")
		ruu         = flag.Int("ruu", 0, "cluster matched: override RUU size")
		noImpact    = flag.Float64("noimpact", 0, "cluster matched: no-impact screen threshold (e.g. 0.03)")
		leasePoints = flag.Int("lease-points", 0, "cluster: points per range lease (default 64)")
		leaseTTL    = flag.Duration("lease-ttl", 0, "cluster: lease expiry; crashed workers' leases reassign after this (default 60s)")
		journal     = flag.String("journal", "", "cluster: write-ahead run journal; an existing journal resumes its run")
	)
	flag.Parse()
	if *lib == "" {
		log.Fatal("lpserved: -lib is required")
	}
	if *journal != "" && !*cluster {
		log.Fatal("lpserved: -journal requires -cluster")
	}

	path := *lib
	v2, err := lpstore.IsV2(path)
	if err != nil {
		log.Fatal(err)
	}
	if !v2 {
		dst := *migrateOut
		if dst == "" {
			dst = path + ".v2"
		}
		log.Printf("%s is a v1 library; migrating to %s...", path, dst)
		info, err := lpstore.Migrate(path, dst, lpstore.WriteOpts{ShardPoints: *shardPoints})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("migrated %d points into %d shards (%.1f MB)", info.Points, info.Shards,
			float64(info.CompressedBytes)/(1<<20))
		path = dst
	}

	st, err := lpstore.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	stat := st.Stat()
	log.Printf("serving %s (%d points, %d shards, shuffled=%v) on http://%s",
		stat.Benchmark, stat.Points, stat.Shards, stat.Shuffled, l.Addr())
	log.Printf("metrics (Prometheus text format) at http://%s/metrics", l.Addr())

	srv := lpserve.NewServer(st)
	if *cluster {
		spec := lpcluster.RunSpec{Config: *configName, RelErr: *relErr}
		if *matched {
			spec.Mode = lpcluster.ModeMatched
			spec.MemLat = *memLat
			spec.L2KB = *l2KB
			spec.RUU = *ruu
			spec.NoImpactThreshold = *noImpact
		}
		opt := lpcluster.Options{
			LeasePoints: *leasePoints,
			LeaseTTL:    *leaseTTL,
		}
		var coord *lpcluster.Coordinator
		var err error
		if *journal != "" {
			coord, err = lpcluster.NewJournaledCoordinator(st, spec, opt, *journal)
		} else {
			coord, err = lpcluster.NewCoordinator(st, spec, opt)
		}
		if err != nil {
			log.Fatal(err)
		}
		defer coord.Close()
		coord.Mount(srv)
		log.Printf("coordinating a %s cluster run (err target %v); point lpworker -coord at this address",
			coord.Spec().Mode, *relErr)
		if epoch := coord.Epoch(); epoch > 0 {
			rs := coord.State()
			log.Printf("resumed run from journal %s: epoch %d, %d/%d points already folded (phase %s)",
				*journal, epoch, rs.Done, rs.Points, rs.Phase)
		}
		go func() {
			<-coord.Done()
			res, _ := coord.Final()
			if coord.Spec().Mode == lpcluster.ModeMatched {
				log.Printf("cluster run done: ΔCPI %+.2f%% from %d pairs in %v (%d leases reassigned)",
					100*res.MP.RelDelta(), res.Processed, res.Elapsed.Round(time.Millisecond), res.Reassigned)
				return
			}
			log.Printf("cluster run done: CPI %.4f ±%.2f%% from %d points in %v (stopped=%v, %d leases reassigned)",
				res.Est.Mean(), 100*res.Est.RelCI(sampling.Z997), res.Processed,
				res.Elapsed.Round(time.Millisecond), res.Stopped, res.Reassigned)
		}()
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(l) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-served:
		if err != nil {
			log.Fatal(err)
		}
	case s := <-sig:
		log.Printf("%s: draining (up to %v)...", s, *drainWait)
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Fatalf("shutdown: %v", err)
		}
		if err := <-served; err != nil {
			log.Fatal(err)
		}
		log.Print("bye")
	}
}
