// Command lpserved serves a live-point library to remote simulation
// workers over HTTP.
//
//	lpserved -lib gcc.lplib                 # serve on :8147
//	lpserved -lib gcc.lplib -addr :9000
//	lpsim -server http://host:8147          # remote worker pulls points
//
// Legacy v1 (sequential gzip) libraries are migrated to the sharded v2
// format on startup — written next to the source by default — so every
// served library supports random access, ranged batch fetch, and raw-shard
// passthrough (stored gzip bytes stream to clients verbatim; the server
// never recompresses). SIGINT/SIGTERM drain in-flight requests before
// exit.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"livepoints/internal/lpserve"
	"livepoints/internal/lpstore"
)

func main() {
	var (
		lib         = flag.String("lib", "", "live-point library path, v1 or v2 (required)")
		addr        = flag.String("addr", ":8147", "listen address")
		migrateOut  = flag.String("migrate-out", "", "where to write the v2 migration of a v1 library (default <lib>.v2)")
		shardPoints = flag.Int("shard-points", 0, "points per shard when migrating (default 64)")
		drainWait   = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	)
	flag.Parse()
	if *lib == "" {
		log.Fatal("lpserved: -lib is required")
	}

	path := *lib
	v2, err := lpstore.IsV2(path)
	if err != nil {
		log.Fatal(err)
	}
	if !v2 {
		dst := *migrateOut
		if dst == "" {
			dst = path + ".v2"
		}
		log.Printf("%s is a v1 library; migrating to %s...", path, dst)
		info, err := lpstore.Migrate(path, dst, lpstore.WriteOpts{ShardPoints: *shardPoints})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("migrated %d points into %d shards (%.1f MB)", info.Points, info.Shards,
			float64(info.CompressedBytes)/(1<<20))
		path = dst
	}

	st, err := lpstore.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	stat := st.Stat()
	log.Printf("serving %s (%d points, %d shards, shuffled=%v) on http://%s",
		stat.Benchmark, stat.Points, stat.Shards, stat.Shuffled, l.Addr())

	srv := lpserve.NewServer(st)
	served := make(chan error, 1)
	go func() { served <- srv.Serve(l) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-served:
		if err != nil {
			log.Fatal(err)
		}
	case s := <-sig:
		log.Printf("%s: draining (up to %v)...", s, *drainWait)
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Fatalf("shutdown: %v", err)
		}
		if err := <-served; err != nil {
			log.Fatal(err)
		}
		log.Print("bye")
	}
}
