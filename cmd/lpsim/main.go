// Command lpsim runs sampling experiments from a live-point library — a
// local file (v1 or sharded v2, auto-detected) or a remote lpserved
// instance.
//
//	lpsim -lib gcc.lplib                          # absolute CPI to ±3% @ 99.7%
//	lpsim -lib gcc.lplib -parallel 8              # goroutine-parallel
//	lpsim -server http://host:8147 -parallel 8    # pull from lpserved
//	lpsim -lib gcc.lplib -matched -memlat 150     # matched-pair comparison
//
// Results and their confidence are reported online as the (shuffled)
// library streams in; the run stops as soon as the target is met (§6.1).
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"livepoints"
)

func main() {
	var (
		lib        = flag.String("lib", "", "live-point library path")
		server     = flag.String("server", "", "lpserved base URL (e.g. http://host:8147); alternative to -lib")
		configName = flag.String("config", "8way", "simulated configuration: 8way or 16way")
		relErr     = flag.Float64("err", 0.03, "relative error target (0 = process whole library)")
		parallel   = flag.Int("parallel", 1, "simulation workers")
		matched    = flag.Bool("matched", false, "matched-pair comparison against a modified configuration")
		memLat     = flag.Int("memlat", 0, "matched: override memory latency")
		l2KB       = flag.Int("l2kb", 0, "matched: override L2 size (KB, must be within library max)")
		ruu        = flag.Int("ruu", 0, "matched: override RUU size")
	)
	flag.Parse()
	if (*lib == "") == (*server == "") {
		log.Fatal("lpsim: exactly one of -lib or -server is required")
	}

	cfg := livepoints.Config8Way()
	if *configName == "16way" {
		cfg = livepoints.Config16Way()
	}

	// source opens a fresh stream over the chosen library; nil means run
	// from the local file path (which auto-detects the format).
	var source func() (livepoints.Source, error)
	where := *lib
	if *server != "" {
		client, err := livepoints.Connect(*server)
		if err != nil {
			log.Fatal(err)
		}
		stat := client.Stat()
		log.Printf("connected to %s: %s, %d points in %d shards", *server, stat.Benchmark, stat.Points, stat.Shards)
		source = func() (livepoints.Source, error) { return client.Source(), nil }
		where = *server
	}

	if *matched {
		exp := cfg
		exp.Name = "experimental"
		if *memLat > 0 {
			exp.Hier.MemLat = *memLat
		}
		if *l2KB > 0 {
			exp.Hier.L2.SizeBytes = int64(*l2KB) << 10
		}
		if *ruu > 0 {
			exp.RUUSize = *ruu
		}
		opts := livepoints.MatchedOpts{
			Base: cfg, Exp: exp,
			Z: livepoints.Z997, RelErr: *relErr / 2, NoImpactThreshold: 0.03,
		}
		t0 := time.Now()
		var res *livepoints.MatchedResult
		var err error
		if source != nil {
			var src livepoints.Source
			if src, err = source(); err == nil {
				defer src.Close()
				res, err = livepoints.RunMatchedSource(src, opts)
			}
		} else {
			res, err = livepoints.RunMatched(where, opts)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ΔCPI = %+.2f%% of baseline (base %.4f -> exp %.4f) from %d pairs in %v\n",
			100*res.MP.RelDelta(), res.MP.Base.Mean(), res.MP.Exp.Mean(),
			res.Processed, time.Since(t0).Round(time.Millisecond))
		fmt.Printf("matched-pair sample-size reduction vs absolute: %.1fx\n", res.MP.SampleSizeReduction())
		if res.StoppedNoImpact {
			fmt.Println("verdict: no appreciable impact (<3% CPI change), screened early")
		}
		return
	}

	opts := livepoints.RunOpts{
		Cfg: cfg, Z: livepoints.Z997, RelErr: *relErr, Parallel: *parallel,
	}
	t0 := time.Now()
	var res *livepoints.RunResult
	var err error
	if source != nil {
		var src livepoints.Source
		if src, err = source(); err == nil {
			defer src.Close()
			res, err = livepoints.RunSource(src, opts)
		}
	} else {
		res, err = livepoints.Run(where, opts)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CPI = %.4f ±%.2f%% (99.7%% confidence) from %d live-points in %v\n",
		res.Est.Mean(), 100*res.Est.RelCI(livepoints.Z997), res.Processed,
		time.Since(t0).Round(time.Millisecond))
	fmt.Printf("load %v, simulate %v; wrong-path unknown loads/window: %.3f (capture errors: %d)\n",
		res.LoadTime.Round(time.Millisecond), res.SimTime.Round(time.Millisecond),
		float64(res.UnknownLoads)/float64(res.Processed), res.CaptureErrors)
}
