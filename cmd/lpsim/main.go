// Command lpsim runs sampling experiments from a live-point library — a
// local file (v1 or sharded v2, auto-detected) or a remote lpserved
// instance.
//
//	lpsim -lib gcc.lplib                          # absolute CPI to ±3% @ 99.7%
//	lpsim -lib gcc.lplib -parallel 8              # goroutine-parallel
//	lpsim -server http://host:8147 -parallel 8    # pull from lpserved
//	lpsim -lib gcc.lplib -matched -memlat 150     # matched-pair comparison
//	lpsim -coord http://host:8147                 # watch a cluster run
//
// Results and their confidence are reported online as the (shuffled)
// library streams in; the run stops as soon as the target is met (§6.1).
// With -coord, the simulation happens on an lpworker fleet instead:
// lpsim polls the coordinator (lpserved -cluster) and reports the
// fleet-wide result when the run completes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"livepoints"
	"livepoints/internal/lpcluster"
	"livepoints/internal/lpserve"
	"livepoints/internal/obs"
)

func main() {
	var (
		lib        = flag.String("lib", "", "live-point library path")
		server     = flag.String("server", "", "lpserved base URL (e.g. http://host:8147); alternative to -lib")
		coord      = flag.String("coord", "", "cluster coordinator base URL; report the fleet-wide run instead of simulating locally")
		configName = flag.String("config", "8way", "simulated configuration: 8way or 16way")
		relErr     = flag.Float64("err", 0.03, "relative error target (0 = process whole library)")
		parallel   = flag.Int("parallel", 1, "simulation workers")
		matched    = flag.Bool("matched", false, "matched-pair comparison against a modified configuration")
		memLat     = flag.Int("memlat", 0, "matched: override memory latency")
		l2KB       = flag.Int("l2kb", 0, "matched: override L2 size (KB, must be within library max)")
		ruu        = flag.Int("ruu", 0, "matched: override RUU size")
	)
	flag.Parse()
	modes := 0
	for _, m := range []string{*lib, *server, *coord} {
		if m != "" {
			modes++
		}
	}
	if modes != 1 {
		log.Fatal("lpsim: exactly one of -lib, -server, or -coord is required")
	}
	if *coord != "" {
		watchCluster(*coord)
		return
	}

	cfg := livepoints.Config8Way()
	if *configName == "16way" {
		cfg = livepoints.Config16Way()
	}

	// source opens a fresh stream over the chosen library; nil means run
	// from the local file path (which auto-detects the format).
	var source func() (livepoints.Source, error)
	where := *lib
	if *server != "" {
		client, err := livepoints.Connect(*server)
		if err != nil {
			log.Fatal(err)
		}
		stat := client.Stat()
		log.Printf("connected to %s: %s, %d points in %d shards", *server, stat.Benchmark, stat.Points, stat.Shards)
		source = func() (livepoints.Source, error) { return client.Source(), nil }
		where = *server
	}

	if *matched {
		exp := cfg
		exp.Name = "experimental"
		if *memLat > 0 {
			exp.Hier.MemLat = *memLat
		}
		if *l2KB > 0 {
			exp.Hier.L2.SizeBytes = int64(*l2KB) << 10
		}
		if *ruu > 0 {
			exp.RUUSize = *ruu
		}
		opts := livepoints.MatchedOpts{
			Base: cfg, Exp: exp,
			Z: livepoints.Z997, RelErr: *relErr / 2, NoImpactThreshold: 0.03,
		}
		t0 := time.Now()
		var res *livepoints.MatchedResult
		var err error
		if source != nil {
			var src livepoints.Source
			if src, err = source(); err == nil {
				defer src.Close()
				res, err = livepoints.RunMatchedSource(src, opts)
			}
		} else {
			res, err = livepoints.RunMatched(where, opts)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ΔCPI = %+.2f%% of baseline (base %.4f -> exp %.4f) from %d pairs in %v\n",
			100*res.MP.RelDelta(), res.MP.Base.Mean(), res.MP.Exp.Mean(),
			res.Processed, time.Since(t0).Round(time.Millisecond))
		fmt.Printf("matched-pair sample-size reduction vs absolute: %.1fx\n", res.MP.SampleSizeReduction())
		if res.StoppedNoImpact {
			fmt.Println("verdict: no appreciable impact (<3% CPI change), screened early")
		}
		return
	}

	opts := livepoints.RunOpts{
		Cfg: cfg, Z: livepoints.Z997, RelErr: *relErr, Parallel: *parallel,
	}
	t0 := time.Now()
	var res *livepoints.RunResult
	var err error
	if source != nil {
		var src livepoints.Source
		if src, err = source(); err == nil {
			defer src.Close()
			res, err = livepoints.RunSource(src, opts)
		}
	} else {
		res, err = livepoints.Run(where, opts)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CPI = %.4f ±%.2f%% (99.7%% confidence) from %d live-points in %v\n",
		res.Est.Mean(), 100*res.Est.RelCI(livepoints.Z997), res.Processed,
		time.Since(t0).Round(time.Millisecond))
	fmt.Printf("load %v, simulate %v; wrong-path unknown loads/window: %.3f (capture errors: %d)\n",
		res.LoadTime.Round(time.Millisecond), res.SimTime.Round(time.Millisecond),
		float64(res.UnknownLoads)/float64(res.Processed), res.CaptureErrors)
}

// watchCluster polls a coordinator's run state until the fleet finishes,
// emitting a structured (logfmt) progress line per change — fold rate,
// live confidence interval against its target, ETA on whole-library
// runs — then prints the folded result in the same shape as a local run.
func watchCluster(url string) {
	ctx := context.Background()
	cl, err := lpserve.DialContext(ctx, url)
	if err != nil {
		log.Fatal(err)
	}
	var st lpcluster.RunState
	if err := cl.DoJSON(ctx, http.MethodGet, "/v1/run", nil, &st); err != nil {
		log.Fatal(err)
	}
	log.Printf("watching %s cluster run at %s: %d points, target err %v",
		st.Spec.Mode, url, st.Points, st.Spec.RelErr)

	logger := obs.NewLogger(os.Stderr, obs.LevelInfo, "lpsim")
	lastDone := -1
	for st.Phase != lpcluster.PhaseDone {
		if st.Done != lastDone {
			kv := []any{
				"done", st.Done, "total", st.Points,
				"active", st.ActiveLeases, "reassigned", st.Reassigned,
				"pointsPerSec", st.PointsPerSec,
			}
			if st.TargetRelErr > 0 {
				kv = append(kv, "relCI", st.RelCI, "target", st.TargetRelErr)
			}
			if st.EtaMillis > 0 {
				kv = append(kv, "eta", time.Duration(st.EtaMillis)*time.Millisecond)
			}
			logger.Info("fleet progress", kv...)
			lastDone = st.Done
		}
		time.Sleep(500 * time.Millisecond)
		if err := cl.DoJSON(ctx, http.MethodGet, "/v1/run", nil, &st); err != nil {
			log.Fatal(err)
		}
	}

	elapsed := (time.Duration(st.ElapsedMillis) * time.Millisecond).Round(time.Millisecond)
	if st.Spec.Mode == lpcluster.ModeMatched {
		fmt.Printf("ΔCPI = %+.2f%% of baseline (base %.4f -> exp %.4f) from %d pairs in %v across the fleet\n",
			100*st.RelDelta, st.BaseMean, st.ExpMean, st.N, elapsed)
		if st.StoppedNoImpact {
			fmt.Println("verdict: no appreciable impact, screened early")
		}
		return
	}
	fmt.Printf("CPI = %.4f ±%.2f%% (99.7%% confidence) from %d live-points in %v across the fleet\n",
		st.Mean, 100*st.RelCI, st.N, elapsed)
	fmt.Printf("fleet load %v, simulate %v; %d leases reassigned after worker loss\n",
		(time.Duration(st.LoadMillis) * time.Millisecond).Round(time.Millisecond),
		(time.Duration(st.SimMillis) * time.Millisecond).Round(time.Millisecond),
		st.Reassigned)
}
