// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (see DESIGN.md §4 for the index). Each benchmark
// regenerates its experiment at a reduced scale suitable for `go test
// -bench`; the cmd/experiments tool runs the same experiments at full
// experiment scale and EXPERIMENTS.md records paper-vs-measured values.
//
// Custom metrics use testing.B.ReportMetric, so benchmark output carries
// the experiment's headline numbers (bias %, speedups, KB/point) alongside
// wall-clock.
package livepoints_test

import (
	"math"
	"os"
	"sync"
	"testing"

	"livepoints/internal/harness"
	"livepoints/internal/uarch"
)

// benchCtx lazily builds one shared harness context for all benchmarks, so
// expensive artifacts (goldens, libraries, MRRL analyses) are created once
// and cached on disk.
var (
	ctxOnce sync.Once
	ctx     *harness.Context
)

// benchSubset is a three-benchmark slice of the suite spanning the
// behavioural extremes: compute-bound, memory-bound, branchy.
var benchSubset = []string{"syn.gzip", "syn.mcf", "syn.gcc"}

func benchContext(b *testing.B) *harness.Context {
	b.Helper()
	ctxOnce.Do(func() {
		dir := os.Getenv("LIVEPOINTS_BENCH_OUT")
		if dir == "" {
			dir = "out-bench"
		}
		ctx = harness.NewContext(dir, 0.05)
		ctx.MaxLibPoints = 200
		ctx.Offsets = 1
		ctx.Parallel = 4
		ctx.Benches = benchSubset
	})
	return ctx
}

// BenchmarkTable1Configs exercises configuration construction and
// validation (Table 1).
func BenchmarkTable1Configs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if harness.Table1() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFigure1WarmingShare measures the SMARTS runtime split (Figure 1):
// the fraction of time functional warming consumes.
func BenchmarkFigure1WarmingShare(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := c.RunFigure1(uarch.Config8Way())
		if err != nil {
			b.Fatal(err)
		}
		var w, d float64
		for _, row := range res.Rows {
			w += row.WarmSeconds
			d += row.DetSeconds
		}
		b.ReportMetric(100*w/(w+d), "warm-%")
	}
}

// BenchmarkFigure4AdaptiveBias regenerates the AW-MRRL additional-bias
// experiment (Figure 4).
func BenchmarkFigure4AdaptiveBias(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := c.RunFigure4(uarch.Config8Way(), true)
		if err != nil {
			b.Fatal(err)
		}
		_, _, add := res.Avg()
		_, worst := res.Worst()
		b.ReportMetric(100*add, "avg-add-bias-%")
		b.ReportMetric(100*worst, "worst-add-bias-%")
	}
}

// BenchmarkFigure5RestrictedBias regenerates the restricted-live-state
// ablation (Figure 5).
func BenchmarkFigure5RestrictedBias(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := c.RunFigure5(uarch.Config8Way())
		if err != nil {
			b.Fatal(err)
		}
		_, _, add := res.Avg()
		b.ReportMetric(100*add, "avg-add-bias-%")
	}
}

// BenchmarkFigure7Breakdown regenerates the live-point size breakdown
// (Figure 7).
func BenchmarkFigure7Breakdown(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := c.RunFigure7("syn.gcc", uarch.Config8Way())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.LPTotal)/1024, "KB/point")
		b.ReportMetric(float64(res.LPCompressed)/1024, "gzKB/point")
	}
}

// BenchmarkFigure8Sweep regenerates the max-cache sweep (Figure 8).
func BenchmarkFigure8Sweep(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := c.RunFigure8("syn.mcf")
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(float64(last.LPBytes)/1024, "KB/point@16MB")
		b.ReportMetric(last.AWMillis/math.Max(last.LPMillis, 1e-9), "AW/LP-time")
	}
}

// BenchmarkTable2Runtimes regenerates the per-technique runtime comparison
// (Table 2, 8-way).
func BenchmarkTable2Runtimes(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := c.RunTable2(uarch.Config8Way())
		if err != nil {
			b.Fatal(err)
		}
		_, sm, _ := res.MinAvgMax(func(r harness.Table2Row) float64 { return r.SMARTS })
		_, lp, _ := res.MinAvgMax(func(r harness.Table2Row) float64 { return r.LivePoints })
		b.ReportMetric(sm/math.Max(lp, 1e-9), "speedup-vs-SMARTS")
	}
}

// BenchmarkTable3Summary regenerates the summary table (Table 3) from its
// component experiments.
func BenchmarkTable3Summary(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		cfg := uarch.Config8Way()
		fig4, err := c.RunFigure4(cfg, true)
		if err != nil {
			b.Fatal(err)
		}
		fig4u, err := c.RunFigure4(cfg, false)
		if err != nil {
			b.Fatal(err)
		}
		fig5, err := c.RunFigure5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		t2, err := c.RunTable2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.RunTable3(fig4, fig4u, fig5, t2, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAccuracyHeadline regenerates the ±3 % @ 99.7 % headline check.
func BenchmarkAccuracyHeadline(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := c.RunAccuracy(uarch.Config8Way())
		if err != nil {
			b.Fatal(err)
		}
		var worst float64
		for _, row := range res.Rows {
			worst = math.Max(worst, math.Abs(row.Err))
		}
		b.ReportMetric(100*worst, "worst-err-%")
	}
}

// BenchmarkMatchedPair regenerates the §6.2 sensitivity study.
func BenchmarkMatchedPair(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := c.RunMatchedPair("syn.gcc", uarch.Config8Way())
		if err != nil {
			b.Fatal(err)
		}
		var maxRed float64
		for _, row := range res.Rows {
			maxRed = math.Max(maxRed, row.Reduction)
		}
		b.ReportMetric(maxRed, "max-reduction-x")
	}
}

// BenchmarkScalingBehavior regenerates the O(B)-vs-O(sample) turnaround
// sweep (§7.2 / Table 3 scaling rows).
func BenchmarkScalingBehavior(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := c.RunScaling("syn.gzip", uarch.Config8Way(), []float64{0.02, 0.04, 0.08})
		if err != nil {
			b.Fatal(err)
		}
		first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.SMARTS/math.Max(first.SMARTS, 1e-9), "smarts-growth-x")
		b.ReportMetric(last.LivePoints/math.Max(first.LivePoints, 1e-9), "lp-growth-x")
	}
}

// BenchmarkOnlineConvergence regenerates the §6.1 online-reporting demo.
func BenchmarkOnlineConvergence(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := c.RunOnlineDemo("syn.gcc", uarch.Config8Way())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.History) == 0 {
			b.Fatal("no history")
		}
		b.ReportMetric(100*res.Final.RelCI(3.0), "final-CI-%")
	}
}
