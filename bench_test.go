// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (see DESIGN.md §4 for the index). Each benchmark
// regenerates its experiment at a reduced scale suitable for `go test
// -bench`; the cmd/experiments tool runs the same experiments at full
// experiment scale and EXPERIMENTS.md records paper-vs-measured values.
//
// Custom metrics use testing.B.ReportMetric, so benchmark output carries
// the experiment's headline numbers (bias %, speedups, KB/point) alongside
// wall-clock.
package livepoints_test

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"livepoints/internal/asn1der"
	"livepoints/internal/bpred"
	"livepoints/internal/harness"
	"livepoints/internal/livepoint"
	"livepoints/internal/lpcluster"
	"livepoints/internal/lpserve"
	"livepoints/internal/lpstore"
	"livepoints/internal/prog"
	"livepoints/internal/sampling"
	"livepoints/internal/uarch"
	"livepoints/internal/warm"
)

// benchCtx lazily builds one shared harness context for all benchmarks, so
// expensive artifacts (goldens, libraries, MRRL analyses) are created once
// and cached on disk.
var (
	ctxOnce sync.Once
	ctx     *harness.Context
)

// benchSubset is a three-benchmark slice of the suite spanning the
// behavioural extremes: compute-bound, memory-bound, branchy.
var benchSubset = []string{"syn.gzip", "syn.mcf", "syn.gcc"}

func benchContext(b *testing.B) *harness.Context {
	b.Helper()
	ctxOnce.Do(func() {
		dir := os.Getenv("LIVEPOINTS_BENCH_OUT")
		if dir == "" {
			dir = "out-bench"
		}
		ctx = harness.NewContext(dir, 0.05)
		ctx.MaxLibPoints = 200
		ctx.Offsets = 1
		ctx.Parallel = 4
		ctx.Benches = benchSubset
	})
	return ctx
}

// BenchmarkTable1Configs exercises configuration construction and
// validation (Table 1).
func BenchmarkTable1Configs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if harness.Table1() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFigure1WarmingShare measures the SMARTS runtime split (Figure 1):
// the fraction of time functional warming consumes.
func BenchmarkFigure1WarmingShare(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := c.RunFigure1(uarch.Config8Way())
		if err != nil {
			b.Fatal(err)
		}
		var w, d float64
		for _, row := range res.Rows {
			w += row.WarmSeconds
			d += row.DetSeconds
		}
		b.ReportMetric(100*w/(w+d), "warm-%")
	}
}

// BenchmarkFigure4AdaptiveBias regenerates the AW-MRRL additional-bias
// experiment (Figure 4).
func BenchmarkFigure4AdaptiveBias(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := c.RunFigure4(uarch.Config8Way(), true)
		if err != nil {
			b.Fatal(err)
		}
		_, _, add := res.Avg()
		_, worst := res.Worst()
		b.ReportMetric(100*add, "avg-add-bias-%")
		b.ReportMetric(100*worst, "worst-add-bias-%")
	}
}

// BenchmarkFigure5RestrictedBias regenerates the restricted-live-state
// ablation (Figure 5).
func BenchmarkFigure5RestrictedBias(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := c.RunFigure5(uarch.Config8Way())
		if err != nil {
			b.Fatal(err)
		}
		_, _, add := res.Avg()
		b.ReportMetric(100*add, "avg-add-bias-%")
	}
}

// BenchmarkFigure7Breakdown regenerates the live-point size breakdown
// (Figure 7).
func BenchmarkFigure7Breakdown(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := c.RunFigure7("syn.gcc", uarch.Config8Way())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.LPTotal)/1024, "KB/point")
		b.ReportMetric(float64(res.LPCompressed)/1024, "gzKB/point")
	}
}

// BenchmarkFigure8Sweep regenerates the max-cache sweep (Figure 8).
func BenchmarkFigure8Sweep(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := c.RunFigure8("syn.mcf")
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(float64(last.LPBytes)/1024, "KB/point@16MB")
		b.ReportMetric(last.AWMillis/math.Max(last.LPMillis, 1e-9), "AW/LP-time")
	}
}

// BenchmarkTable2Runtimes regenerates the per-technique runtime comparison
// (Table 2, 8-way).
func BenchmarkTable2Runtimes(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := c.RunTable2(uarch.Config8Way())
		if err != nil {
			b.Fatal(err)
		}
		_, sm, _ := res.MinAvgMax(func(r harness.Table2Row) float64 { return r.SMARTS })
		_, lp, _ := res.MinAvgMax(func(r harness.Table2Row) float64 { return r.LivePoints })
		b.ReportMetric(sm/math.Max(lp, 1e-9), "speedup-vs-SMARTS")
	}
}

// BenchmarkTable3Summary regenerates the summary table (Table 3) from its
// component experiments.
func BenchmarkTable3Summary(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		cfg := uarch.Config8Way()
		fig4, err := c.RunFigure4(cfg, true)
		if err != nil {
			b.Fatal(err)
		}
		fig4u, err := c.RunFigure4(cfg, false)
		if err != nil {
			b.Fatal(err)
		}
		fig5, err := c.RunFigure5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		t2, err := c.RunTable2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.RunTable3(fig4, fig4u, fig5, t2, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAccuracyHeadline regenerates the ±3 % @ 99.7 % headline check.
func BenchmarkAccuracyHeadline(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := c.RunAccuracy(uarch.Config8Way())
		if err != nil {
			b.Fatal(err)
		}
		var worst float64
		for _, row := range res.Rows {
			worst = math.Max(worst, math.Abs(row.Err))
		}
		b.ReportMetric(100*worst, "worst-err-%")
	}
}

// BenchmarkMatchedPair regenerates the §6.2 sensitivity study.
func BenchmarkMatchedPair(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := c.RunMatchedPair("syn.gcc", uarch.Config8Way())
		if err != nil {
			b.Fatal(err)
		}
		var maxRed float64
		for _, row := range res.Rows {
			maxRed = math.Max(maxRed, row.Reduction)
		}
		b.ReportMetric(maxRed, "max-reduction-x")
	}
}

// BenchmarkScalingBehavior regenerates the O(B)-vs-O(sample) turnaround
// sweep (§7.2 / Table 3 scaling rows).
func BenchmarkScalingBehavior(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := c.RunScaling("syn.gzip", uarch.Config8Way(), []float64{0.02, 0.04, 0.08})
		if err != nil {
			b.Fatal(err)
		}
		first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.SMARTS/math.Max(first.SMARTS, 1e-9), "smarts-growth-x")
		b.ReportMetric(last.LivePoints/math.Max(first.LivePoints, 1e-9), "lp-growth-x")
	}
}

// storeBenchLib lazily builds one synthetic library pair (v1 sequential,
// v2 sharded) shared by the BenchmarkStoreRead variants: 512 DER blobs of
// ~32 KB of half-compressible content, the shape of real live-points.
var (
	storeBenchOnce  sync.Once
	storeBenchV1    string
	storeBenchV2    string
	storeBenchBytes int64
	storeBenchErr   error
)

func storeBenchSetup(b *testing.B) (v1, v2 string, bytes int64) {
	b.Helper()
	storeBenchOnce.Do(func() {
		const points, blobLen = 512, 32 << 10
		rng := rand.New(rand.NewSource(0xBE7C4))
		blobs := make([][]byte, points)
		for i := range blobs {
			payload := make([]byte, blobLen)
			for j := range payload {
				if j%3 == 0 {
					payload[j] = byte(rng.Intn(256))
				} else {
					payload[j] = byte(i & 0xF)
				}
			}
			bb := asn1der.NewBuilder()
			bb.OctetString(payload)
			blobs[i] = bb.Bytes()
			storeBenchBytes += int64(len(blobs[i]))
		}
		dir, err := os.MkdirTemp("", "lpstore-bench")
		if err != nil {
			storeBenchErr = err
			return
		}
		// The temp dir leaks for the process lifetime; benchmarks share it.
		storeBenchV1 = filepath.Join(dir, "v1.lplib")
		storeBenchV2 = filepath.Join(dir, "v2.lplib")
		meta := livepoint.Meta{Benchmark: "syn.bench", Shuffled: true}
		if _, err := livepoint.WriteLibrary(storeBenchV1, meta, blobs); err != nil {
			storeBenchErr = err
			return
		}
		if _, err := lpstore.Write(storeBenchV2, meta, blobs, lpstore.WriteOpts{ShardPoints: 32}); err != nil {
			storeBenchErr = err
		}
	})
	if storeBenchErr != nil {
		b.Fatal(storeBenchErr)
	}
	return storeBenchV1, storeBenchV2, storeBenchBytes
}

// drainSeq reads every blob from a library sequentially.
func drainSeq(b *testing.B, path string) int {
	b.Helper()
	src, err := livepoint.OpenSource(path)
	if err != nil {
		b.Fatal(err)
	}
	defer src.Close()
	n := 0
	for {
		if _, err := src.NextBlob(); err == io.EOF {
			return n
		} else if err != nil {
			b.Fatal(err)
		}
		n++
	}
}

// drainSharded reads every blob from a v2 library with workers pulling
// independent shards — the decompression path parallel runners use.
func drainSharded(b *testing.B, path string, workers int) int {
	b.Helper()
	src, err := livepoint.OpenSource(path)
	if err != nil {
		b.Fatal(err)
	}
	defer src.Close()
	ss, ok := src.(livepoint.ShardedSource)
	if !ok {
		b.Fatal("v2 source should be sharded")
	}
	shardc := make(chan int)
	go func() {
		defer close(shardc)
		for s := 0; s < ss.NumShards(); s++ {
			shardc <- s
		}
	}()
	var total atomic.Int64
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range shardc {
				sub, err := ss.OpenShard(s)
				if err != nil {
					errc <- err
					return
				}
				for {
					if _, err := sub.NextBlob(); err == io.EOF {
						break
					} else if err != nil {
						errc <- err
						return
					}
					total.Add(1)
				}
				sub.Close()
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errc:
		b.Fatal(err)
	default:
	}
	return int(total.Load())
}

// BenchmarkStoreRead compares library read throughput: the v1 sequential
// gzip stream (one decompressor, no matter how many workers) against the
// v2 sharded store draining shards concurrently at Parallel ∈ {1, 4, 8}.
// The parallel variants scale with available cores (decompression is the
// cost); on a single-core host they only demonstrate no regression.
func BenchmarkStoreRead(b *testing.B) {
	v1, v2, bytes := storeBenchSetup(b)
	b.Run("v1-sequential", func(b *testing.B) {
		b.SetBytes(bytes)
		for i := 0; i < b.N; i++ {
			if n := drainSeq(b, v1); n != 512 {
				b.Fatalf("read %d points, want 512", n)
			}
		}
	})
	b.Run("v2-sequential", func(b *testing.B) {
		b.SetBytes(bytes)
		for i := 0; i < b.N; i++ {
			if n := drainSeq(b, v2); n != 512 {
				b.Fatalf("read %d points, want 512", n)
			}
		}
	})
	for _, par := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("v2-parallel-%d", par), func(b *testing.B) {
			b.SetBytes(bytes)
			for i := 0; i < b.N; i++ {
				if n := drainSharded(b, v2, par); n != 512 {
					b.Fatalf("read %d points, want 512", n)
				}
			}
		})
	}
}

// BenchmarkStoreRandomAccess reads 4 scattered points: v1 must stream
// (and decompress) everything up to each target; v2 inflates only the
// shards that hold them. This is the access pattern of dynamic sample
// allocation, where a scheduler asks for arbitrary subsets at runtime.
func BenchmarkStoreRandomAccess(b *testing.B) {
	v1, v2, _ := storeBenchSetup(b)
	targets := []int{37, 205, 389, 500}
	b.Run("v1-stream", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			src, err := livepoint.OpenSource(v1)
			if err != nil {
				b.Fatal(err)
			}
			got, want := 0, 0
			for pos := 0; pos <= targets[len(targets)-1]; pos++ {
				blob, err := src.NextBlob()
				if err != nil {
					b.Fatal(err)
				}
				if want < len(targets) && pos == targets[want] {
					want++
					got += len(blob)
				}
			}
			src.Close()
			if got == 0 {
				b.Fatal("no bytes read")
			}
		}
	})
	b.Run("v2-pointblob", func(b *testing.B) {
		st, err := lpstore.Open(v2)
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		for i := 0; i < b.N; i++ {
			got := 0
			for _, pos := range targets {
				blob, err := st.PointBlob(pos)
				if err != nil {
					b.Fatal(err)
				}
				got += len(blob)
			}
			if got == 0 {
				b.Fatal("no bytes read")
			}
		}
	})
}

// BenchmarkStoreShuffle compares reshuffling cost: v1 ShuffleFile
// decompresses, permutes, and recompresses the whole library; v2 Shuffle
// rewrites only the footer index.
func BenchmarkStoreShuffle(b *testing.B) {
	v1, v2, _ := storeBenchSetup(b)
	dir := b.TempDir()
	b.Run("v1-rewrite", func(b *testing.B) {
		dst := filepath.Join(dir, "shuffled.lplib")
		for i := 0; i < b.N; i++ {
			if err := livepoint.ShuffleFile(v1, dst, int64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("v2-index-only", func(b *testing.B) {
		// Shuffle in place on a scratch copy so v2 stays pristine.
		raw, err := os.ReadFile(v2)
		if err != nil {
			b.Fatal(err)
		}
		dst := filepath.Join(dir, "scratch.lplib")
		if err := os.WriteFile(dst, raw, 0o644); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := lpstore.Shuffle(dst, int64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkOnlineConvergence regenerates the §6.1 online-reporting demo.
func BenchmarkOnlineConvergence(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := c.RunOnlineDemo("syn.gcc", uarch.Config8Way())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.History) == 0 {
			b.Fatal("no history")
		}
		b.ReportMetric(100*res.Final.RelCI(3.0), "final-CI-%")
	}
}

// clusterBenchLib lazily builds one small simulatable shuffled v2 library
// for the cluster turnaround benchmark.
var (
	clusterLibOnce sync.Once
	clusterLibPath string
	clusterLibErr  error
)

func clusterBenchLib(b *testing.B) string {
	b.Helper()
	clusterLibOnce.Do(func() {
		dir, err := os.MkdirTemp("", "lpcluster-bench")
		if err != nil {
			clusterLibErr = err
			return
		}
		// The temp dir leaks for the process lifetime; benchmarks share it.
		cfg := uarch.Config8Way()
		spec, err := prog.ByName("syn.gzip")
		if err != nil {
			clusterLibErr = err
			return
		}
		p := prog.Generate(spec, 0.01)
		benchLen, err := warm.BenchLength(p, p.TargetLen*4+1_000_000)
		if err != nil {
			clusterLibErr = err
			return
		}
		design, err := sampling.NewSystematic(benchLen, uarch.MeasureLen, uint64(cfg.DetailedWarm), 2, 1)
		if err != nil {
			clusterLibErr = err
			return
		}
		opts := livepoint.CreateOpts{MaxHier: cfg.Hier, Preds: []bpred.Config{cfg.BP}}
		var blobs [][]byte
		err = livepoint.Create(p, design, opts, func(lp *livepoint.LivePoint) error {
			blob, _ := livepoint.Encode(lp)
			blobs = append(blobs, blob)
			return nil
		})
		if err != nil {
			clusterLibErr = err
			return
		}
		rng := rand.New(rand.NewSource(0x5EED))
		rng.Shuffle(len(blobs), func(i, j int) { blobs[i], blobs[j] = blobs[j], blobs[i] })
		meta := livepoint.Meta{Benchmark: "syn.gzip", UnitLen: design.UnitLen, WarmLen: design.WarmLen, Shuffled: true}
		clusterLibPath = filepath.Join(dir, "cluster.lplib")
		_, clusterLibErr = lpstore.Write(clusterLibPath, meta, blobs, lpstore.WriteOpts{ShardPoints: 8})
	})
	if clusterLibErr != nil {
		b.Fatal(clusterLibErr)
	}
	return clusterLibPath
}

// BenchmarkClusterTurnaround measures whole-library wall time through the
// distributed path — coordinator + N in-process workers over localhost
// HTTP — the paper's §7.2 scale-out claim: turnaround shrinks with fleet
// size because live-points simulate independently. (On a single-core
// machine the workers time-slice one CPU, so the fleet sizes measure
// protocol overhead rather than scale-out.)
func BenchmarkClusterTurnaround(b *testing.B) {
	lib := clusterBenchLib(b)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var points int
			for i := 0; i < b.N; i++ {
				st, err := lpstore.Open(lib)
				if err != nil {
					b.Fatal(err)
				}
				coord, err := lpcluster.NewCoordinator(st, lpcluster.RunSpec{},
					lpcluster.Options{WaitHint: 10 * time.Millisecond})
				if err != nil {
					b.Fatal(err)
				}
				srv := lpserve.NewServer(st)
				coord.Mount(srv)
				ts := httptest.NewServer(srv.Handler())
				cl, err := lpserve.Dial(ts.URL)
				if err != nil {
					b.Fatal(err)
				}
				ctx := context.Background()
				var wg sync.WaitGroup
				errc := make(chan error, workers)
				for w := 0; w < workers; w++ {
					wk := lpcluster.NewWorker(fmt.Sprintf("bench-%d", w), cl)
					wg.Add(1)
					go func() {
						defer wg.Done()
						errc <- wk.Run(ctx)
					}()
				}
				wg.Wait()
				close(errc)
				for err := range errc {
					if err != nil {
						b.Fatal(err)
					}
				}
				res, ok := coord.Final()
				if !ok || res.Processed == 0 {
					b.Fatal("cluster run did not finish")
				}
				points = res.Processed
				ts.Close()
				st.Close()
			}
			b.ReportMetric(float64(points*b.N)/b.Elapsed().Seconds(), "points/s")
		})
	}
}

// decodeBench lazily builds one small library of real live-points (full
// live-state, syn.gzip) shared by the decode-path benchmarks.
var (
	decodeBenchOnce sync.Once
	decodeBench     [][]byte
	decodeBenchErr  error
)

func decodeBenchBlobs(b *testing.B) [][]byte {
	b.Helper()
	decodeBenchOnce.Do(func() {
		cfg := uarch.Config8Way()
		spec, err := prog.ByName("syn.gzip")
		if err != nil {
			decodeBenchErr = err
			return
		}
		p := prog.Generate(spec, 0.02)
		benchLen, err := warm.BenchLength(p, p.TargetLen*4+1_000_000)
		if err != nil {
			decodeBenchErr = err
			return
		}
		design, err := sampling.NewSystematic(benchLen, uarch.MeasureLen, uint64(cfg.DetailedWarm), 20, 1)
		if err != nil {
			decodeBenchErr = err
			return
		}
		opts := livepoint.CreateOpts{MaxHier: cfg.Hier, Preds: []bpred.Config{cfg.BP}}
		decodeBenchErr = livepoint.Create(p, design, opts, func(lp *livepoint.LivePoint) error {
			blob, _ := livepoint.Encode(lp)
			decodeBench = append(decodeBench, blob)
			return nil
		})
	})
	if decodeBenchErr != nil {
		b.Fatal(decodeBenchErr)
	}
	return decodeBench
}

// BenchmarkDecodeAlloc is the pre-optimization decode path: a fresh
// LivePoint (and all its backing storage) per blob. Kept as the baseline
// the zero-allocation path is measured against (BENCH_9.json).
func BenchmarkDecodeAlloc(b *testing.B) {
	blobs := decodeBenchBlobs(b)
	var bytes int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob := blobs[i%len(blobs)]
		if _, err := livepoint.Decode(blob); err != nil {
			b.Fatal(err)
		}
		bytes += int64(len(blob))
	}
	b.SetBytes(bytes / int64(b.N))
}

// BenchmarkDecodeInto is the steady-state zero-allocation decode: one
// reused LivePoint rotating through the library.
func BenchmarkDecodeInto(b *testing.B) {
	blobs := decodeBenchBlobs(b)
	var lp livepoint.LivePoint
	for _, blob := range blobs {
		if err := livepoint.DecodeInto(&lp, blob); err != nil {
			b.Fatal(err)
		}
	}
	var bytes int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob := blobs[i%len(blobs)]
		if err := livepoint.DecodeInto(&lp, blob); err != nil {
			b.Fatal(err)
		}
		bytes += int64(len(blob))
	}
	b.SetBytes(bytes / int64(b.N))
}

// BenchmarkLoadPipelineAlloc is the pre-optimization blob→warmed-state
// path: allocating decode plus allocating reconstruction, per point.
func BenchmarkLoadPipelineAlloc(b *testing.B) {
	blobs := decodeBenchBlobs(b)
	cfg := uarch.Config8Way()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lp, err := livepoint.Decode(blobs[i%len(blobs)])
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := lp.Reconstruct(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoadPipeline is the optimized blob→warmed-state path the
// runners use: DecodeInto a reused point, reconstruct through a SimArena.
func BenchmarkLoadPipeline(b *testing.B) {
	blobs := decodeBenchBlobs(b)
	cfg := uarch.Config8Way()
	var lp livepoint.LivePoint
	var arena livepoint.SimArena
	for _, blob := range blobs {
		if err := livepoint.DecodeInto(&lp, blob); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := livepoint.DecodeInto(&lp, blobs[i%len(blobs)]); err != nil {
			b.Fatal(err)
		}
		if _, _, err := arena.Reconstruct(&lp, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
