// Ablation benches for the design decisions DESIGN.md §5 calls out:
// CSR-versus-MTR storage, text-padding sensitivity of the wrong-path
// approximation, and gzip's contribution to library size.
package livepoints_test

import (
	"testing"

	"livepoints/internal/bpred"
	"livepoints/internal/cache"
	"livepoints/internal/csr"
	"livepoints/internal/functional"
	"livepoints/internal/livepoint"
	"livepoints/internal/prog"
	"livepoints/internal/sampling"
	"livepoints/internal/uarch"
	"livepoints/internal/warm"
)

// BenchmarkAblationCSRvsMTR quantifies the §4.3 storage trade-off on a
// real warming pass: CSR cost is capped by the captured cache's tag array,
// MTR cost tracks the application footprint.
func BenchmarkAblationCSRvsMTR(b *testing.B) {
	spec, err := prog.ByName("syn.mcf")
	if err != nil {
		b.Fatal(err)
	}
	p := prog.Generate(spec, 0.05)
	cfg := uarch.Config8Way()

	for i := 0; i < b.N; i++ {
		hier := cache.NewHier(cfg.Hier)
		mtr := csr.NewMTR(cfg.Hier.L2.LineBytes)
		cpu := functional.New(p, p.NewMemory())
		cpu.Warm = &warm.Warmer{
			H:     hier,
			OnMem: func(addr uint64, write bool) { mtr.Touch(addr, write) },
		}
		if _, err := cpu.Run(400_000); err != nil {
			b.Fatal(err)
		}
		sr := csr.Capture(hier.L2)
		b.ReportMetric(float64(sr.StorageBytes())/1024, "CSR-KB")
		b.ReportMetric(float64(mtr.StorageBytes())/1024, "MTR-KB")
	}
}

// BenchmarkAblationTextPad measures how the stored-text padding (which
// covers wrong-path fetch) trades live-point size against unknown-fetch
// events during simulation.
func BenchmarkAblationTextPad(b *testing.B) {
	cfg := uarch.Config8Way()
	spec, err := prog.ByName("syn.gcc")
	if err != nil {
		b.Fatal(err)
	}
	p := prog.Generate(spec, 0.02)
	benchLen, err := warm.BenchLength(p, p.TargetLen*4+1_000_000)
	if err != nil {
		b.Fatal(err)
	}
	design, err := sampling.NewSystematic(benchLen, uarch.MeasureLen, uint64(cfg.DetailedWarm), 40, 1)
	if err != nil {
		b.Fatal(err)
	}
	design.Positions = design.Positions[:min(8, len(design.Positions))]

	for _, pad := range []int{4, 32, 128} {
		b.Run(byteCount(pad), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var bytes, unknown int
				opts := livepoint.CreateOpts{MaxHier: cfg.Hier, Preds: []bpred.Config{cfg.BP}, TextPad: pad}
				err := livepoint.Create(p, design, opts, func(lp *livepoint.LivePoint) error {
					blob, bd := livepoint.Encode(lp)
					_ = blob
					bytes += bd.Text
					wr, err := livepoint.Simulate(lp, cfg)
					if err != nil {
						return err
					}
					unknown += int(wr.Stats.UnknownFetches)
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(bytes)/float64(len(design.Positions))/1024, "textKB/pt")
				b.ReportMetric(float64(unknown)/float64(len(design.Positions)), "unkFetch/pt")
			}
		})
	}
}

// BenchmarkAblationGzip measures the compression ratio the paper relies on
// ("we typically obtain 5:1 compression with gzip", §7.1).
func BenchmarkAblationGzip(b *testing.B) {
	cfg := uarch.Config8Way()
	spec, err := prog.ByName("syn.bzip2")
	if err != nil {
		b.Fatal(err)
	}
	p := prog.Generate(spec, 0.02)
	benchLen, err := warm.BenchLength(p, p.TargetLen*4+1_000_000)
	if err != nil {
		b.Fatal(err)
	}
	design, err := sampling.NewSystematic(benchLen, uarch.MeasureLen, uint64(cfg.DetailedWarm), 40, 1)
	if err != nil {
		b.Fatal(err)
	}
	design.Positions = design.Positions[:min(6, len(design.Positions))]

	for i := 0; i < b.N; i++ {
		var raw int64
		var blobs [][]byte
		opts := livepoint.CreateOpts{MaxHier: cfg.Hier, Preds: []bpred.Config{cfg.BP}}
		err := livepoint.Create(p, design, opts, func(lp *livepoint.LivePoint) error {
			blob, _ := livepoint.Encode(lp)
			raw += int64(len(blob))
			blobs = append(blobs, blob)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		dir := b.TempDir()
		path := dir + "/lib.lplib"
		meta := livepoint.Meta{Benchmark: p.Name, UnitLen: design.UnitLen, WarmLen: design.WarmLen}
		if _, err := livepoint.WriteLibrary(path, meta, blobs); err != nil {
			b.Fatal(err)
		}
		size, err := livepoint.FileSize(path)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(raw)/float64(size), "gzip-ratio")
	}
}

func byteCount(pad int) string {
	switch pad {
	case 4:
		return "pad4"
	case 32:
		return "pad32"
	default:
		return "pad128"
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
