// Package livepoints is a from-scratch Go reproduction of "Simulation
// Sampling with Live-points" (Wenisch, Wunderlich, Falsafi, Hoe — ISPASS
// 2006): a complete simulation-sampling toolchain in which checkpointed
// warming (live-points) replaces the functional warming that dominates
// SMARTS-style sampled microarchitecture simulation.
//
// The package is a facade over the internal subsystems: a synthetic
// benchmark suite, a functional simulator, a detailed out-of-order core, the
// SMARTS and adaptive-warming (MRRL) engines, and the live-point
// creation/storage/simulation pipeline. A typical absolute-performance study
// is:
//
//	p := livepoints.GenerateBenchmark("syn.gcc", 1.0)
//	design, _ := livepoints.NewDesignFor(p, livepoints.Config8Way(), 500)
//	info, _ := livepoints.CreateLibrary(p, design, livepoints.Config8Way(), "gcc.lplib")
//	res, _ := livepoints.Run("gcc.lplib", livepoints.RunOpts{
//	        Cfg: livepoints.Config8Way(), Z: livepoints.Z997, RelErr: 0.03,
//	})
//	fmt.Printf("CPI = %.3f ±%.1f%%\n", res.Est.Mean(), 100*res.Est.RelCI(livepoints.Z997))
//
// Libraries are written in the sharded v2 format (internal/lpstore) and
// can be served to remote workers over HTTP (internal/lpserve, cmd
// lpserved); Run auto-detects v2 stores, legacy v1 single-stream files,
// and — via RunSource and Connect — remote libraries.
//
// See DESIGN.md for the package layout and the storage/serving
// architecture.
package livepoints

import (
	"fmt"
	"math/rand"

	"livepoints/internal/bpred"
	"livepoints/internal/livepoint"
	"livepoints/internal/lpserve"
	"livepoints/internal/lpstore"
	"livepoints/internal/mrrl"
	"livepoints/internal/prog"
	"livepoints/internal/sampling"
	"livepoints/internal/uarch"
	"livepoints/internal/warm"
)

// Re-exported core types. These aliases are the public API surface; the
// internal packages hold the implementations.
type (
	// Config is a complete microarchitectural configuration (Table 1).
	Config = uarch.Config
	// Program is a generated synthetic benchmark.
	Program = prog.Program
	// BenchSpec describes one benchmark of the suite.
	BenchSpec = prog.BenchSpec
	// Design is a systematic sample design: the pre-selected measurement
	// windows a live-point library covers.
	Design = sampling.Design
	// Estimate is a streaming mean/variance/confidence accumulator.
	Estimate = sampling.Estimate
	// MatchedPair accumulates paired baseline/experimental measurements.
	MatchedPair = sampling.MatchedPair
	// LivePoint is one decoded live-point.
	LivePoint = livepoint.LivePoint
	// CreateOpts configures live-point creation.
	CreateOpts = livepoint.CreateOpts
	// RunOpts configures a sampling experiment over a library.
	RunOpts = livepoint.RunOpts
	// RunResult is the outcome of a sampling experiment.
	RunResult = livepoint.RunResult
	// MatchedOpts configures a matched-pair comparative experiment.
	MatchedOpts = livepoint.MatchedOpts
	// MatchedResult is the outcome of a matched-pair experiment.
	MatchedResult = livepoint.MatchedResult
	// PredictorConfig describes a branch-predictor configuration.
	PredictorConfig = bpred.Config
	// WindowResult is the outcome of one simulated detailed window.
	WindowResult = warm.WindowResult
	// Source supplies encoded live-points to runners: a local file of
	// either format, an open v2 store, or a remote serving client.
	Source = livepoint.Source
	// RemoteLibrary is a client connection to an lpserved instance.
	RemoteLibrary = lpserve.Client
)

// Z997 is the paper's confidence level: three-sigma (99.7 %).
const Z997 = sampling.Z997

// MinSampleSize is the central-limit-theorem floor on sample sizes (§6.1).
const MinSampleSize = sampling.MinSampleSize

// MeasureLen is the measurement-unit length in instructions.
const MeasureLen = uarch.MeasureLen

// Config8Way returns the paper's baseline 8-way configuration (Table 1).
func Config8Way() Config { return uarch.Config8Way() }

// Config16Way returns the paper's aggressive 16-way configuration (Table 1).
func Config16Way() Config { return uarch.Config16Way() }

// Benchmarks returns the synthetic SPEC2K-surrogate suite specifications.
func Benchmarks() []BenchSpec { return prog.Suite() }

// GenerateBenchmark builds the named benchmark at the given length scale
// (1.0 = nominal). It panics on unknown names; use Benchmarks to enumerate.
func GenerateBenchmark(name string, scale float64) *Program {
	spec, err := prog.ByName(name)
	if err != nil {
		panic(err)
	}
	return prog.Generate(spec, scale)
}

// BenchmarkLength runs the benchmark functionally to completion and returns
// its exact dynamic instruction count.
func BenchmarkLength(p *Program) (uint64, error) {
	return warm.BenchLength(p, p.TargetLen*4+4_000_000)
}

// NewDesignFor builds a systematic sample design for a benchmark under the
// given configuration, with at most maxPoints measurement units and windows
// spaced so functional warming dominates the gaps.
func NewDesignFor(p *Program, cfg Config, maxPoints int) (Design, error) {
	benchLen, err := BenchmarkLength(p)
	if err != nil {
		return Design{}, err
	}
	population := int(benchLen / MeasureLen)
	stride := 10 * cfg.WindowLen() / MeasureLen
	if maxPoints > 0 && population/stride > maxPoints {
		stride = population / maxPoints
	}
	return sampling.NewSystematic(benchLen, MeasureLen, uint64(cfg.DetailedWarm), stride, 1)
}

// LibraryInfo summarizes a created library.
type LibraryInfo struct {
	Path              string
	Points            int
	Shards            int // 0 for legacy v1 libraries
	CompressedBytes   int64
	UncompressedBytes int64
}

// shuffleSeed is the deterministic creation-time shuffle seed (§6.1); it
// matches the seed the legacy ShuffleFile pipeline used, so estimates are
// reproducible across format versions.
const shuffleSeed = 0x11E9_0147

// CreateLibrary runs the one-time creation pass for a benchmark and writes
// a shuffled live-point library to path. The library stores cache/TLB state
// at cfg's maxima and cfg's branch predictor; pass extra predictor
// configurations via CreateLibraryOpts for multi-predictor libraries.
func CreateLibrary(p *Program, design Design, cfg Config, path string) (LibraryInfo, error) {
	return CreateLibraryOpts(p, design, CreateOpts{
		MaxHier: cfg.Hier,
		Preds:   []PredictorConfig{cfg.BP},
	}, path)
}

// CreateLibraryOpts is CreateLibrary with full control over captured
// state. Libraries are written in the sharded v2 format: points are
// shuffled once at creation (so shard-major reads are already in random
// order) and the footer index supports O(1) random access, index-only
// reshuffling (lpstore.Shuffle), and concurrent per-shard reads.
func CreateLibraryOpts(p *Program, design Design, opts CreateOpts, path string) (LibraryInfo, error) {
	blobs, err := createBlobs(p, design, opts)
	if err != nil {
		return LibraryInfo{}, err
	}
	rng := rand.New(rand.NewSource(shuffleSeed))
	rng.Shuffle(len(blobs), func(i, j int) { blobs[i], blobs[j] = blobs[j], blobs[i] })
	meta := livepoint.Meta{Benchmark: p.Name, UnitLen: design.UnitLen, WarmLen: design.WarmLen, Shuffled: true}
	info, err := lpstore.Write(path, meta, blobs, lpstore.WriteOpts{})
	if err != nil {
		return LibraryInfo{}, err
	}
	return LibraryInfo{
		Path:              path,
		Points:            info.Points,
		Shards:            info.Shards,
		CompressedBytes:   info.CompressedBytes,
		UncompressedBytes: info.UncompressedBytes,
	}, nil
}

// CreateLibraryLegacy writes a library in the sequential single-stream v1
// format, for compatibility experiments and migration testing. New
// libraries should use CreateLibraryOpts.
func CreateLibraryLegacy(p *Program, design Design, opts CreateOpts, path string) (LibraryInfo, error) {
	blobs, err := createBlobs(p, design, opts)
	if err != nil {
		return LibraryInfo{}, err
	}
	tmp := path + ".unshuffled"
	meta := livepoint.Meta{Benchmark: p.Name, UnitLen: design.UnitLen, WarmLen: design.WarmLen}
	uncompressed, err := livepoint.WriteLibrary(tmp, meta, blobs)
	if err != nil {
		return LibraryInfo{}, err
	}
	if err := livepoint.ShuffleFile(tmp, path, shuffleSeed); err != nil {
		return LibraryInfo{}, err
	}
	size, err := livepoint.FileSize(path)
	if err != nil {
		return LibraryInfo{}, err
	}
	if err := removeFile(tmp); err != nil {
		return LibraryInfo{}, err
	}
	return LibraryInfo{Path: path, Points: len(blobs), CompressedBytes: size, UncompressedBytes: uncompressed}, nil
}

func createBlobs(p *Program, design Design, opts CreateOpts) ([][]byte, error) {
	var blobs [][]byte
	err := livepoint.Create(p, design, opts, func(lp *LivePoint) error {
		blob, _ := livepoint.Encode(lp)
		blobs = append(blobs, blob)
		return nil
	})
	return blobs, err
}

// MigrateLibrary converts a legacy v1 library into the sharded v2 format,
// preserving read order: estimates from the migrated library are bit-equal
// to the original's.
func MigrateLibrary(src, dst string) error {
	_, err := lpstore.Migrate(src, dst, lpstore.WriteOpts{})
	return err
}

// Run executes a sampling experiment over a library file of either format
// (see RunOpts for stopping rules, parallelism and online history).
func Run(path string, opts RunOpts) (*RunResult, error) {
	return livepoint.RunFile(path, opts)
}

// RunSource executes a sampling experiment over any live-point source —
// use Connect for remote libraries served by lpserved.
func RunSource(src Source, opts RunOpts) (*RunResult, error) {
	return livepoint.RunSource(src, opts)
}

// Connect dials an lpserved instance. The returned client's Source feeds
// RunSource and RunMatchedSource exactly like a local library.
func Connect(baseURL string) (*RemoteLibrary, error) {
	return lpserve.Dial(baseURL)
}

// RunMatched executes a matched-pair comparative experiment over a library
// file of either format (§6.2).
func RunMatched(path string, opts MatchedOpts) (*MatchedResult, error) {
	return livepoint.RunMatchedFile(path, opts)
}

// RunMatchedSource is RunMatched over any live-point source.
func RunMatchedSource(src Source, opts MatchedOpts) (*MatchedResult, error) {
	return livepoint.RunMatchedSource(src, opts)
}

// Simulate runs a single live-point's detailed window under cfg.
func Simulate(lp *LivePoint, cfg Config) (WindowResult, error) {
	return livepoint.Simulate(lp, cfg)
}

// SMARTS runs full-warming simulation sampling (the paper's baseline
// technique) over a benchmark.
func SMARTS(cfg Config, p *Program, design Design) (*warm.SMARTSResult, error) {
	return warm.RunSMARTS(cfg, p, design, warm.SMARTSOpts{})
}

// CompleteSimulation runs the entire benchmark through the detailed core
// (the bias gold standard) and returns its CPI.
func CompleteSimulation(cfg Config, p *Program) (float64, error) {
	benchLen, err := BenchmarkLength(p)
	if err != nil {
		return 0, err
	}
	cpi, _, err := warm.RunFullDetailed(cfg, p, benchLen*2+1000)
	return cpi, err
}

// MRRLAnalyze runs the Memory Reference Reuse Latency offline pass (§4.2),
// returning the per-window functional-warming lengths at the standard
// 99.9 % reuse threshold.
func MRRLAnalyze(p *Program, design Design) ([]uint64, error) {
	an, err := mrrl.Analyze(p, design, mrrl.DefaultReuseProb, mrrl.DefaultGranularity)
	if err != nil {
		return nil, err
	}
	return an.WarmLens, nil
}

// RequiredSampleSize returns the number of measurement units needed for a
// relative error target at confidence z, given the population coefficient
// of variation (§2).
func RequiredSampleSize(cv, z, relErr float64) int {
	return sampling.RequiredN(cv, z, relErr)
}

// Version identifies the reproduction.
const Version = "livepoints-repro 1.0 (ISPASS 2006)"

func removeFile(path string) error {
	if err := osRemove(path); err != nil {
		return fmt.Errorf("livepoints: cleaning temporary library: %w", err)
	}
	return nil
}
