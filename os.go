package livepoints

import "os"

// osRemove is a seam for tests; production code deletes via os.Remove.
var osRemove = os.Remove
