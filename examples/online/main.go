// Online results (§6.1): watch an estimate and its confidence interval
// converge while the simulation is still running.
//
// Because the library is shuffled, the points processed so far always form
// an unbiased random sub-sample, so the running estimate is statistically
// valid at every step — the property that lets live-point simulations
// report results at any time and stop as soon as confidence suffices.
//
//	go run ./examples/online
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"livepoints"
)

func main() {
	cfg := livepoints.Config8Way()
	p := livepoints.GenerateBenchmark("syn.gcc", 0.1)

	dir, err := os.MkdirTemp("", "livepoints-online")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	lib := filepath.Join(dir, "gcc.lplib")

	design, err := livepoints.NewDesignFor(p, cfg, 400)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := livepoints.CreateLibrary(p, design, cfg, lib); err != nil {
		log.Fatal(err)
	}

	// Process the whole library, recording the running estimate.
	res, err := livepoints.Run(lib, livepoints.RunOpts{Cfg: cfg, RecordHistory: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("online convergence of the CPI estimate (paper §6.1):")
	fmt.Printf("%8s %10s %10s %s\n", "points", "CPI", "±99.7%CI", "")
	bar := func(rel float64) string {
		n := int(rel * 300)
		if n > 60 {
			n = 60
		}
		return string(make([]byte, 0)) + stars(n)
	}
	for _, mark := range []int{1, 5, 10, 20, 30, 50, 75, 100, 150, 200, 300, 400} {
		if mark-1 >= len(res.History) {
			break
		}
		s := res.History[mark-1]
		fmt.Printf("%8d %10.4f %9.2f%% %s\n", s.N, s.Mean, 100*s.RelCI, bar(s.RelCI))
	}
	last := res.History[len(res.History)-1]
	fmt.Printf("%8d %10.4f %9.2f%%  final\n", last.N, last.Mean, 100*last.RelCI)
	fmt.Printf("\nminimum sample before any confidence is reported: %d points (CLT floor)\n",
		livepoints.MinSampleSize)
}

func stars(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '*'
	}
	return string(b)
}
