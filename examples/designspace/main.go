// Design-space search with matched-pair comparison (§6.2).
//
// One live-point library, many candidate design changes: each change is
// measured on the same sample as the baseline, and the confidence interval
// is built directly on the per-unit CPI delta. Changes with no appreciable
// impact are screened out after a handful of points; real changes are
// quantified with far fewer points than an absolute measurement would need
// (the paper reports 3.5–150x sample-size reductions).
//
//	go run ./examples/designspace
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"livepoints"
)

func main() {
	base := livepoints.Config8Way()
	p := livepoints.GenerateBenchmark("syn.bzip2", 0.1)

	dir, err := os.MkdirTemp("", "livepoints-designspace")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	lib := filepath.Join(dir, "bzip2.lplib")

	design, err := livepoints.NewDesignFor(p, base, 400)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := livepoints.CreateLibrary(p, design, base, lib); err != nil {
		log.Fatal(err)
	}

	type change struct {
		name string
		mod  func(*livepoints.Config)
	}
	changes := []change{
		{"memory latency 100 -> 150", func(c *livepoints.Config) { c.Hier.MemLat = 150 }},
		{"L2 1MB -> 512KB", func(c *livepoints.Config) { c.Hier.L2.SizeBytes /= 2 }},
		{"RUU 128 -> 64", func(c *livepoints.Config) { c.RUUSize = 64; c.LSQSize = 32 }},
		{"integer ALUs 4 -> 2", func(c *livepoints.Config) { c.IntALU = 2 }},
		{"store buffer 16 -> 17", func(c *livepoints.Config) { c.Hier.StoreBufSize = 17 }},
	}

	fmt.Println("matched-pair design-space search on syn.bzip2 (8-way baseline):")
	fmt.Printf("%-28s %10s %8s %10s %s\n", "change", "ΔCPI", "pairs", "reduction", "verdict")
	for _, ch := range changes {
		exp := base
		ch.mod(&exp)
		exp.Name = ch.name

		res, err := livepoints.RunMatched(lib, livepoints.MatchedOpts{
			Base:              base,
			Exp:               exp,
			Z:                 livepoints.Z997,
			RelErr:            0.015,
			NoImpactThreshold: 0.03,
		})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "significant"
		if res.StoppedNoImpact {
			verdict = "no impact (<3%), screened early"
		}
		fmt.Printf("%-28s %+9.2f%% %8d %9.1fx %s\n",
			ch.name, 100*res.MP.RelDelta(), res.Processed, res.MP.SampleSizeReduction(), verdict)
	}
}
