// Parallel live-point processing (§6): live-points are mutually
// independent, so a library can be fanned out across workers — the paper
// parallelizes across hosts; this example parallelizes across goroutines
// and compares wall-clock against serial processing of the same library.
//
//	go run ./examples/parallel
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"livepoints"
)

func main() {
	cfg := livepoints.Config8Way()
	p := livepoints.GenerateBenchmark("syn.ammp", 0.1)

	dir, err := os.MkdirTemp("", "livepoints-parallel")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	lib := filepath.Join(dir, "ammp.lplib")

	design, err := livepoints.NewDesignFor(p, cfg, 300)
	if err != nil {
		log.Fatal(err)
	}
	info, err := livepoints.CreateLibrary(p, design, cfg, lib)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("library: %d points, %.1f KB compressed\n", info.Points, float64(info.CompressedBytes)/1024)

	t0 := time.Now()
	serial, err := livepoints.Run(lib, livepoints.RunOpts{Cfg: cfg})
	if err != nil {
		log.Fatal(err)
	}
	serialTime := time.Since(t0)
	fmt.Printf("serial:    %3d points, CPI %.4f, %v\n", serial.Processed, serial.Est.Mean(), serialTime.Round(time.Millisecond))

	workers := runtime.NumCPU()
	if workers > 8 {
		workers = 8
	}
	t0 = time.Now()
	par, err := livepoints.Run(lib, livepoints.RunOpts{Cfg: cfg, Parallel: workers})
	if err != nil {
		log.Fatal(err)
	}
	parTime := time.Since(t0)
	fmt.Printf("parallel:  %3d points, CPI %.4f, %v (%d workers)\n",
		par.Processed, par.Est.Mean(), parTime.Round(time.Millisecond), workers)

	if par.Est.Mean() != serial.Est.Mean() {
		log.Fatalf("parallel mean %.6f differs from serial %.6f", par.Est.Mean(), serial.Est.Mean())
	}
	fmt.Printf("speedup: %.1fx; estimates identical (order-independent mean)\n",
		serialTime.Seconds()/parTime.Seconds())
}
