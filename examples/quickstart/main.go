// Quickstart: the 60-second tour of the live-points pipeline.
//
// It generates one synthetic benchmark, creates a small live-point library
// (the one-time cost), then estimates the benchmark's CPI on the 8-way
// baseline from the library alone — no functional warming at experiment
// time — and compares the estimate with a complete detailed simulation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"livepoints"
)

func main() {
	cfg := livepoints.Config8Way()

	fmt.Println("1. generating benchmark syn.gzip (scale 0.1)...")
	p := livepoints.GenerateBenchmark("syn.gzip", 0.1)
	n, err := livepoints.BenchmarkLength(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   %d dynamic instructions, %d KB data footprint\n", n, p.FootprintBytes()>>10)

	dir, err := os.MkdirTemp("", "livepoints-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	lib := filepath.Join(dir, "gzip.lplib")

	fmt.Println("2. creating the live-point library (one full-warming pass)...")
	design, err := livepoints.NewDesignFor(p, cfg, 300)
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	info, err := livepoints.CreateLibrary(p, design, cfg, lib)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   %d live-points, %.1f KB compressed (%.1f KB/point), created in %v\n",
		info.Points, float64(info.CompressedBytes)/1024,
		float64(info.CompressedBytes)/1024/float64(info.Points), time.Since(t0).Round(time.Millisecond))

	fmt.Println("3. estimating CPI from the library (random order, online confidence)...")
	t0 = time.Now()
	res, err := livepoints.Run(lib, livepoints.RunOpts{
		Cfg:    cfg,
		Z:      livepoints.Z997,
		RelErr: 0.03,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   CPI = %.4f ±%.2f%% (99.7%% confidence) from %d live-points in %v\n",
		res.Est.Mean(), 100*res.Est.RelCI(livepoints.Z997), res.Processed,
		time.Since(t0).Round(time.Millisecond))

	fmt.Println("4. validating against complete detailed simulation...")
	t0 = time.Now()
	truth, err := livepoints.CompleteSimulation(cfg, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   complete simulation CPI = %.4f (took %v)\n", truth, time.Since(t0).Round(time.Millisecond))
	fmt.Printf("   estimation error: %+.2f%%\n", 100*(res.Est.Mean()-truth)/truth)
}
