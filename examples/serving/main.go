// Remote live-point serving: one process owns the library, workers pull
// points over HTTP — the scale-out layout behind cmd/lpserved and
// `lpsim -server`. This example runs both halves in-process: it creates a
// sharded v2 library, serves it on a loopback listener, and checks a
// remote run reproduces the local estimate bit for bit, serially and with
// parallel per-shard pulls.
//
//	go run ./examples/serving
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"time"

	"livepoints"
	"livepoints/internal/lpserve"
	"livepoints/internal/lpstore"
)

func main() {
	cfg := livepoints.Config8Way()
	p := livepoints.GenerateBenchmark("syn.gcc", 0.05)

	dir, err := os.MkdirTemp("", "livepoints-serving")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	lib := filepath.Join(dir, "gcc.lplib")

	design, err := livepoints.NewDesignFor(p, cfg, 200)
	if err != nil {
		log.Fatal(err)
	}
	info, err := livepoints.CreateLibrary(p, design, cfg, lib)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("library: %d points in %d shards, %.1f KB compressed\n",
		info.Points, info.Shards, float64(info.CompressedBytes)/1024)

	// Serve the store on a loopback listener (what lpserved does).
	st, err := lpstore.Open(lib)
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := lpserve.NewServer(st)
	go srv.Serve(l)
	defer srv.Shutdown(context.Background())

	local, err := livepoints.Run(lib, livepoints.RunOpts{Cfg: cfg})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("local:   CPI %.4f from %d points\n", local.Est.Mean(), local.Processed)

	// A remote worker: dial, pull, simulate.
	client, err := livepoints.Connect("http://" + l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	remote, err := livepoints.RunSource(client.Source(), livepoints.RunOpts{Cfg: cfg})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("remote:  CPI %.4f from %d points in %v\n",
		remote.Est.Mean(), remote.Processed, time.Since(t0).Round(time.Millisecond))
	if remote.Est.Mean() != local.Est.Mean() {
		log.Fatalf("remote estimate %.9f differs from local %.9f", remote.Est.Mean(), local.Est.Mean())
	}

	// Parallel remote workers pull whole shards (stored gzip bytes pass
	// through the server verbatim and inflate client-side).
	t0 = time.Now()
	par, err := livepoints.RunSource(client.Source(), livepoints.RunOpts{Cfg: cfg, Parallel: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("remote4: CPI %.4f from %d points in %v (4 shard-pulling workers)\n",
		par.Est.Mean(), par.Processed, time.Since(t0).Round(time.Millisecond))
	fmt.Println("estimates identical across local, remote, and parallel-remote runs")
}
